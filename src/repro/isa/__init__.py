"""Instruction-set level abstractions used by the timing pipeline.

The simulator is trace driven: workload generators emit streams of
:class:`~repro.isa.instruction.Instruction` objects carrying everything the
timing model needs (operation class, register dependences, memory address,
branch outcome).  There is no functional emulation of a real ISA; the register
namespace mirrors the Alpha-like machine of the paper (32 logical integer and
32 logical floating-point registers).
"""

from repro.isa.opcodes import (
    OpClass,
    EXECUTION_LATENCY,
    is_floating_point,
    is_integer,
    is_memory,
    uses_fp_queue,
    uses_int_queue,
)
from repro.isa.registers import (
    NUM_INT_REGS,
    NUM_FP_REGS,
    RegisterName,
    int_reg,
    fp_reg,
    is_fp_register,
    is_int_register,
    register_index,
)
from repro.isa.instruction import Instruction

__all__ = [
    "OpClass",
    "EXECUTION_LATENCY",
    "Instruction",
    "NUM_INT_REGS",
    "NUM_FP_REGS",
    "RegisterName",
    "int_reg",
    "fp_reg",
    "is_fp_register",
    "is_int_register",
    "register_index",
    "is_floating_point",
    "is_integer",
    "is_memory",
    "uses_fp_queue",
    "uses_int_queue",
]
