"""Dynamic instruction representation consumed by the timing pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.opcodes import IS_MEMORY, OpClass
from repro.isa.registers import RegisterName


@dataclass(slots=True)
class Instruction:
    """A single dynamic instruction in a workload trace.

    Parameters
    ----------
    pc:
        Program counter of the instruction (byte address).  Used for
        instruction-cache accesses and branch-predictor indexing.
    op:
        Operation class (:class:`~repro.isa.opcodes.OpClass`).
    sources:
        Logical source register names.
    dest:
        Logical destination register name, or ``None`` for instructions that
        produce no register result (stores, branches, nops).
    address:
        Effective memory address for loads and stores; ``None`` otherwise.
    is_branch:
        True if the instruction is a control transfer.
    taken:
        Branch outcome (only meaningful when ``is_branch``).
    target:
        Branch target address (only meaningful when ``is_branch``).
    seq:
        Dynamic sequence number, filled in by the trace source.  Used for
        ordering, statistics and phase bookkeeping.
    """

    pc: int
    op: OpClass
    sources: tuple[RegisterName, ...] = ()
    dest: RegisterName | None = None
    address: int | None = None
    is_branch: bool = False
    taken: bool = False
    target: int | None = None
    seq: int = field(default=-1, compare=False)
    #: Cached opclass predicates, filled in ``__post_init__``.  The pipeline
    #: reads these once or more per dynamic instruction per cycle, so they
    #: are plain attributes rather than properties.
    is_load: bool = field(init=False, compare=False, repr=False, default=False)
    is_store: bool = field(init=False, compare=False, repr=False, default=False)
    is_memory_op: bool = field(init=False, compare=False, repr=False, default=False)

    def __post_init__(self) -> None:
        op = self.op
        if op is OpClass.BRANCH and not self.is_branch:
            self.is_branch = True
        self.is_load = op is OpClass.LOAD
        self.is_store = op is OpClass.STORE
        self.is_memory_op = IS_MEMORY[op]
        if self.is_memory_op and self.address is None:
            raise ValueError(f"memory instruction requires an address: {self!r}")
        if self.is_branch and self.target is None:
            # Fall through to the next sequential instruction by default.
            self.target = self.pc + 4

    @property
    def next_pc(self) -> int:
        """Architecturally correct next program counter."""
        if self.is_branch and self.taken and self.target is not None:
            return self.target
        return self.pc + 4

    def describe(self) -> str:
        """Return a short human-readable rendering, useful in logs and tests."""
        parts = [f"{self.op.value}@{self.pc:#x}"]
        if self.dest is not None:
            parts.append(f"-> {self.dest}")
        if self.sources:
            parts.append("src=" + ",".join(self.sources))
        if self.address is not None:
            parts.append(f"addr={self.address:#x}")
        if self.is_branch:
            parts.append("taken" if self.taken else "not-taken")
        return " ".join(parts)
