"""Operation classes and execution latencies.

The paper models an Alpha 21264-like machine (Table 5).  The timing pipeline
only needs to distinguish operation *classes* -- which functional unit an
instruction occupies, for how many cycles, and which issue queue it enters --
so the ISA is reduced to the classes below.

Latencies are given in cycles of the *executing* domain (integer domain for
integer operations, floating-point domain for FP operations, load/store domain
for the cache-access portion of memory operations).
"""

from __future__ import annotations

import enum


class OpClass(enum.Enum):
    """Classes of dynamic instructions recognised by the timing model."""

    INT_ALU = "int_alu"
    INT_MULT = "int_mult"
    INT_DIV = "int_div"
    FP_ALU = "fp_alu"
    FP_MULT = "fp_mult"
    FP_DIV = "fp_div"
    FP_SQRT = "fp_sqrt"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    NOP = "nop"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OpClass.{self.name}"


#: Execution latency, in cycles of the executing domain, for each operation
#: class.  Memory operations additionally pay the data-cache access latency in
#: the load/store domain; the value here is the address-generation latency in
#: the integer domain.
EXECUTION_LATENCY: dict[OpClass, int] = {
    OpClass.INT_ALU: 1,
    OpClass.INT_MULT: 3,
    OpClass.INT_DIV: 20,
    OpClass.FP_ALU: 2,
    OpClass.FP_MULT: 4,
    OpClass.FP_DIV: 12,
    OpClass.FP_SQRT: 24,
    OpClass.LOAD: 1,
    OpClass.STORE: 1,
    OpClass.BRANCH: 1,
    OpClass.NOP: 1,
}

_INT_CLASSES = frozenset(
    {
        OpClass.INT_ALU,
        OpClass.INT_MULT,
        OpClass.INT_DIV,
        OpClass.BRANCH,
        OpClass.LOAD,
        OpClass.STORE,
        OpClass.NOP,
    }
)

_FP_CLASSES = frozenset(
    {OpClass.FP_ALU, OpClass.FP_MULT, OpClass.FP_DIV, OpClass.FP_SQRT}
)

_MEMORY_CLASSES = frozenset({OpClass.LOAD, OpClass.STORE})

# Precomputed per-opclass dispatch tables.  The pipeline consults these for
# every dynamic instruction, so they are plain dict lookups rather than set
# membership behind a function call; the functions below stay as the
# readable public API.
IS_INTEGER: dict[OpClass, bool] = {op: op in _INT_CLASSES for op in OpClass}
IS_FLOATING_POINT: dict[OpClass, bool] = {op: op in _FP_CLASSES for op in OpClass}
IS_MEMORY: dict[OpClass, bool] = {op: op in _MEMORY_CLASSES for op in OpClass}
USES_FP_QUEUE: dict[OpClass, bool] = dict(IS_FLOATING_POINT)

# ---------------------------------------------------------------- flat encoding
#
# The compiled-trace fast path (:mod:`repro.workloads.trace_cache`) stores
# instruction streams as flat array columns instead of object lists.  Opcodes
# are encoded as dense ids, and the per-opclass predicates above are folded
# into one flag bitmask per instruction so the pipeline decodes a dynamic
# instruction with two integer reads.

#: Dense id -> OpClass decode table (declaration order).
OPCLASSES: tuple[OpClass, ...] = tuple(OpClass)
#: OpClass -> dense id encode table.
OPCODE_ID: dict[OpClass, int] = {op: index for index, op in enumerate(OPCLASSES)}

#: Per-instruction flag bits.  ``FLAG_BRANCH``/``FLAG_TAKEN`` are dynamic
#: (an ``Instruction`` may be flagged a branch regardless of opclass, and the
#: outcome is per instance); the rest derive from the opclass alone.
FLAG_BRANCH = 0x01
FLAG_TAKEN = 0x02
FLAG_MEMORY = 0x04
FLAG_LOAD = 0x08
FLAG_STORE = 0x10
FLAG_FP = 0x20

#: Static flag bits of each opcode id (everything except branch/taken).
OPCLASS_FLAGS: tuple[int, ...] = tuple(
    (FLAG_MEMORY if IS_MEMORY[op] else 0)
    | (FLAG_LOAD if op is OpClass.LOAD else 0)
    | (FLAG_STORE if op is OpClass.STORE else 0)
    | (FLAG_FP if IS_FLOATING_POINT[op] else 0)
    for op in OPCLASSES
)


def is_integer(op: OpClass) -> bool:
    """Return True if *op* executes on the integer domain's units."""
    return IS_INTEGER[op]


def is_floating_point(op: OpClass) -> bool:
    """Return True if *op* executes on the floating-point domain's units."""
    return IS_FLOATING_POINT[op]


def is_memory(op: OpClass) -> bool:
    """Return True if *op* accesses the data-cache hierarchy."""
    return IS_MEMORY[op]


def uses_int_queue(op: OpClass) -> bool:
    """Return True if *op* is dispatched into the integer issue queue.

    As in the MCD model, loads and stores compute their effective address in
    the integer domain and therefore occupy an integer issue-queue slot.
    """
    return IS_INTEGER[op]


def uses_fp_queue(op: OpClass) -> bool:
    """Return True if *op* is dispatched into the floating-point issue queue."""
    return USES_FP_QUEUE[op]
