"""Logical register namespace.

The machine has 32 logical integer registers (``r0``..``r31``) and 32 logical
floating-point registers (``f0``..``f31``), mirroring the Alpha-like target of
the paper.  Register names are plain strings so traces remain cheap to build
and easy to read; helpers here convert between names and dense indices used by
the rename stage and by the ILP-tracking hardware model (Section 3.2 of the
paper tracks timestamps for 32 + 32 logical registers).
"""

from __future__ import annotations

#: Number of logical integer registers.
NUM_INT_REGS = 32
#: Number of logical floating-point registers.
NUM_FP_REGS = 32

#: Type alias for a register name such as ``"r4"`` or ``"f17"``.
RegisterName = str


def int_reg(index: int) -> RegisterName:
    """Return the name of logical integer register *index*."""
    if not 0 <= index < NUM_INT_REGS:
        raise ValueError(f"integer register index out of range: {index}")
    return f"r{index}"


def fp_reg(index: int) -> RegisterName:
    """Return the name of logical floating-point register *index*."""
    if not 0 <= index < NUM_FP_REGS:
        raise ValueError(f"floating-point register index out of range: {index}")
    return f"f{index}"


def is_int_register(name: RegisterName) -> bool:
    """Return True if *name* denotes an integer register."""
    return name.startswith("r")


def is_fp_register(name: RegisterName) -> bool:
    """Return True if *name* denotes a floating-point register."""
    return name.startswith("f")


def register_index(name: RegisterName) -> int:
    """Return the dense index of *name* within the combined register space.

    Integer registers map to ``0..31`` and floating-point registers map to
    ``32..63``.  This is the index used by the rename map and by the
    ILP-tracking timestamp array.
    """
    try:
        number = int(name[1:])
    except (ValueError, IndexError) as exc:
        raise ValueError(f"malformed register name: {name!r}") from exc
    if name.startswith("r"):
        if not 0 <= number < NUM_INT_REGS:
            raise ValueError(f"integer register out of range: {name!r}")
        return number
    if name.startswith("f"):
        if not 0 <= number < NUM_FP_REGS:
            raise ValueError(f"floating-point register out of range: {name!r}")
        return NUM_INT_REGS + number
    raise ValueError(f"unknown register class: {name!r}")


#: Total number of logical registers tracked by rename / ILP hardware.
TOTAL_LOGICAL_REGS = NUM_INT_REGS + NUM_FP_REGS

#: Sentinel index for "no register" in the flat trace encoding (stores,
#: branches and nops have no destination; nops have no sources).
NO_REGISTER = -1

#: First index of the floating-point half of the combined register space.
FP_BASE_INDEX = NUM_INT_REGS

#: Dense index -> name decode table (inverse of :func:`register_index`).
REGISTER_NAMES: tuple[RegisterName, ...] = tuple(
    [f"r{index}" for index in range(NUM_INT_REGS)]
    + [f"f{index}" for index in range(NUM_FP_REGS)]
)


def register_name(index: int) -> RegisterName:
    """Return the name of the register with dense *index* (0..63)."""
    if not 0 <= index < TOTAL_LOGICAL_REGS:
        raise ValueError(f"register index out of range: {index}")
    return REGISTER_NAMES[index]
