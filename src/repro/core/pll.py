"""Per-domain PLL model for dynamic frequency changes.

Following the paper (and the XScale circuits it references), a domain keeps
operating while its PLL re-locks to a new frequency.  The lock time is
normally distributed with a mean of 15 microseconds and clamped to the
10-20 microsecond range.  Because this reproduction runs scaled-down
instruction windows, the model also offers an *interval-scaled* mode in which
the lock time tracks the duration of the controller's adaptation interval —
preserving the paper's stated relationship that the 15 K-instruction interval
"is comparable to the PLL lock-down time".
"""

from __future__ import annotations

import random

from repro.clocks.time import Picoseconds, us_to_ps


class PLLModel:
    """Samples PLL re-lock durations.

    Parameters
    ----------
    mean_us, min_us, max_us:
        Lock-time distribution in microseconds (paper values by default).
    interval_scaled:
        When True, :meth:`sample_lock_ps` ignores the microsecond parameters
        and instead returns a duration comparable to the *reference interval*
        passed by the caller (uniformly 0.8-1.2 times it).
    seed:
        Seed for reproducible sampling.
    """

    def __init__(
        self,
        *,
        mean_us: float = 15.0,
        min_us: float = 10.0,
        max_us: float = 20.0,
        interval_scaled: bool = False,
        seed: int = 0,
    ) -> None:
        if not 0 < min_us <= mean_us <= max_us:
            raise ValueError("require 0 < min_us <= mean_us <= max_us")
        self.mean_us = mean_us
        self.min_us = min_us
        self.max_us = max_us
        self.interval_scaled = interval_scaled
        self._rng = random.Random(seed)

    def sample_lock_ps(self, reference_interval_ps: Picoseconds | None = None) -> Picoseconds:
        """Return one lock duration in picoseconds.

        ``reference_interval_ps`` is the duration of the last adaptation
        interval; it is only used in interval-scaled mode.
        """
        if self.interval_scaled and reference_interval_ps:
            factor = self._rng.uniform(0.8, 1.2)
            return max(1, int(reference_interval_ps * factor))
        sigma = (self.max_us - self.min_us) / 6.0
        sample = self._rng.gauss(self.mean_us, sigma)
        sample = min(self.max_us, max(self.min_us, sample))
        return us_to_ps(sample)
