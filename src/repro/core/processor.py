"""The adaptive MCD processor simulator.

:class:`MCDProcessor` ties the substrates together into the four-domain GALS
machine of the paper.  The same class also simulates the fully synchronous
baseline: a synchronous :class:`~repro.core.configuration.MachineSpec` gives
every domain the same clock, disables inter-domain synchronisation costs and
uses the shallower misprediction penalty, so the two machines share every
line of pipeline modelling and differ only where the paper says they differ.

The simulation is event driven over clock edges: the main loop repeatedly
advances whichever domain has the earliest pending clock edge and performs
that domain's work for one cycle.  Times are integer picoseconds throughout.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from repro.caches.hierarchy import CacheHierarchy
from repro.caches.memory import MainMemory
from repro.clocks.clock import DomainClock
from repro.clocks.time import Picoseconds
from repro.core.configuration import MachineSpec
from repro.core.controllers.cache_controller import (
    CacheLevel,
    PhaseAdaptiveCacheController,
)
from repro.core.controllers.params import AdaptiveControlParams
from repro.core.controllers.queue_controller import PhaseAdaptiveQueueController
from repro.core.domains import Domain
from repro.core.pll import PLLModel
from repro.core.synchronization import SynchronizationModel
from repro.isa.instruction import Instruction
from repro.isa.opcodes import EXECUTION_LATENCY, OpClass, uses_fp_queue
from repro.isa.registers import is_fp_register, register_index
from repro.pipeline.dyninst import DynInst
from repro.pipeline.frontend import FrontEnd
from repro.pipeline.issue_queue import IssueQueue
from repro.pipeline.lsq import LoadStoreQueue
from repro.pipeline.resources import FunctionalUnitPool, PhysicalRegisterFile
from repro.pipeline.rob import ReorderBuffer
from repro.analysis.metrics import ConfigurationChange, RunResult
from repro.timing.tables import (
    ADAPTIVE_DCACHE_CONFIGS,
    ADAPTIVE_ICACHE_CONFIGS,
    ISSUE_QUEUE_FREQUENCY_GHZ,
)

_INT_COMPLEX_OPS = frozenset({OpClass.INT_MULT, OpClass.INT_DIV})
_FP_COMPLEX_OPS = frozenset({OpClass.FP_MULT, OpClass.FP_DIV, OpClass.FP_SQRT})

#: Main-loop iterations without a commit after which the simulator assumes a
#: modelling bug rather than spinning forever.
_DEADLOCK_LIMIT = 2_000_000


class MCDProcessor:
    """Simulator for one machine specification.

    Parameters
    ----------
    spec:
        The machine to simulate (adaptive MCD or fully synchronous).
    control:
        Parameters of the phase-adaptive controllers; only used when
        ``phase_adaptive`` is True.
    phase_adaptive:
        Enable the run-time control algorithms (Accounting-Cache controller
        and ILP-tracking queue controllers).  Requires an adaptive spec.
    seed:
        Seed for the PLL lock-time sampler and clock jitter.
    jitter_fraction:
        Optional peak-to-peak clock jitter as a fraction of each period.
    """

    def __init__(
        self,
        spec: MachineSpec,
        *,
        control: AdaptiveControlParams | None = None,
        phase_adaptive: bool = False,
        seed: int = 0,
        jitter_fraction: float = 0.0,
    ) -> None:
        if phase_adaptive and not spec.is_adaptive:
            raise ValueError("phase-adaptive control requires an adaptive MCD spec")
        self.spec = spec
        self.params = spec.parameters
        self.control = control if control is not None else AdaptiveControlParams()
        self.phase_adaptive = phase_adaptive

        self.clocks: dict[Domain, DomainClock] = {
            domain: DomainClock(
                domain.value,
                spec.frequency(domain),
                jitter_fraction=jitter_fraction,
                seed=seed,
            )
            for domain in Domain
        }
        self._clock_by_name = {domain.value: clock for domain, clock in self.clocks.items()}
        self.sync = SynchronizationModel(enabled=spec.inter_domain_sync)
        self.pll = PLLModel(
            mean_us=self.control.pll_mean_us,
            min_us=self.control.pll_min_us,
            max_us=self.control.pll_max_us,
            interval_scaled=self.control.pll_interval_scaled,
            seed=seed,
        )

        params = self.params
        self.memory = MainMemory(
            first_chunk_ns=params.memory_first_chunk_ns,
            subsequent_chunk_ns=params.memory_subsequent_chunk_ns,
        )
        self.hierarchy = CacheHierarchy(
            spec.dcache, b_enabled=spec.use_b_partitions, memory=self.memory
        )
        self.rob = ReorderBuffer(params.reorder_buffer_entries)
        self.lsq = LoadStoreQueue(params.load_store_queue_entries)
        self.int_regs = PhysicalRegisterFile(params.physical_int_registers)
        self.fp_regs = PhysicalRegisterFile(params.physical_fp_registers)
        self.int_queue = IssueQueue(spec.int_queue_size, name="int-queue")
        self.fp_queue = IssueQueue(spec.fp_queue_size, name="fp-queue")
        self.int_units = FunctionalUnitPool(
            alus=params.int_alus,
            complex_units=params.int_complex_units,
            complex_ops=_INT_COMPLEX_OPS,
        )
        self.fp_units = FunctionalUnitPool(
            alus=params.fp_alus,
            complex_units=params.fp_complex_units,
            complex_ops=_FP_COMPLEX_OPS,
        )

        self.frontend: FrontEnd | None = None
        self._last_writer: dict[str, DynInst] = {}
        self._pending_events: list[tuple[Picoseconds, Callable[[], None]]] = []
        self._changes_in_progress: set[Domain] = set()
        self._last_commit_time: Picoseconds = 0
        self._configuration_changes: list[ConfigurationChange] = []

        # Phase-adaptive controllers (created lazily once the front end and
        # therefore the I-cache exist).
        self._dcache_controller: PhaseAdaptiveCacheController | None = None
        self._icache_controller: PhaseAdaptiveCacheController | None = None
        self._int_queue_controller: PhaseAdaptiveQueueController | None = None
        self._fp_queue_controller: PhaseAdaptiveQueueController | None = None
        self._interval_start_time: dict[str, Picoseconds] = {}
        self._last_interval_duration: Picoseconds = 0

    # ------------------------------------------------------------------ run

    def run(
        self,
        trace: Iterable[Instruction] | Iterator[Instruction],
        *,
        max_instructions: int,
        warmup_instructions: int = 0,
        workload_name: str = "",
    ) -> RunResult:
        """Simulate *trace* until ``max_instructions`` commit.

        ``warmup_instructions`` instructions are first streamed through the
        caches and branch predictor with no timing effects, so that the
        measured window starts from a warm memory hierarchy (the stand-in for
        the paper's 100 M-instruction fast-forward windows).
        """
        if max_instructions <= 0:
            raise ValueError("max_instructions must be positive")
        trace_iter = iter(trace)
        physical_icache = (
            ADAPTIVE_ICACHE_CONFIGS[-1].icache if self.spec.is_adaptive else None
        )
        self.frontend = FrontEnd(
            trace_iter,
            icache_config=self.spec.icache,
            physical_geometry=physical_icache,
            fetch_width=self.params.fetch_width,
            fetch_queue_capacity=self.params.fetch_queue_entries,
            decode_cycles=self.params.decode_cycles,
            use_b_partition=self.spec.use_b_partitions,
            icache_miss_handler=self._service_icache_miss,
        )
        if warmup_instructions > 0:
            self._warm_up(warmup_instructions)
        if self.phase_adaptive:
            self._build_controllers()

        self._main_loop(max_instructions)
        return self._build_result(workload_name)

    # ------------------------------------------------------------ internals

    def _warm_up(self, count: int) -> None:
        frontend = self.frontend
        assert frontend is not None
        ls_period = self.clocks[Domain.LOAD_STORE].period_ps
        for _ in range(count):
            instruction = frontend.take_instruction()
            if instruction is None:
                break
            frontend.warm(instruction)
            if instruction.is_memory_op and instruction.address is not None:
                self.hierarchy.access_data(
                    instruction.address,
                    is_store=instruction.is_store,
                    now_ps=0,
                    period_ps=ls_period,
                )
        frontend.reset_warm_state()
        self.hierarchy.reset_statistics()
        self.memory.reset()

    def _build_controllers(self) -> None:
        frontend = self.frontend
        assert frontend is not None
        control = self.control
        if control.adapt_caches:
            dcache_levels = (
                CacheLevel(
                    cache=self.hierarchy.l1d,
                    latencies=tuple(c.l1_latency for c in ADAPTIVE_DCACHE_CONFIGS),
                    a_ways=tuple(c.ways for c in ADAPTIVE_DCACHE_CONFIGS),
                ),
                CacheLevel(
                    cache=self.hierarchy.l2,
                    latencies=tuple(c.l2_latency for c in ADAPTIVE_DCACHE_CONFIGS),
                    a_ways=tuple(c.ways for c in ADAPTIVE_DCACHE_CONFIGS),
                ),
            )
            self._dcache_controller = PhaseAdaptiveCacheController(
                name="dcache",
                levels=dcache_levels,
                frequencies_ghz=tuple(c.frequency_ghz for c in ADAPTIVE_DCACHE_CONFIGS),
                beyond_last_level_ps=control.memory_time_ps,
                interval_instructions=control.interval_instructions,
                initial_index=self._current_dcache_index(),
                hysteresis=control.cache_hysteresis,
                consecutive_decisions_required=control.cache_consecutive_decisions,
                b_hit_overlap_factor=control.cache_b_hit_overlap_factor,
            )
            icache_levels = (
                CacheLevel(
                    cache=frontend.icache,
                    latencies=tuple(c.l1_latency for c in ADAPTIVE_ICACHE_CONFIGS),
                    a_ways=tuple(c.ways for c in ADAPTIVE_ICACHE_CONFIGS),
                ),
            )
            self._icache_controller = PhaseAdaptiveCacheController(
                name="icache",
                levels=icache_levels,
                frequencies_ghz=tuple(c.frequency_ghz for c in ADAPTIVE_ICACHE_CONFIGS),
                beyond_last_level_ps=control.icache_miss_time_ps,
                interval_instructions=control.interval_instructions,
                initial_index=self._current_icache_index(),
                hysteresis=control.cache_hysteresis,
                consecutive_decisions_required=control.cache_consecutive_decisions,
                b_hit_overlap_factor=control.cache_b_hit_overlap_factor,
            )
            self._interval_start_time["dcache"] = 0
            self._interval_start_time["icache"] = 0
        if control.adapt_queues:
            self._int_queue_controller = PhaseAdaptiveQueueController(
                name="int-queue",
                initial_size=self.spec.int_queue_size,
                hysteresis=control.queue_hysteresis,
                consecutive_decisions_required=control.queue_consecutive_decisions,
            )
            self._fp_queue_controller = PhaseAdaptiveQueueController(
                name="fp-queue",
                initial_size=self.spec.fp_queue_size,
                hysteresis=control.queue_hysteresis,
                consecutive_decisions_required=control.queue_consecutive_decisions,
            )

    def _current_dcache_index(self) -> int:
        return next(
            index
            for index, config in enumerate(ADAPTIVE_DCACHE_CONFIGS)
            if config.name == self.hierarchy.config.name
        )

    def _current_icache_index(self) -> int:
        assert self.frontend is not None
        return next(
            index
            for index, config in enumerate(ADAPTIVE_ICACHE_CONFIGS)
            if config.name == self.frontend.icache_config.name
        )

    # ---------------------------------------------------------- main loop

    def _main_loop(self, max_instructions: int) -> None:
        frontend = self.frontend
        assert frontend is not None
        clocks = self.clocks
        idle_iterations = 0
        last_committed = 0
        while self.rob.total_committed < max_instructions:
            if (
                frontend.trace_exhausted
                and self.rob.is_empty()
                and frontend.fetch_queue.occupancy == 0
            ):
                break
            domain = min(Domain, key=lambda d: clocks[d].next_edge)
            now = clocks[domain].next_edge
            if self._pending_events:
                self._process_pending_events(now)
            if domain is Domain.FRONT_END:
                self._front_end_cycle(now)
            elif domain is Domain.INTEGER:
                self._integer_cycle(now)
            elif domain is Domain.FLOATING_POINT:
                self._floating_point_cycle(now)
            else:
                self._load_store_cycle(now)
            clocks[domain].advance()

            if self.rob.total_committed == last_committed:
                idle_iterations += 1
                if idle_iterations > _DEADLOCK_LIMIT:
                    raise RuntimeError(
                        "simulation made no forward progress for "
                        f"{_DEADLOCK_LIMIT} cycles (committed="
                        f"{self.rob.total_committed}); this indicates a "
                        "pipeline modelling bug"
                    )
            else:
                idle_iterations = 0
                last_committed = self.rob.total_committed

    def _process_pending_events(self, now: Picoseconds) -> None:
        due = [event for event in self._pending_events if event[0] <= now]
        if not due:
            return
        self._pending_events = [event for event in self._pending_events if event[0] > now]
        for _, action in sorted(due, key=lambda event: event[0]):
            action()

    # ------------------------------------------------------------ front end

    def _front_end_cycle(self, now: Picoseconds) -> None:
        frontend = self.frontend
        assert frontend is not None
        clock = self.clocks[Domain.FRONT_END]
        period = clock.period_ps

        self._commit(now, clock)
        self._dispatch(now, clock)
        frontend.fetch_cycle(now, period)

    def _commit(self, now: Picoseconds, fe_clock: DomainClock) -> None:
        committed = 0
        while committed < self.params.retire_width:
            head = self.rob.head
            if head is None or not head.completed:
                break
            ready_time = head.completion_time or 0
            producer_clock = self._clock_by_name.get(head.exec_domain)
            if producer_clock is not None and producer_clock is not fe_clock:
                ready_time = self.sync.transfer(ready_time, producer_clock, fe_clock)
            if ready_time > now:
                break
            self.rob.commit_head()
            head.commit_time = now
            committed += 1
            self._last_commit_time = now
            dest = head.instruction.dest
            if dest is not None:
                if is_fp_register(dest):
                    self.fp_regs.release()
                else:
                    self.int_regs.release()
                if self._last_writer.get(dest) is head:
                    del self._last_writer[dest]
            if head.is_memory_op:
                self.lsq.release(head)
            if self.phase_adaptive:
                self._on_commit(now)

    def _dispatch(self, now: Picoseconds, fe_clock: DomainClock) -> None:
        frontend = self.frontend
        assert frontend is not None
        dispatched = 0
        while dispatched < self.params.decode_width:
            inst = frontend.fetch_queue.peek()
            if inst is None or inst.dispatch_ready_time > now:
                break
            if not self.rob.has_space:
                break
            instruction = inst.instruction
            dest = instruction.dest
            regfile = None
            if dest is not None:
                regfile = self.fp_regs if is_fp_register(dest) else self.int_regs
                if not regfile.can_allocate():
                    break
            is_fp_op = uses_fp_queue(instruction.op)
            queue = self.fp_queue if is_fp_op else self.int_queue
            if not queue.has_space:
                break
            if instruction.is_memory_op and not self.lsq.has_space:
                break

            frontend.fetch_queue.pop()
            producers = tuple(
                self._last_writer.get(source) for source in instruction.sources
            )
            inst.producers = producers
            if dest is not None and regfile is not None:
                regfile.allocate()
                self._last_writer[dest] = inst
            self.rob.dispatch(inst)
            if instruction.is_memory_op:
                self.lsq.allocate(inst)
            inst.dispatch_time = now
            target_domain = Domain.FLOATING_POINT if is_fp_op else Domain.INTEGER
            arrival = self.sync.transfer(
                now, fe_clock, self.clocks[target_domain], fifo=True
            )
            queue.dispatch(inst, arrival)
            dispatched += 1

            if self.phase_adaptive and self.control.adapt_queues:
                self._feed_queue_controllers(instruction, now)

    # --------------------------------------------------------- exec domains

    def _operand_ready(self, inst: DynInst, now: Picoseconds, domain: Domain) -> bool:
        consumer_clock = self.clocks[domain]
        for producer in inst.producers:
            if producer is None:
                continue
            completion = producer.completion_time
            if completion is None:
                return False
            if producer.exec_domain != domain.value:
                producer_clock = self._clock_by_name.get(producer.exec_domain)
                if producer_clock is not None:
                    completion = self.sync.transfer(
                        completion, producer_clock, consumer_clock, record=False
                    )
            if completion > now:
                return False
        return True

    def _integer_cycle(self, now: Picoseconds) -> None:
        clock = self.clocks[Domain.INTEGER]
        period = clock.period_ps
        queue = self.int_queue
        queue.admit_arrivals(now)
        self.int_units.begin_cycle(now)
        issued = 0
        ready = queue.ready_entries(
            now, lambda inst, time: self._operand_ready(inst, time, Domain.INTEGER)
        )
        for inst in ready:
            if issued >= self.params.issue_width:
                break
            op = inst.op
            latency_ps = EXECUTION_LATENCY[op] * period
            if not self.int_units.try_reserve(op, now, latency_ps):
                continue
            queue.remove(inst)
            inst.issue_time = now
            issued += 1
            if inst.is_memory_op:
                inst.agen_time = now + period
                inst.lsq_arrival_time = self.sync.transfer(
                    inst.agen_time, clock, self.clocks[Domain.LOAD_STORE], fifo=True
                )
            else:
                completion = now + latency_ps
                inst.completion_time = completion
                inst.exec_domain = Domain.INTEGER.value
                if inst.mispredicted:
                    self._schedule_branch_redirect(inst, completion, clock)
        queue.sample_occupancy()

    def _floating_point_cycle(self, now: Picoseconds) -> None:
        clock = self.clocks[Domain.FLOATING_POINT]
        period = clock.period_ps
        queue = self.fp_queue
        queue.admit_arrivals(now)
        self.fp_units.begin_cycle(now)
        issued = 0
        ready = queue.ready_entries(
            now, lambda inst, time: self._operand_ready(inst, time, Domain.FLOATING_POINT)
        )
        for inst in ready:
            if issued >= self.params.issue_width:
                break
            op = inst.op
            latency_ps = EXECUTION_LATENCY[op] * period
            if not self.fp_units.try_reserve(op, now, latency_ps):
                continue
            queue.remove(inst)
            inst.issue_time = now
            issued += 1
            inst.completion_time = now + latency_ps
            inst.exec_domain = Domain.FLOATING_POINT.value
        queue.sample_occupancy()

    def _load_store_cycle(self, now: Picoseconds) -> None:
        clock = self.clocks[Domain.LOAD_STORE]
        period = clock.period_ps
        performed = 0
        for inst in self.lsq.occupants():
            if performed >= self.params.cache_ports:
                break
            if inst.memory_issued:
                continue
            arrival = inst.lsq_arrival_time
            if arrival is None or arrival > now:
                continue
            address = inst.instruction.address or 0
            if inst.is_load:
                older_store = self.lsq.pending_older_store(inst)
                if older_store is not None:
                    forwardable = self.lsq.forwardable_store(inst, now)
                    if forwardable is None:
                        continue
                    inst.completion_time = now + period
                    inst.exec_domain = Domain.LOAD_STORE.value
                    inst.memory_issued = True
                    self.lsq.stats.loads_forwarded += 1
                    performed += 1
                    continue
                result = self.hierarchy.access_data(
                    address, is_store=False, now_ps=now, period_ps=period
                )
                inst.completion_time = result.completion_ps
                inst.exec_domain = Domain.LOAD_STORE.value
                inst.memory_issued = True
                self.lsq.stats.loads_performed += 1
                performed += 1
            else:
                result = self.hierarchy.access_data(
                    address, is_store=True, now_ps=now, period_ps=period
                )
                inst.completion_time = result.completion_ps
                inst.exec_domain = Domain.LOAD_STORE.value
                inst.memory_issued = True
                self.lsq.stats.stores_performed += 1
                performed += 1

    #: Pipeline depth already represented by the explicit fetch/decode/dispatch
    #: and issue modelling.  The configured misprediction penalties (Table 5)
    #: are *total* refill depths, so the explicitly added redirect delay is the
    #: configured penalty minus what the re-fetched instructions will pay
    #: anyway on their way back to the execution units.
    _MODELLED_REFILL_FRONT_END_CYCLES = 4
    _MODELLED_REFILL_INTEGER_CYCLES = 3

    def _schedule_branch_redirect(
        self, branch: DynInst, completion: Picoseconds, int_clock: DomainClock
    ) -> None:
        frontend = self.frontend
        assert frontend is not None
        fe_clock = self.clocks[Domain.FRONT_END]
        extra_int = max(
            0, self.spec.mispredict_integer_cycles - self._MODELLED_REFILL_INTEGER_CYCLES
        )
        extra_fe = max(
            0,
            self.spec.mispredict_front_end_cycles - self._MODELLED_REFILL_FRONT_END_CYCLES,
        )
        resolved = completion + extra_int * int_clock.period_ps
        redirect = self.sync.transfer(resolved, int_clock, fe_clock)
        redirect += extra_fe * fe_clock.period_ps
        frontend.resume_after_branch(branch, redirect)

    def _service_icache_miss(self, address: int, now: Picoseconds) -> Picoseconds:
        """Service an I-cache miss from the unified L2 across the boundary."""
        fe_clock = self.clocks[Domain.FRONT_END]
        ls_clock = self.clocks[Domain.LOAD_STORE]
        request = self.sync.transfer(now, fe_clock, ls_clock)
        ready = self.hierarchy.access_l2_for_instruction(
            address, now_ps=request, period_ps=ls_clock.period_ps
        )
        return self.sync.transfer(ready, ls_clock, fe_clock)

    # ------------------------------------------------------------ adaptation

    def _feed_queue_controllers(self, instruction: Instruction, now: Picoseconds) -> None:
        dest = instruction.dest
        dest_index = register_index(dest) if dest is not None else None
        source_indices = tuple(register_index(source) for source in instruction.sources)
        is_fp_op = uses_fp_queue(instruction.op)
        for controller, domain, queue in (
            (self._int_queue_controller, Domain.INTEGER, self.int_queue),
            (self._fp_queue_controller, Domain.FLOATING_POINT, self.fp_queue),
        ):
            if controller is None:
                continue
            tracked = is_fp_op if domain is Domain.FLOATING_POINT else not is_fp_op
            if controller.observe(dest_index, source_indices, tracked=tracked):
                decision = controller.evaluate()
                if decision.changed and domain not in self._changes_in_progress:
                    self._apply_queue_change(controller, domain, queue, decision.best_size, now)

    def _on_commit(self, now: Picoseconds) -> None:
        for controller, structure in (
            (self._dcache_controller, "dcache"),
            (self._icache_controller, "icache"),
        ):
            if controller is None:
                continue
            if not controller.note_committed():
                continue
            interval_duration = now - self._interval_start_time.get(structure, 0)
            self._interval_start_time[structure] = now
            self._last_interval_duration = max(interval_duration, 1)
            decision = controller.evaluate_interval()
            domain = Domain.LOAD_STORE if structure == "dcache" else Domain.FRONT_END
            if decision.changed and domain not in self._changes_in_progress:
                self._apply_cache_change(structure, domain, decision.best_index, now)
            else:
                self._record_configuration(structure, domain, decision.best_index, now)

    def _configuration_name(self, structure: str, index: int) -> str:
        if structure == "dcache":
            return ADAPTIVE_DCACHE_CONFIGS[index].name
        if structure == "icache":
            return ADAPTIVE_ICACHE_CONFIGS[index].name
        return str(index)

    def _record_configuration(
        self, structure: str, domain: Domain, index: int, now: Picoseconds
    ) -> None:
        self._configuration_changes.append(
            ConfigurationChange(
                committed_instructions=self.rob.total_committed,
                time_ps=now,
                domain=domain.value,
                structure=structure,
                configuration=self._configuration_name(structure, index),
                index=index,
            )
        )

    def _apply_cache_change(
        self, structure: str, domain: Domain, new_index: int, now: Picoseconds
    ) -> None:
        clock = self.clocks[domain]
        if structure == "dcache":
            config = ADAPTIVE_DCACHE_CONFIGS[new_index]
            new_frequency = config.frequency_ghz
            apply_structure = lambda: self.hierarchy.apply_config(config)  # noqa: E731
        else:
            config = ADAPTIVE_ICACHE_CONFIGS[new_index]
            new_frequency = config.frequency_ghz
            frontend = self.frontend
            assert frontend is not None
            apply_structure = lambda: frontend.apply_icache_config(  # noqa: E731
                config, use_b_partition=self.spec.use_b_partitions
            )
        lock_time = self.pll.sample_lock_ps(self._last_interval_duration)
        upsizing = new_frequency < clock.frequency_ghz
        self._changes_in_progress.add(domain)

        def finish() -> None:
            if upsizing:
                apply_structure()
            clock.set_frequency(new_frequency)
            self._changes_in_progress.discard(domain)

        if not upsizing:
            # Downsizing: the smaller structure is safe at the old (slower)
            # frequency, so it switches immediately; the faster clock waits
            # for the PLL to re-lock.
            apply_structure()
        self._pending_events.append((now + lock_time, finish))
        self._record_configuration(structure, domain, new_index, now)

    def _apply_queue_change(
        self,
        controller: PhaseAdaptiveQueueController,
        domain: Domain,
        queue: IssueQueue,
        new_size: int,
        now: Picoseconds,
    ) -> None:
        clock = self.clocks[domain]
        new_frequency = ISSUE_QUEUE_FREQUENCY_GHZ[new_size]
        upsizing = new_size > queue.capacity
        lock_time = self.pll.sample_lock_ps(self._last_interval_duration or None)
        self._changes_in_progress.add(domain)

        def finish() -> None:
            if upsizing:
                queue.set_capacity(new_size)
            clock.set_frequency(new_frequency)
            self._changes_in_progress.discard(domain)

        if not upsizing:
            queue.set_capacity(new_size)
        self._pending_events.append((now + lock_time, finish))
        structure = "int-queue" if domain is Domain.INTEGER else "fp-queue"
        self._configuration_changes.append(
            ConfigurationChange(
                committed_instructions=self.rob.total_committed,
                time_ps=now,
                domain=domain.value,
                structure=structure,
                configuration=str(new_size),
                index=new_size,
            )
        )

    # ------------------------------------------------------------- results

    def _build_result(self, workload_name: str) -> RunResult:
        frontend = self.frontend
        assert frontend is not None
        hierarchy_stats = self.hierarchy.stats
        result = RunResult(
            workload=workload_name,
            machine=self.spec.describe(),
            style=self.spec.style.value,
            committed_instructions=self.rob.total_committed,
            execution_time_ps=self._last_commit_time,
            domain_cycles={
                domain.value: clock.cycle_count for domain, clock in self.clocks.items()
            },
            final_frequencies_ghz={
                domain.value: clock.frequency_ghz for domain, clock in self.clocks.items()
            },
            branch_predictions=frontend.stats.branches,
            branch_mispredictions=frontend.stats.mispredictions,
            icache_accesses=frontend.stats.icache_accesses,
            icache_b_hits=frontend.stats.icache_b_hits,
            icache_misses=frontend.stats.icache_misses,
            loads=hierarchy_stats.loads,
            stores=hierarchy_stats.stores,
            l1d_hits_a=hierarchy_stats.l1_hits_a,
            l1d_hits_b=hierarchy_stats.l1_hits_b,
            l1d_misses=hierarchy_stats.l1_misses,
            l2_hits_a=hierarchy_stats.l2_hits_a,
            l2_hits_b=hierarchy_stats.l2_hits_b,
            l2_misses=hierarchy_stats.l2_misses,
            memory_accesses=self.memory.stats.accesses,
            loads_forwarded=self.lsq.stats.loads_forwarded,
            sync_transfers=self.sync.stats.transfers,
            sync_penalties=self.sync.stats.penalties,
            fetch_stall_cycles=frontend.stats.fetch_stall_cycles,
            branch_stall_cycles=frontend.stats.branch_stall_cycles,
            int_queue_average_occupancy=self.int_queue.average_occupancy,
            fp_queue_average_occupancy=self.fp_queue.average_occupancy,
            configuration_changes=list(self._configuration_changes),
        )
        return result
