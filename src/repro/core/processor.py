"""The adaptive MCD processor simulator.

:class:`MCDProcessor` ties the substrates together into the four-domain GALS
machine of the paper.  The same class also simulates the fully synchronous
baseline: a synchronous :class:`~repro.core.configuration.MachineSpec` gives
every domain the same clock, disables inter-domain synchronisation costs and
uses the shallower misprediction penalty, so the two machines share every
line of pipeline modelling and differ only where the paper says they differ.

The simulation is event driven over clock edges: the main loop repeatedly
advances whichever domain has the earliest pending clock edge and performs
that domain's work for one cycle.  Times are integer picoseconds throughout.
"""

from __future__ import annotations

from operator import attrgetter
from typing import Callable, Iterable, Iterator

from repro.caches.hierarchy import CacheHierarchy
from repro.caches.memory import MainMemory
from repro.clocks.clock import DomainClock
from repro.clocks.time import Picoseconds
from repro.core.configuration import MachineSpec
from repro.core.controllers.cache_controller import (
    CacheLevel,
    PhaseAdaptiveCacheController,
)
from repro.core.controllers.params import AdaptiveControlParams
from repro.core.controllers.queue_controller import PhaseAdaptiveQueueController
from repro.core.domains import Domain
from repro.core.pll import PLLModel
from repro.core.synchronization import DEFAULT_WINDOW_FRACTION, SynchronizationModel
from repro.isa.instruction import Instruction
from repro.isa.opcodes import EXECUTION_LATENCY, OpClass, uses_fp_queue
from repro.isa.registers import is_fp_register, register_index
from repro.pipeline.dyninst import DynInst
from repro.pipeline.frontend import FrontEnd
from repro.pipeline.issue_queue import IssueQueue
from repro.pipeline.lsq import LoadStoreQueue
from repro.pipeline.resources import FunctionalUnitPool, PhysicalRegisterFile
from repro.pipeline.rob import ReorderBuffer
from repro.analysis.metrics import ConfigurationChange, RunResult
from repro.timing.cacti import CacheGeometry
from repro.timing.tables import (
    ADAPTIVE_DCACHE_CONFIGS,
    ADAPTIVE_ICACHE_CONFIGS,
    ISSUE_QUEUE_FREQUENCY_GHZ,
    ISSUE_QUEUE_SIZES,
    BranchPredictorGeometry,
)

_INT_COMPLEX_OPS = frozenset({OpClass.INT_MULT, OpClass.INT_DIV})
_FP_COMPLEX_OPS = frozenset({OpClass.FP_MULT, OpClass.FP_DIV, OpClass.FP_SQRT})

# Hoisted hot-loop constants: domain name strings (compared against
# ``DynInst.exec_domain`` every wake-up check) and the issue-order sort key.
_INTEGER_DOMAIN = Domain.INTEGER.value
_FLOATING_POINT_DOMAIN = Domain.FLOATING_POINT.value
_LOAD_STORE_DOMAIN = Domain.LOAD_STORE.value
_SEQ_KEY = attrgetter("seq")

#: Main-loop iterations without a commit after which the simulator assumes a
#: modelling bug rather than spinning forever.
_DEADLOCK_LIMIT = 2_000_000


class MCDProcessor:
    """Simulator for one machine specification.

    Parameters
    ----------
    spec:
        The machine to simulate (adaptive MCD or fully synchronous).
    control:
        Parameters of the phase-adaptive controllers; only used when
        ``phase_adaptive`` is True.
    phase_adaptive:
        Enable the run-time control algorithms (Accounting-Cache controller
        and ILP-tracking queue controllers).  Requires an adaptive spec.
    seed:
        Seed for the PLL lock-time sampler and clock jitter.
    jitter_fraction:
        Optional peak-to-peak clock jitter as a fraction of each period.
    sync_window_fraction:
        Fraction of the faster clock's period forming the unsafe capture
        window at domain crossings (0.3 in the paper; the knob behind the
        paper's synchronisation-window sensitivity analysis).
    fast_forward:
        Enable the quiescent-phase fast-forward: when the pipeline is
        completely drained and fetch is stalled (branch redirect or I-cache
        miss in flight), idle clock edges are batch-consumed instead of being
        walked one main-loop iteration at a time.  Bit-identical by
        construction — the skipped edges provably perform no work beyond
        stall/occupancy accounting, which is applied in bulk — and therefore
        on by default; the flag exists so tests can compare both paths.
        Valid under clock jitter too: the jitter offset stream is
        index-addressable, so bulk-skipped edges land exactly where
        one-at-a-time advances would have.
    """

    def __init__(
        self,
        spec: MachineSpec,
        *,
        control: AdaptiveControlParams | None = None,
        phase_adaptive: bool = False,
        seed: int = 0,
        jitter_fraction: float = 0.0,
        sync_window_fraction: float = DEFAULT_WINDOW_FRACTION,
        fast_forward: bool = True,
    ) -> None:
        if phase_adaptive and not spec.is_adaptive:
            raise ValueError("phase-adaptive control requires an adaptive MCD spec")
        self.spec = spec
        self.params = spec.parameters
        self.control = control if control is not None else AdaptiveControlParams()
        self.phase_adaptive = phase_adaptive

        self.clocks: dict[Domain, DomainClock] = {
            domain: DomainClock(
                domain.value,
                spec.frequency(domain),
                jitter_fraction=jitter_fraction,
                seed=seed,
            )
            for domain in Domain
        }
        self._clock_by_name = {domain.value: clock for domain, clock in self.clocks.items()}
        self.sync = SynchronizationModel(
            enabled=spec.inter_domain_sync, window_fraction=sync_window_fraction
        )
        self.pll = PLLModel(
            mean_us=self.control.pll_mean_us,
            min_us=self.control.pll_min_us,
            max_us=self.control.pll_max_us,
            interval_scaled=self.control.pll_interval_scaled,
            seed=seed,
        )

        params = self.params
        self.memory = MainMemory(
            first_chunk_ns=params.memory_first_chunk_ns,
            subsequent_chunk_ns=params.memory_subsequent_chunk_ns,
        )
        self.hierarchy = CacheHierarchy(
            spec.dcache, b_enabled=spec.use_b_partitions, memory=self.memory
        )
        self.rob = ReorderBuffer(params.reorder_buffer_entries)
        self.lsq = LoadStoreQueue(params.load_store_queue_entries)
        self.int_regs = PhysicalRegisterFile(params.physical_int_registers)
        self.fp_regs = PhysicalRegisterFile(params.physical_fp_registers)
        self.int_queue = IssueQueue(spec.int_queue_size, name="int-queue")
        self.fp_queue = IssueQueue(spec.fp_queue_size, name="fp-queue")
        self.int_units = FunctionalUnitPool(
            alus=params.int_alus,
            complex_units=params.int_complex_units,
            complex_ops=_INT_COMPLEX_OPS,
        )
        self.fp_units = FunctionalUnitPool(
            alus=params.fp_alus,
            complex_units=params.fp_complex_units,
            complex_ops=_FP_COMPLEX_OPS,
        )

        self.frontend: FrontEnd | None = None
        self._last_writer: dict[str, DynInst] = {}
        self._pending_events: list[tuple[Picoseconds, Callable[[], None]]] = []
        self._changes_in_progress: set[Domain] = set()
        self._last_commit_time: Picoseconds = 0
        self._configuration_changes: list[ConfigurationChange] = []

        # Phase-adaptive controllers (created lazily once the front end and
        # therefore the I-cache exist).
        self._dcache_controller: PhaseAdaptiveCacheController | None = None
        self._icache_controller: PhaseAdaptiveCacheController | None = None
        self._int_queue_controller: PhaseAdaptiveQueueController | None = None
        self._fp_queue_controller: PhaseAdaptiveQueueController | None = None
        self._interval_start_time: dict[str, Picoseconds] = {}
        self._last_interval_duration: Picoseconds = 0

        # Quiescent-phase fast-forward (see the constructor docstring).
        self._fast_forward_enabled = fast_forward
        #: Number of times the fast-forward batch-consumed at least one edge.
        self.fast_forward_invocations = 0
        #: Total clock edges consumed in bulk across all domains.
        self.fast_forward_cycles = 0

    # ------------------------------------------------------------------ run

    def run(
        self,
        trace: Iterable[Instruction] | Iterator[Instruction],
        *,
        max_instructions: int,
        warmup_instructions: int = 0,
        workload_name: str = "",
    ) -> RunResult:
        """Simulate *trace* until ``max_instructions`` commit.

        ``warmup_instructions`` instructions are first streamed through the
        caches and branch predictor with no timing effects, so that the
        measured window starts from a warm memory hierarchy (the stand-in for
        the paper's 100 M-instruction fast-forward windows).
        """
        if max_instructions <= 0:
            raise ValueError("max_instructions must be positive")
        trace_iter = iter(trace)
        physical_icache = (
            ADAPTIVE_ICACHE_CONFIGS[-1].icache if self.spec.is_adaptive else None
        )
        self.frontend = FrontEnd(
            trace_iter,
            icache_config=self.spec.icache,
            physical_geometry=physical_icache,
            fetch_width=self.params.fetch_width,
            fetch_queue_capacity=self.params.fetch_queue_entries,
            decode_cycles=self.params.decode_cycles,
            use_b_partition=self.spec.use_b_partitions,
            icache_miss_handler=self._service_icache_miss,
        )
        if warmup_instructions > 0:
            self._warm_up(warmup_instructions)
        if self.phase_adaptive:
            self._build_controllers()

        self._main_loop(max_instructions)
        return self._build_result(workload_name)

    # ------------------------------------------------------------ internals

    def _warm_up(self, count: int) -> None:
        frontend = self.frontend
        assert frontend is not None
        ls_period = self.clocks[Domain.LOAD_STORE].period_ps
        take_instruction = frontend.take_instruction
        warm = frontend.warm
        access_data = self.hierarchy.access_data
        for _ in range(count):
            instruction = take_instruction()
            if instruction is None:
                break
            warm(instruction)
            if instruction.is_memory_op and instruction.address is not None:
                access_data(
                    instruction.address,
                    is_store=instruction.is_store,
                    now_ps=0,
                    period_ps=ls_period,
                )
        frontend.reset_warm_state()
        self.hierarchy.reset_statistics()
        self.memory.reset()

    def _build_controllers(self) -> None:
        frontend = self.frontend
        assert frontend is not None
        control = self.control
        if control.adapt_caches:
            dcache_levels = (
                CacheLevel(
                    cache=self.hierarchy.l1d,
                    latencies=tuple(c.l1_latency for c in ADAPTIVE_DCACHE_CONFIGS),
                    a_ways=tuple(c.ways for c in ADAPTIVE_DCACHE_CONFIGS),
                ),
                CacheLevel(
                    cache=self.hierarchy.l2,
                    latencies=tuple(c.l2_latency for c in ADAPTIVE_DCACHE_CONFIGS),
                    a_ways=tuple(c.ways for c in ADAPTIVE_DCACHE_CONFIGS),
                ),
            )
            self._dcache_controller = PhaseAdaptiveCacheController(
                name="dcache",
                levels=dcache_levels,
                frequencies_ghz=tuple(c.frequency_ghz for c in ADAPTIVE_DCACHE_CONFIGS),
                beyond_last_level_ps=control.memory_time_ps,
                interval_instructions=control.interval_instructions,
                initial_index=self._current_dcache_index(),
                hysteresis=control.cache_hysteresis,
                consecutive_decisions_required=control.cache_consecutive_decisions,
                b_hit_overlap_factor=control.cache_b_hit_overlap_factor,
            )
            icache_levels = (
                CacheLevel(
                    cache=frontend.icache,
                    latencies=tuple(c.l1_latency for c in ADAPTIVE_ICACHE_CONFIGS),
                    a_ways=tuple(c.ways for c in ADAPTIVE_ICACHE_CONFIGS),
                ),
            )
            self._icache_controller = PhaseAdaptiveCacheController(
                name="icache",
                levels=icache_levels,
                frequencies_ghz=tuple(c.frequency_ghz for c in ADAPTIVE_ICACHE_CONFIGS),
                beyond_last_level_ps=control.icache_miss_time_ps,
                interval_instructions=control.interval_instructions,
                initial_index=self._current_icache_index(),
                hysteresis=control.cache_hysteresis,
                consecutive_decisions_required=control.cache_consecutive_decisions,
                b_hit_overlap_factor=control.cache_b_hit_overlap_factor,
            )
            self._interval_start_time["dcache"] = 0
            self._interval_start_time["icache"] = 0
        if control.adapt_queues:
            self._int_queue_controller = PhaseAdaptiveQueueController(
                name="int-queue",
                initial_size=self.spec.int_queue_size,
                hysteresis=control.queue_hysteresis,
                consecutive_decisions_required=control.queue_consecutive_decisions,
            )
            self._fp_queue_controller = PhaseAdaptiveQueueController(
                name="fp-queue",
                initial_size=self.spec.fp_queue_size,
                hysteresis=control.queue_hysteresis,
                consecutive_decisions_required=control.queue_consecutive_decisions,
            )

    def _current_dcache_index(self) -> int:
        return next(
            index
            for index, config in enumerate(ADAPTIVE_DCACHE_CONFIGS)
            if config.name == self.hierarchy.config.name
        )

    def _current_icache_index(self) -> int:
        assert self.frontend is not None
        return next(
            index
            for index, config in enumerate(ADAPTIVE_ICACHE_CONFIGS)
            if config.name == self.frontend.icache_config.name
        )

    # ---------------------------------------------------------- main loop

    def _main_loop(self, max_instructions: int) -> None:
        frontend = self.frontend
        assert frontend is not None
        rob = self.rob
        fetch_queue = frontend.fetch_queue
        clocks = self.clocks
        # Hot bindings: the loop body runs once per clock edge across the
        # whole run, so every attribute lookup it avoids matters.  The edge
        # selection is an explicit four-way compare (ties resolve in Domain
        # declaration order, exactly as ``min(Domain, key=...)`` did).
        fe_clock = clocks[Domain.FRONT_END]
        int_clock = clocks[Domain.INTEGER]
        fp_clock = clocks[Domain.FLOATING_POINT]
        ls_clock = clocks[Domain.LOAD_STORE]
        fe_cycle = self._front_end_cycle
        int_cycle = self._integer_cycle
        fp_cycle = self._floating_point_cycle
        ls_cycle = self._load_store_cycle
        fast_forward = self._fast_forward_enabled
        try_fast_forward = self._try_fast_forward
        idle_iterations = 0
        last_committed = 0
        while rob.total_committed < max_instructions:
            if rob.is_empty() and fetch_queue.occupancy == 0:
                if frontend.trace_exhausted:
                    break
                if fast_forward:
                    try_fast_forward(fe_clock, int_clock, fp_clock, ls_clock)

            edge = fe_clock.next_edge
            clock = fe_clock
            cycle = fe_cycle
            candidate = int_clock.next_edge
            if candidate < edge:
                edge = candidate
                clock = int_clock
                cycle = int_cycle
            candidate = fp_clock.next_edge
            if candidate < edge:
                edge = candidate
                clock = fp_clock
                cycle = fp_cycle
            candidate = ls_clock.next_edge
            if candidate < edge:
                edge = candidate
                clock = ls_clock
                cycle = ls_cycle

            if self._pending_events:
                self._process_pending_events(edge)
            cycle(edge)
            clock.advance()

            committed = rob.total_committed
            if committed == last_committed:
                idle_iterations += 1
                if idle_iterations > _DEADLOCK_LIMIT:
                    raise RuntimeError(
                        "simulation made no forward progress for "
                        f"{_DEADLOCK_LIMIT} cycles (committed="
                        f"{committed}); this indicates a "
                        "pipeline modelling bug"
                    )
            else:
                idle_iterations = 0
                last_committed = committed

    def _try_fast_forward(
        self,
        fe_clock: DomainClock,
        int_clock: DomainClock,
        fp_clock: DomainClock,
        ls_clock: DomainClock,
    ) -> None:
        """Batch-consume provably idle clock edges while the machine drains.

        Preconditions (checked by the caller): the reorder buffer and fetch
        queue are empty, so no instruction is in flight anywhere — the issue
        queues, LSQ and functional units are all drained.  Until the front
        end fetches again, every domain's cycle is a no-op whose only side
        effects are the front end's stall counter and the issue queues'
        zero-occupancy samples, so those edges can be consumed in bulk with
        the same counter updates.

        Fetch resumes at the first front-end edge at or after the front
        end's stall horizon (branch redirect or I-cache refill time), so
        edges strictly before that — across all four domains — are skippable.
        Pending reconfiguration events cap the horizon (they must fire at
        exactly the edge they would have fired at), and any in-progress
        reconfiguration bypasses the fast-forward entirely: while the
        controllers are mid-change the conservative path keeps the event and
        frequency sequencing trivially identical.
        """
        frontend = self.frontend
        assert frontend is not None
        if self._changes_in_progress or frontend.waiting_for_branch is not None:
            return
        horizon = fe_clock.edge_at_or_after(frontend.stall_until)
        if self._pending_events:
            earliest = min(event[0] for event in self._pending_events)
            if earliest < horizon:
                horizon = earliest

        skipped = 0
        # skip_edges_before consumes the edges strictly before the horizon —
        # on a jittered clock by walking the index-addressable offset stream
        # once, landing exactly where per-edge advances would have.
        count = fe_clock.skip_edges_before(horizon)
        if count:
            frontend.stats.fetch_stall_cycles += count
            skipped += count
        for clock, queue in ((int_clock, self.int_queue), (fp_clock, self.fp_queue)):
            count = clock.skip_edges_before(horizon)
            if count:
                # The per-cycle occupancy sample of an empty queue, in bulk.
                queue.occupancy_samples += count
                skipped += count
        skipped += ls_clock.skip_edges_before(horizon)

        if skipped:
            self.fast_forward_invocations += 1
            self.fast_forward_cycles += skipped

    def _process_pending_events(self, now: Picoseconds) -> None:
        due = [event for event in self._pending_events if event[0] <= now]
        if not due:
            return
        self._pending_events = [event for event in self._pending_events if event[0] > now]
        for _, action in sorted(due, key=lambda event: event[0]):
            action()

    # ------------------------------------------------------------ front end

    def _front_end_cycle(self, now: Picoseconds) -> None:
        frontend = self.frontend
        assert frontend is not None
        clock = self.clocks[Domain.FRONT_END]
        period = clock.period_ps

        self._commit(now, clock)
        self._dispatch(now, clock)
        frontend.fetch_cycle(now, period)

    def _commit(self, now: Picoseconds, fe_clock: DomainClock) -> None:
        rob = self.rob
        clock_by_name = self._clock_by_name
        transfer = self.sync.transfer
        last_writer = self._last_writer
        phase_adaptive = self.phase_adaptive
        committed = 0
        retire_width = self.params.retire_width
        while committed < retire_width:
            head = rob.head
            if head is None or head.completion_time is None:
                break
            ready_time = head.completion_time or 0
            producer_clock = clock_by_name.get(head.exec_domain)
            if producer_clock is not None and producer_clock is not fe_clock:
                ready_time = transfer(ready_time, producer_clock, fe_clock)
            if ready_time > now:
                break
            rob.commit_head()
            head.commit_time = now
            committed += 1
            self._last_commit_time = now
            dest = head.instruction.dest
            if dest is not None:
                if is_fp_register(dest):
                    self.fp_regs.release()
                else:
                    self.int_regs.release()
                if last_writer.get(dest) is head:
                    del last_writer[dest]
            if head.is_memory_op:
                self.lsq.release(head)
            if phase_adaptive:
                self._on_commit(now)

    def _dispatch(self, now: Picoseconds, fe_clock: DomainClock) -> None:
        frontend = self.frontend
        assert frontend is not None
        fetch_queue = frontend.fetch_queue
        rob = self.rob
        lsq = self.lsq
        last_writer = self._last_writer
        last_writer_get = last_writer.get
        transfer = self.sync.transfer
        int_clock = self.clocks[Domain.INTEGER]
        fp_clock = self.clocks[Domain.FLOATING_POINT]
        feed_controllers = self.phase_adaptive and self.control.adapt_queues
        dispatched = 0
        decode_width = self.params.decode_width
        while dispatched < decode_width:
            inst = fetch_queue.peek()
            if inst is None or inst.dispatch_ready_time > now:
                break
            if not rob.has_space:
                break
            instruction = inst.instruction
            dest = instruction.dest
            regfile = None
            if dest is not None:
                regfile = self.fp_regs if is_fp_register(dest) else self.int_regs
                if not regfile.can_allocate():
                    break
            is_fp_op = inst.is_fp
            queue = self.fp_queue if is_fp_op else self.int_queue
            if not queue.has_space:
                break
            is_memory_op = inst.is_memory_op
            if is_memory_op and not lsq.has_space:
                break

            fetch_queue.pop()
            inst.producers = tuple(
                last_writer_get(source) for source in instruction.sources
            )
            if dest is not None and regfile is not None:
                regfile.allocate()
                last_writer[dest] = inst
            rob.dispatch(inst)
            if is_memory_op:
                lsq.allocate(inst)
            inst.dispatch_time = now
            arrival = transfer(
                now, fe_clock, fp_clock if is_fp_op else int_clock, fifo=True
            )
            queue.dispatch(inst, arrival)
            dispatched += 1

            if feed_controllers:
                self._feed_queue_controllers(instruction, now)

    # --------------------------------------------------------- exec domains

    def _operand_ready(self, inst: DynInst, now: Picoseconds, domain: Domain) -> bool:
        consumer_clock = self.clocks[domain]
        for producer in inst.producers:
            if producer is None:
                continue
            completion = producer.completion_time
            if completion is None:
                return False
            if producer.exec_domain != domain.value:
                producer_clock = self._clock_by_name.get(producer.exec_domain)
                if producer_clock is not None:
                    completion = self.sync.transfer(
                        completion, producer_clock, consumer_clock, record=False
                    )
            if completion > now:
                return False
        return True

    def _ready_entries(
        self, queue: IssueQueue, now: Picoseconds, domain_name: str, clock: DomainClock
    ) -> list[DynInst]:
        """Operand-ready queue entries, oldest first.

        Inline equivalent of ``queue.ready_entries(now, operand_ready)``: the
        wake-up check runs for every queue entry every cycle, so the
        per-entry callback indirection of :meth:`_operand_ready` is flattened
        into one loop with hoisted bindings.
        """
        entries = queue.pending_entries()
        if not entries:
            return []
        clock_by_name = self._clock_by_name
        transfer = self.sync.transfer
        ready: list[DynInst] = []
        for inst in entries:
            for producer in inst.producers:
                if producer is None:
                    continue
                completion = producer.completion_time
                if completion is None:
                    break
                if producer.exec_domain != domain_name:
                    producer_clock = clock_by_name.get(producer.exec_domain)
                    if producer_clock is not None:
                        completion = transfer(
                            completion, producer_clock, clock, record=False
                        )
                if completion > now:
                    break
            else:
                ready.append(inst)
        ready.sort(key=_SEQ_KEY)
        return ready

    def _integer_cycle(self, now: Picoseconds) -> None:
        clock = self.clocks[Domain.INTEGER]
        period = clock.period_ps
        queue = self.int_queue
        queue.admit_arrivals(now)
        units = self.int_units
        units.begin_cycle(now)
        ready = self._ready_entries(queue, now, _INTEGER_DOMAIN, clock)
        if ready:
            issue_width = self.params.issue_width
            execution_latency = EXECUTION_LATENCY
            transfer = self.sync.transfer
            ls_clock = self.clocks[Domain.LOAD_STORE]
            issued = 0
            for inst in ready:
                if issued >= issue_width:
                    break
                op = inst.op
                latency_ps = execution_latency[op] * period
                if not units.try_reserve(op, now, latency_ps):
                    continue
                queue.remove(inst)
                inst.issue_time = now
                issued += 1
                if inst.is_memory_op:
                    agen = now + period
                    inst.agen_time = agen
                    inst.lsq_arrival_time = transfer(agen, clock, ls_clock, fifo=True)
                else:
                    completion = now + latency_ps
                    inst.completion_time = completion
                    inst.exec_domain = _INTEGER_DOMAIN
                    if inst.mispredicted:
                        self._schedule_branch_redirect(inst, completion, clock)
        queue.sample_occupancy()

    def _floating_point_cycle(self, now: Picoseconds) -> None:
        clock = self.clocks[Domain.FLOATING_POINT]
        period = clock.period_ps
        queue = self.fp_queue
        queue.admit_arrivals(now)
        units = self.fp_units
        units.begin_cycle(now)
        ready = self._ready_entries(queue, now, _FLOATING_POINT_DOMAIN, clock)
        if ready:
            issue_width = self.params.issue_width
            execution_latency = EXECUTION_LATENCY
            issued = 0
            for inst in ready:
                if issued >= issue_width:
                    break
                op = inst.op
                latency_ps = execution_latency[op] * period
                if not units.try_reserve(op, now, latency_ps):
                    continue
                queue.remove(inst)
                inst.issue_time = now
                issued += 1
                inst.completion_time = now + latency_ps
                inst.exec_domain = _FLOATING_POINT_DOMAIN
        queue.sample_occupancy()

    def _load_store_cycle(self, now: Picoseconds) -> None:
        lsq = self.lsq
        entries = lsq.pending_entries()
        if not entries:
            return
        clock = self.clocks[Domain.LOAD_STORE]
        period = clock.period_ps
        cache_ports = self.params.cache_ports
        access_data = self.hierarchy.access_data
        lsq_stats = lsq.stats
        performed = 0
        # Iterate a snapshot: performing an access never mutates the LSQ
        # entry list (entries leave only at commit), so the copy exists only
        # to stay robust against future mutation, mirroring occupants().
        for inst in tuple(entries):
            if performed >= cache_ports:
                break
            if inst.memory_issued:
                continue
            arrival = inst.lsq_arrival_time
            if arrival is None or arrival > now:
                continue
            address = inst.instruction.address or 0
            if inst.is_load:
                older_store = lsq.pending_older_store(inst)
                if older_store is not None:
                    forwardable = lsq.forwardable_store(inst, now)
                    if forwardable is None:
                        continue
                    inst.completion_time = now + period
                    inst.exec_domain = _LOAD_STORE_DOMAIN
                    inst.memory_issued = True
                    lsq_stats.loads_forwarded += 1
                    performed += 1
                    continue
                result = access_data(
                    address, is_store=False, now_ps=now, period_ps=period
                )
                inst.completion_time = result.completion_ps
                inst.exec_domain = _LOAD_STORE_DOMAIN
                inst.memory_issued = True
                lsq_stats.loads_performed += 1
                performed += 1
            else:
                result = access_data(
                    address, is_store=True, now_ps=now, period_ps=period
                )
                inst.completion_time = result.completion_ps
                inst.exec_domain = _LOAD_STORE_DOMAIN
                inst.memory_issued = True
                lsq_stats.stores_performed += 1
                performed += 1

    #: Pipeline depth already represented by the explicit fetch/decode/dispatch
    #: and issue modelling.  The configured misprediction penalties (Table 5)
    #: are *total* refill depths, so the explicitly added redirect delay is the
    #: configured penalty minus what the re-fetched instructions will pay
    #: anyway on their way back to the execution units.
    _MODELLED_REFILL_FRONT_END_CYCLES = 4
    _MODELLED_REFILL_INTEGER_CYCLES = 3

    def _schedule_branch_redirect(
        self, branch: DynInst, completion: Picoseconds, int_clock: DomainClock
    ) -> None:
        frontend = self.frontend
        assert frontend is not None
        fe_clock = self.clocks[Domain.FRONT_END]
        extra_int = max(
            0, self.spec.mispredict_integer_cycles - self._MODELLED_REFILL_INTEGER_CYCLES
        )
        extra_fe = max(
            0,
            self.spec.mispredict_front_end_cycles - self._MODELLED_REFILL_FRONT_END_CYCLES,
        )
        resolved = completion + extra_int * int_clock.period_ps
        redirect = self.sync.transfer(resolved, int_clock, fe_clock)
        redirect += extra_fe * fe_clock.period_ps
        frontend.resume_after_branch(branch, redirect)

    def _service_icache_miss(self, address: int, now: Picoseconds) -> Picoseconds:
        """Service an I-cache miss from the unified L2 across the boundary."""
        fe_clock = self.clocks[Domain.FRONT_END]
        ls_clock = self.clocks[Domain.LOAD_STORE]
        request = self.sync.transfer(now, fe_clock, ls_clock)
        ready = self.hierarchy.access_l2_for_instruction(
            address, now_ps=request, period_ps=ls_clock.period_ps
        )
        return self.sync.transfer(ready, ls_clock, fe_clock)

    # ------------------------------------------------------------ adaptation

    def _feed_queue_controllers(self, instruction: Instruction, now: Picoseconds) -> None:
        dest = instruction.dest
        dest_index = register_index(dest) if dest is not None else None
        source_indices = tuple(register_index(source) for source in instruction.sources)
        is_fp_op = uses_fp_queue(instruction.op)
        for controller, domain, queue in (
            (self._int_queue_controller, Domain.INTEGER, self.int_queue),
            (self._fp_queue_controller, Domain.FLOATING_POINT, self.fp_queue),
        ):
            if controller is None:
                continue
            tracked = is_fp_op if domain is Domain.FLOATING_POINT else not is_fp_op
            if controller.observe(dest_index, source_indices, tracked=tracked):
                decision = controller.evaluate()
                if decision.changed and domain not in self._changes_in_progress:
                    self._apply_queue_change(controller, domain, queue, decision.best_size, now)

    def _on_commit(self, now: Picoseconds) -> None:
        for controller, structure in (
            (self._dcache_controller, "dcache"),
            (self._icache_controller, "icache"),
        ):
            if controller is None:
                continue
            if not controller.note_committed():
                continue
            interval_duration = now - self._interval_start_time.get(structure, 0)
            self._interval_start_time[structure] = now
            self._last_interval_duration = max(interval_duration, 1)
            decision = controller.evaluate_interval()
            domain = Domain.LOAD_STORE if structure == "dcache" else Domain.FRONT_END
            if decision.changed and domain not in self._changes_in_progress:
                self._apply_cache_change(structure, domain, decision.best_index, now)
            else:
                self._record_configuration(structure, domain, decision.best_index, now)

    def _configuration_name(self, structure: str, index: int) -> str:
        if structure == "dcache":
            return ADAPTIVE_DCACHE_CONFIGS[index].name
        if structure == "icache":
            return ADAPTIVE_ICACHE_CONFIGS[index].name
        return str(index)

    def _record_configuration(
        self, structure: str, domain: Domain, index: int, now: Picoseconds
    ) -> None:
        self._configuration_changes.append(
            ConfigurationChange(
                committed_instructions=self.rob.total_committed,
                time_ps=now,
                domain=domain.value,
                structure=structure,
                configuration=self._configuration_name(structure, index),
                index=index,
            )
        )

    def _apply_cache_change(
        self, structure: str, domain: Domain, new_index: int, now: Picoseconds
    ) -> None:
        clock = self.clocks[domain]
        if structure == "dcache":
            config = ADAPTIVE_DCACHE_CONFIGS[new_index]
            new_frequency = config.frequency_ghz
            apply_structure = lambda: self.hierarchy.apply_config(config)  # noqa: E731
        else:
            config = ADAPTIVE_ICACHE_CONFIGS[new_index]
            new_frequency = config.frequency_ghz
            frontend = self.frontend
            assert frontend is not None
            apply_structure = lambda: frontend.apply_icache_config(  # noqa: E731
                config, use_b_partition=self.spec.use_b_partitions
            )
        lock_time = self.pll.sample_lock_ps(self._last_interval_duration)
        upsizing = new_frequency < clock.frequency_ghz
        self._changes_in_progress.add(domain)

        def finish() -> None:
            if upsizing:
                apply_structure()
            clock.set_frequency(new_frequency)
            self._changes_in_progress.discard(domain)

        if not upsizing:
            # Downsizing: the smaller structure is safe at the old (slower)
            # frequency, so it switches immediately; the faster clock waits
            # for the PLL to re-lock.
            apply_structure()
        self._pending_events.append((now + lock_time, finish))
        self._record_configuration(structure, domain, new_index, now)

    def _apply_queue_change(
        self,
        controller: PhaseAdaptiveQueueController,
        domain: Domain,
        queue: IssueQueue,
        new_size: int,
        now: Picoseconds,
    ) -> None:
        clock = self.clocks[domain]
        new_frequency = ISSUE_QUEUE_FREQUENCY_GHZ[new_size]
        upsizing = new_size > queue.capacity
        lock_time = self.pll.sample_lock_ps(self._last_interval_duration or None)
        self._changes_in_progress.add(domain)

        def finish() -> None:
            if upsizing:
                queue.set_capacity(new_size)
            clock.set_frequency(new_frequency)
            self._changes_in_progress.discard(domain)

        if not upsizing:
            queue.set_capacity(new_size)
        self._pending_events.append((now + lock_time, finish))
        structure = "int-queue" if domain is Domain.INTEGER else "fp-queue"
        self._configuration_changes.append(
            ConfigurationChange(
                committed_instructions=self.rob.total_committed,
                time_ps=now,
                domain=domain.value,
                structure=structure,
                configuration=str(new_size),
                index=new_size,
            )
        )

    # ------------------------------------------------------------- results

    @staticmethod
    def _geometry_dict(geometry: CacheGeometry) -> dict[str, int]:
        return {
            "size_kb": geometry.size_kb,
            "associativity": geometry.associativity,
            "sub_banks": geometry.sub_banks,
            "block_bytes": geometry.block_bytes,
        }

    @staticmethod
    def _profile_dict(profile: dict[str, int] | dict[int, int]) -> dict[str, int]:
        # String keys so the histogram survives JSON round-trips losslessly.
        return {str(ways): count for ways, count in sorted(profile.items())}

    @staticmethod
    def _predictor_size_kb(predictor: BranchPredictorGeometry) -> float:
        """Storage footprint of the hybrid predictor (KB of counter/history bits)."""
        bits = (
            2 * (predictor.gshare_entries + predictor.meta_entries)
            + 2 * predictor.local_pht_entries
            + predictor.local_history_bits * predictor.local_bht_entries
        )
        return bits / 8 / 1024

    def _build_result(self, workload_name: str) -> RunResult:
        frontend = self.frontend
        assert frontend is not None
        hierarchy_stats = self.hierarchy.stats
        spec = self.spec
        if spec.is_adaptive:
            # The resizable machines carry (and leak) the full physical
            # arrays; the energy model prices partial-activation probes of
            # them via the recorded probe-width histograms.
            l1i_geometry = frontend.icache.geometry
            l1d_geometry = self.hierarchy.l1d.geometry
            l2_geometry = self.hierarchy.l2.geometry
            queue_entries = max(ISSUE_QUEUE_SIZES)
            int_queue_entries = fp_queue_entries = queue_entries
        else:
            l1i_geometry = spec.icache.icache
            l1d_geometry = spec.dcache.l1
            l2_geometry = spec.dcache.l2
            int_queue_entries = spec.int_queue_size
            fp_queue_entries = spec.fp_queue_size
        params = self.params
        result = RunResult(
            workload=workload_name,
            machine=self.spec.describe(),
            style=self.spec.style.value,
            committed_instructions=self.rob.total_committed,
            execution_time_ps=self._last_commit_time,
            domain_cycles={
                domain.value: clock.cycle_count for domain, clock in self.clocks.items()
            },
            final_frequencies_ghz={
                domain.value: clock.frequency_ghz for domain, clock in self.clocks.items()
            },
            branch_predictions=frontend.stats.branches,
            branch_mispredictions=frontend.stats.mispredictions,
            icache_accesses=frontend.stats.icache_accesses,
            icache_b_hits=frontend.stats.icache_b_hits,
            icache_misses=frontend.stats.icache_misses,
            loads=hierarchy_stats.loads,
            stores=hierarchy_stats.stores,
            l1d_hits_a=hierarchy_stats.l1_hits_a,
            l1d_hits_b=hierarchy_stats.l1_hits_b,
            l1d_misses=hierarchy_stats.l1_misses,
            l2_hits_a=hierarchy_stats.l2_hits_a,
            l2_hits_b=hierarchy_stats.l2_hits_b,
            l2_misses=hierarchy_stats.l2_misses,
            memory_accesses=self.memory.stats.accesses,
            loads_forwarded=self.lsq.stats.loads_forwarded,
            sync_transfers=self.sync.stats.transfers,
            sync_penalties=self.sync.stats.penalties,
            fetch_stall_cycles=frontend.stats.fetch_stall_cycles,
            branch_stall_cycles=frontend.stats.branch_stall_cycles,
            int_queue_average_occupancy=self.int_queue.average_occupancy,
            fp_queue_average_occupancy=self.fp_queue.average_occupancy,
            configuration_changes=list(self._configuration_changes),
            phase_adaptive=self.phase_adaptive,
            fetched=frontend.stats.fetched,
            rob_dispatches=self.rob.total_dispatched,
            int_queue_dispatches=self.int_queue.total_dispatched,
            fp_queue_dispatches=self.fp_queue.total_dispatched,
            int_queue_issues=self.int_queue.total_issued,
            fp_queue_issues=self.fp_queue.total_issued,
            int_queue_occupancy_cycles=self.int_queue.occupancy_accumulator,
            fp_queue_occupancy_cycles=self.fp_queue.occupancy_accumulator,
            int_queue_operand_reads=self.int_queue.operand_reads,
            fp_queue_operand_reads=self.fp_queue.operand_reads,
            int_regfile_writes=self.int_regs.allocations,
            fp_regfile_writes=self.fp_regs.allocations,
            int_alu_ops=self.int_units.alu_ops,
            int_complex_ops=self.int_units.complex_ops_executed,
            fp_alu_ops=self.fp_units.alu_ops,
            fp_complex_ops=self.fp_units.complex_ops_executed,
            lsq_allocations=self.lsq.stats.allocations,
            cache_geometries={
                "l1i": self._geometry_dict(l1i_geometry),
                "l1d": self._geometry_dict(l1d_geometry),
                "l2": self._geometry_dict(l2_geometry),
            },
            cache_access_profile={
                "l1i": self._profile_dict(frontend.icache.access_profile),
                "l1d": self._profile_dict(self.hierarchy.l1d.access_profile),
                "l2": self._profile_dict(self.hierarchy.l2.access_profile),
            },
            structure_entries={
                "rob": params.reorder_buffer_entries,
                "lsq": params.load_store_queue_entries,
                "int_regfile": params.physical_int_registers,
                "fp_regfile": params.physical_fp_registers,
                "int_queue": int_queue_entries,
                "fp_queue": fp_queue_entries,
            },
            predictor_size_kb=self._predictor_size_kb(spec.icache.predictor),
        )
        return result
