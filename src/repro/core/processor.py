"""The adaptive MCD processor simulator.

:class:`MCDProcessor` ties the substrates together into the four-domain GALS
machine of the paper.  The same class also simulates the fully synchronous
baseline: a synchronous :class:`~repro.core.configuration.MachineSpec` gives
every domain the same clock, disables inter-domain synchronisation costs and
uses the shallower misprediction penalty, so the two machines share every
line of pipeline modelling and differ only where the paper says they differ.

The simulation is event driven over clock edges: the main loop repeatedly
advances whichever domain has the earliest pending clock edge and performs
that domain's work for one cycle.  Times are integer picoseconds throughout.
"""

from __future__ import annotations

from operator import attrgetter
from typing import Callable, Iterable, Iterator, Sequence

from repro.caches.hierarchy import CacheHierarchy
from repro.caches.memory import MainMemory
from repro.clocks.clock import DomainClock
from repro.clocks.time import Picoseconds
from repro.core.configuration import MachineSpec
from repro.core.controllers.cache_controller import (
    CacheLevel,
    PhaseAdaptiveCacheController,
)
from repro.core.controllers.params import AdaptiveControlParams
from repro.core.controllers.queue_controller import PhaseAdaptiveQueueController
from repro.core.domains import Domain
from repro.core.pll import PLLModel
from repro.core.synchronization import DEFAULT_WINDOW_FRACTION, SynchronizationModel
from repro.isa.instruction import Instruction
from repro.isa.opcodes import (
    EXECUTION_LATENCY,
    FLAG_BRANCH,
    FLAG_MEMORY,
    FLAG_STORE,
    FLAG_TAKEN,
    OpClass,
)
from repro.isa.registers import FP_BASE_INDEX
from repro.obs.events import (
    CONTROLLER_INTERVAL,
    FAST_FORWARD,
    FREQUENCY_CHANGE,
    HORIZON_SKIP,
    RECONFIGURATION,
    SYNC_PENALTY,
)
from repro.obs.recorder import TraceRecorder
from repro.pipeline.dyninst import DynInst
from repro.pipeline.frontend import FrontEnd
from repro.pipeline.issue_queue import IssueQueue
from repro.pipeline.lsq import LoadStoreQueue
from repro.pipeline.resources import FunctionalUnitPool, PhysicalRegisterFile
from repro.pipeline.rob import ReorderBuffer
from repro.analysis.metrics import ConfigurationChange, RunResult
from repro.timing.cacti import CacheGeometry
from repro.timing.tables import (
    ADAPTIVE_DCACHE_CONFIGS,
    ADAPTIVE_ICACHE_CONFIGS,
    ISSUE_QUEUE_FREQUENCY_GHZ,
    ISSUE_QUEUE_SIZES,
    BranchPredictorGeometry,
)

_INT_COMPLEX_OPS = frozenset({OpClass.INT_MULT, OpClass.INT_DIV})
_FP_COMPLEX_OPS = frozenset({OpClass.FP_MULT, OpClass.FP_DIV, OpClass.FP_SQRT})

# Hoisted hot-loop constants: domain name strings (compared against
# ``DynInst.exec_domain`` every wake-up check) and the issue-order sort key.
_FRONT_END_DOMAIN = Domain.FRONT_END.value
_INTEGER_DOMAIN = Domain.INTEGER.value
_FLOATING_POINT_DOMAIN = Domain.FLOATING_POINT.value
_LOAD_STORE_DOMAIN = Domain.LOAD_STORE.value
_SEQ_KEY = attrgetter("seq")

#: Shared empty result for wake-up scans of an empty queue.
_NO_READY: tuple = ()

#: Main-loop iterations without a commit after which the simulator assumes a
#: modelling bug rather than spinning forever.
_DEADLOCK_LIMIT = 2_000_000

#: Upper bounds on the fast-path bookkeeping: retired DynInst records kept
#: for recycling between quiescent points (matching the front end's pool
#: capacity — keeping more would never be reused), and consecutive quiescent
#: stretches one fast-forward invocation may chain (a backstop against a
#: modelling bug looping forever inside the fast-forward).
_RETIRED_KEEP_LIMIT = 512
_MAX_FF_STRETCHES = 1024


class MCDProcessor:
    """Simulator for one machine specification.

    Parameters
    ----------
    spec:
        The machine to simulate (adaptive MCD or fully synchronous).
    control:
        Parameters of the phase-adaptive controllers; only used when
        ``phase_adaptive`` is True.
    phase_adaptive:
        Enable the run-time control algorithms (Accounting-Cache controller
        and ILP-tracking queue controllers).  Requires an adaptive spec.
    seed:
        Seed for the PLL lock-time sampler and clock jitter.
    jitter_fraction:
        Optional peak-to-peak clock jitter as a fraction of each period.
    sync_window_fraction:
        Fraction of the faster clock's period forming the unsafe capture
        window at domain crossings (0.3 in the paper; the knob behind the
        paper's synchronisation-window sensitivity analysis).
    fast_forward:
        Enable the quiescent-phase fast-forward: when the pipeline is
        completely drained and fetch is stalled (branch redirect or I-cache
        miss in flight), idle clock edges are batch-consumed instead of being
        walked one main-loop iteration at a time — and when fetch comes up
        empty again at the resume edge (an I-cache miss streak), the next
        quiescent stretch is skipped in the same invocation.  Bit-identical
        by construction — the skipped edges provably perform no work beyond
        stall/occupancy accounting, which is applied in bulk — and therefore
        on by default; the flag exists so tests can compare both paths.
        Valid under clock jitter too: the jitter offset stream is
        index-addressable, so bulk-skipped edges land exactly where
        one-at-a-time advances would have.
    horizon_scheduling:
        Enable event-horizon edge scheduling: an execution-domain clock edge
        that provably has no work (empty issue queue, or a load/store queue
        with nothing left to issue) is bulk-skipped together with every
        following idle edge of that domain up to the next front-end edge —
        the earliest instant new work can reach the domain, since issue-queue
        arrivals and LSQ allocations originate only from front-end dispatch.
        The per-cycle zero-occupancy samples the skipped edges would have
        taken are applied in bulk, so this is bit-identical too (and, like
        the fast-forward, jitter-correct); disabled automatically while a
        reconfiguration event is pending so events keep firing at exactly
        the edge they would have fired at.  On by default; the flag exists
        so tests can compare both paths.
    recorder:
        Optional :class:`~repro.obs.recorder.TraceRecorder` receiving the
        telemetry event stream (controller intervals, reconfigurations,
        frequency changes, sync penalties, fast-forward/horizon activity).
        Strictly observation-only: results are bit-identical with and
        without a recorder, and the ``None`` default (the null object) adds
        no work to the hot paths — every emission guard is a precomputed
        boolean that is False.
    """

    def __init__(
        self,
        spec: MachineSpec,
        *,
        control: AdaptiveControlParams | None = None,
        phase_adaptive: bool = False,
        seed: int = 0,
        jitter_fraction: float = 0.0,
        sync_window_fraction: float = DEFAULT_WINDOW_FRACTION,
        fast_forward: bool = True,
        horizon_scheduling: bool = True,
        recorder: TraceRecorder | None = None,
    ) -> None:
        if phase_adaptive and not spec.is_adaptive:
            raise ValueError("phase-adaptive control requires an adaptive MCD spec")
        self.spec = spec
        self.params = spec.parameters
        self.control = control if control is not None else AdaptiveControlParams()
        self.phase_adaptive = phase_adaptive

        self.clocks: dict[Domain, DomainClock] = {
            domain: DomainClock(
                domain.value,
                spec.frequency(domain),
                jitter_fraction=jitter_fraction,
                seed=seed,
            )
            for domain in Domain
        }
        self._clock_by_name = {
            domain.value: clock for domain, clock in self.clocks.items()
        }
        # Direct references for the hot per-cycle paths: the clock objects
        # are created once and never replaced (frequency changes mutate them
        # in place), so these stay valid for the processor's lifetime.
        self._fe_clock = self.clocks[Domain.FRONT_END]
        self._int_clock = self.clocks[Domain.INTEGER]
        self._fp_clock = self.clocks[Domain.FLOATING_POINT]
        self._ls_clock = self.clocks[Domain.LOAD_STORE]
        # Wake-up synchronisation windows by (consumer, producer) domain,
        # rebuilt whenever any domain's period changes (see _wake_windows).
        self._wake_window_periods: tuple[Picoseconds, ...] | None = None
        self._wake_window_table: dict[str, dict[str, int]] = {}
        # Epoch stamp for memoised per-instruction wake-up times: advanced on
        # every wake-window rebuild, so a frequency change invalidates every
        # cached ``DynInst.wake_time`` at once.
        self._wake_epoch = 0
        # Per-queue idle horizons fed by _ready_entries: the earliest time at
        # which a non-empty queue can possibly issue (0 = unknown / disabled).
        self._scan_idle_until: Picoseconds = 0
        self._int_idle_until: Picoseconds = 0
        self._fp_idle_until: Picoseconds = 0
        # Scratch list reused by every wake-up scan (one per execution-domain
        # edge; the scans never overlap, and each caller consumes the result
        # before the next scan runs), sparing the allocator and the GC.
        self._ready_scratch: list[DynInst] = []
        self.sync = SynchronizationModel(
            enabled=spec.inter_domain_sync, window_fraction=sync_window_fraction
        )
        self.pll = PLLModel(
            mean_us=self.control.pll_mean_us,
            min_us=self.control.pll_min_us,
            max_us=self.control.pll_max_us,
            interval_scaled=self.control.pll_interval_scaled,
            seed=seed,
        )

        params = self.params
        # Pipeline widths, hoisted out of the per-cycle paths (machine
        # parameters are fixed for the processor's lifetime; only cache ways,
        # queue capacities and frequencies adapt at run time).
        self._issue_width = params.issue_width
        self._decode_width = params.decode_width
        self._retire_width = params.retire_width
        self._cache_ports = params.cache_ports
        self.memory = MainMemory(
            first_chunk_ns=params.memory_first_chunk_ns,
            subsequent_chunk_ns=params.memory_subsequent_chunk_ns,
        )
        self.hierarchy = CacheHierarchy(
            spec.dcache, b_enabled=spec.use_b_partitions, memory=self.memory
        )
        self.rob = ReorderBuffer(params.reorder_buffer_entries)
        self.lsq = LoadStoreQueue(params.load_store_queue_entries)
        self.int_regs = PhysicalRegisterFile(params.physical_int_registers)
        self.fp_regs = PhysicalRegisterFile(params.physical_fp_registers)
        self.int_queue = IssueQueue(spec.int_queue_size, name="int-queue")
        self.fp_queue = IssueQueue(spec.fp_queue_size, name="fp-queue")
        self.int_units = FunctionalUnitPool(
            alus=params.int_alus,
            complex_units=params.int_complex_units,
            complex_ops=_INT_COMPLEX_OPS,
        )
        self.fp_units = FunctionalUnitPool(
            alus=params.fp_alus,
            complex_units=params.fp_complex_units,
            complex_ops=_FP_COMPLEX_OPS,
        )

        self.frontend: FrontEnd | None = None
        # Rename map keyed by dense register index (0..63).
        self._last_writer: dict[int, DynInst] = {}
        # Committed DynInst records awaiting recycling into the front end's
        # pool; handed over at quiescent points, when nothing in flight can
        # still read them (bounded — see _RETIRED_KEEP_LIMIT).
        self._retired: list[DynInst] = []
        self._pending_events: list[tuple[Picoseconds, Callable[[], None]]] = []
        self._changes_in_progress: set[Domain] = set()
        self._last_commit_time: Picoseconds = 0
        self._configuration_changes: list[ConfigurationChange] = []

        # Phase-adaptive controllers (created lazily once the front end and
        # therefore the I-cache exist).
        self._dcache_controller: PhaseAdaptiveCacheController | None = None
        self._icache_controller: PhaseAdaptiveCacheController | None = None
        self._int_queue_controller: PhaseAdaptiveQueueController | None = None
        self._fp_queue_controller: PhaseAdaptiveQueueController | None = None
        self._interval_start_time: dict[str, Picoseconds] = {}
        self._last_interval_duration: Picoseconds = 0

        # Quiescent-phase fast-forward and event-horizon edge scheduling
        # (see the constructor docstring).  The counters are observational
        # only — excluded from result digests — and reset together with the
        # warm-up reset so they describe the measured window.
        self._fast_forward_enabled = fast_forward
        self._horizon_enabled = horizon_scheduling
        #: Number of times the fast-forward batch-consumed at least one edge.
        self.fast_forward_invocations = 0
        #: Total clock edges consumed in bulk across all domains.
        self.fast_forward_cycles = 0
        #: Quiescent stretches consumed by the fast-forward (several per
        #: invocation when an I-cache miss streak chains stalls).
        self.steady_stretches_skipped = 0
        #: Idle execution-domain edges bulk-skipped by horizon scheduling.
        self.horizon_skipped_edges = 0

        # Telemetry (observation-only).  The per-event-type booleans are
        # precomputed so every hot-path emission guard is one local truth
        # test; with no recorder they are all False and the disabled path
        # performs no event work at all.
        self.recorder = recorder
        if recorder is not None:
            self._trace_interval = recorder.wants(CONTROLLER_INTERVAL)
            self._trace_reconfig = recorder.wants(RECONFIGURATION)
            self._trace_freq = recorder.wants(FREQUENCY_CHANGE)
            self._trace_sync = recorder.wants(SYNC_PENALTY)
            self._trace_ff = recorder.wants(FAST_FORWARD)
            self._trace_horizon = recorder.wants(HORIZON_SKIP)
            if self._trace_sync:
                # Penalties recorded inside SynchronizationModel.transfer
                # reach the recorder through this callback; the two inlined
                # penalty sites in _commit (which bypass transfer) emit
                # directly under the same boolean.
                self.sync.on_penalty = self._emit_sync_penalty
        else:
            self._trace_interval = False
            self._trace_reconfig = False
            self._trace_freq = False
            self._trace_sync = False
            self._trace_ff = False
            self._trace_horizon = False

    # ------------------------------------------------------------------ run

    def run(
        self,
        trace: Iterable[Instruction] | Iterator[Instruction],
        *,
        max_instructions: int,
        warmup_instructions: int = 0,
        workload_name: str = "",
    ) -> RunResult:
        """Simulate *trace* until ``max_instructions`` commit.

        ``warmup_instructions`` instructions are first streamed through the
        caches and branch predictor with no timing effects, so that the
        measured window starts from a warm memory hierarchy (the stand-in for
        the paper's 100 M-instruction fast-forward windows).

        *trace* may be anything the front end accepts: a plain iterable of
        instructions, or a pre-compiled trace (``CompiledTrace`` /
        ``ReplayableTrace``), in which case the flat columns are shared
        across every run in the process.
        """
        if max_instructions <= 0:
            raise ValueError("max_instructions must be positive")
        physical_icache = (
            ADAPTIVE_ICACHE_CONFIGS[-1].icache if self.spec.is_adaptive else None
        )
        self.frontend = FrontEnd(
            trace,
            icache_config=self.spec.icache,
            physical_geometry=physical_icache,
            fetch_width=self.params.fetch_width,
            fetch_queue_capacity=self.params.fetch_queue_entries,
            decode_cycles=self.params.decode_cycles,
            use_b_partition=self.spec.use_b_partitions,
            icache_miss_handler=self._service_icache_miss,
        )
        if warmup_instructions > 0:
            self._warm_up(warmup_instructions)
        if self.phase_adaptive:
            self._build_controllers()

        self._main_loop(max_instructions)
        return self._build_result(workload_name)

    # ------------------------------------------------------------ internals

    def _warm_up(self, count: int) -> None:
        # Stream the warm-up window straight out of the compiled columns:
        # same accesses as warming per-instruction objects (I-cache once per
        # block, predictor/BTB per branch, data hierarchy per memory op), but
        # with no Instruction materialisation at all.
        frontend = self.frontend
        assert frontend is not None
        trace = frontend.trace
        start = frontend.cursor
        end = min(trace.ensure(start + count), start + count)
        ls_period = self.clocks[Domain.LOAD_STORE].period_ps
        icache = frontend.icache
        icache_access = icache.access
        block_bytes = icache.geometry.block_bytes
        predict = frontend.predictor.predict_and_update
        btb_update = frontend.btb.update
        access_data = self.hierarchy.access_data
        pc_col = trace.pc
        flags_col = trace.flags
        addr_col = trace.address
        target_col = trace.target
        last_block = None
        for index in range(start, end):
            pc = pc_col[index]
            block = pc // block_bytes
            if block != last_block:
                icache_access(pc)
                last_block = block
            bits = flags_col[index]
            if bits & FLAG_BRANCH:
                taken = bool(bits & FLAG_TAKEN)
                predict(pc, taken)
                if taken:
                    btb_update(pc, target_col[index])
            if bits & FLAG_MEMORY:
                access_data(
                    addr_col[index],
                    is_store=bool(bits & FLAG_STORE),
                    now_ps=0,
                    period_ps=ls_period,
                )
        frontend.advance_cursor(end - start)
        frontend.reset_warm_state()
        self.hierarchy.reset_statistics()
        self.memory.reset()
        self._reset_fast_path_counters()

    def _reset_fast_path_counters(self) -> None:
        """Zero the fast-path observability counters (with the warm-up reset)."""
        self.fast_forward_invocations = 0
        self.fast_forward_cycles = 0
        self.steady_stretches_skipped = 0
        self.horizon_skipped_edges = 0

    def _emit_sync_penalty(
        self, time_ps: Picoseconds, producer: str, consumer: str
    ) -> None:
        """Trace hook: one recorded synchronisation penalty (see __init__)."""
        assert self.recorder is not None
        self.recorder.emit(
            SYNC_PENALTY,
            time_ps,
            self.rob.total_committed,
            producer=producer,
            consumer=consumer,
        )

    def _build_controllers(self) -> None:
        frontend = self.frontend
        assert frontend is not None
        control = self.control
        if control.adapt_caches:
            dcache_levels = (
                CacheLevel(
                    cache=self.hierarchy.l1d,
                    latencies=tuple(c.l1_latency for c in ADAPTIVE_DCACHE_CONFIGS),
                    a_ways=tuple(c.ways for c in ADAPTIVE_DCACHE_CONFIGS),
                ),
                CacheLevel(
                    cache=self.hierarchy.l2,
                    latencies=tuple(c.l2_latency for c in ADAPTIVE_DCACHE_CONFIGS),
                    a_ways=tuple(c.ways for c in ADAPTIVE_DCACHE_CONFIGS),
                ),
            )
            self._dcache_controller = PhaseAdaptiveCacheController(
                name="dcache",
                levels=dcache_levels,
                frequencies_ghz=tuple(c.frequency_ghz for c in ADAPTIVE_DCACHE_CONFIGS),
                beyond_last_level_ps=control.memory_time_ps,
                interval_instructions=control.interval_instructions,
                initial_index=self._current_dcache_index(),
                hysteresis=control.cache_hysteresis,
                consecutive_decisions_required=control.cache_consecutive_decisions,
                b_hit_overlap_factor=control.cache_b_hit_overlap_factor,
            )
            icache_levels = (
                CacheLevel(
                    cache=frontend.icache,
                    latencies=tuple(c.l1_latency for c in ADAPTIVE_ICACHE_CONFIGS),
                    a_ways=tuple(c.ways for c in ADAPTIVE_ICACHE_CONFIGS),
                ),
            )
            self._icache_controller = PhaseAdaptiveCacheController(
                name="icache",
                levels=icache_levels,
                frequencies_ghz=tuple(c.frequency_ghz for c in ADAPTIVE_ICACHE_CONFIGS),
                beyond_last_level_ps=control.icache_miss_time_ps,
                interval_instructions=control.interval_instructions,
                initial_index=self._current_icache_index(),
                hysteresis=control.cache_hysteresis,
                consecutive_decisions_required=control.cache_consecutive_decisions,
                b_hit_overlap_factor=control.cache_b_hit_overlap_factor,
            )
            self._interval_start_time["dcache"] = 0
            self._interval_start_time["icache"] = 0
        if control.adapt_queues:
            self._int_queue_controller = PhaseAdaptiveQueueController(
                name="int-queue",
                initial_size=self.spec.int_queue_size,
                hysteresis=control.queue_hysteresis,
                consecutive_decisions_required=control.queue_consecutive_decisions,
            )
            self._fp_queue_controller = PhaseAdaptiveQueueController(
                name="fp-queue",
                initial_size=self.spec.fp_queue_size,
                hysteresis=control.queue_hysteresis,
                consecutive_decisions_required=control.queue_consecutive_decisions,
            )

    def _current_dcache_index(self) -> int:
        return next(
            index
            for index, config in enumerate(ADAPTIVE_DCACHE_CONFIGS)
            if config.name == self.hierarchy.config.name
        )

    def _current_icache_index(self) -> int:
        assert self.frontend is not None
        return next(
            index
            for index, config in enumerate(ADAPTIVE_ICACHE_CONFIGS)
            if config.name == self.frontend.icache_config.name
        )

    # ---------------------------------------------------------- main loop

    def _main_loop(self, max_instructions: int) -> None:
        frontend = self.frontend
        assert frontend is not None
        rob = self.rob
        # Hot bindings: the loop body runs once per clock edge across the
        # whole run, so every attribute lookup it avoids matters.  The edge
        # selection is an explicit four-way compare (ties resolve in Domain
        # declaration order, exactly as ``min(Domain, key=...)`` did).
        # The ROB and fetch-queue containers are mutated only in place, so
        # binding them once keeps the quiescence check to two truth tests.
        rob_entries = rob._entries
        fq_entries = frontend.fetch_queue._entries
        fe_clock = self._fe_clock
        int_clock = self._int_clock
        fp_clock = self._fp_clock
        ls_clock = self._ls_clock
        fe_cycle = self._front_end_cycle
        int_cycle = self._integer_cycle
        fp_cycle = self._floating_point_cycle
        ls_cycle = self._load_store_cycle
        fast_forward = self._fast_forward_enabled
        horizon_scheduling = self._horizon_enabled
        trace_horizon = self._trace_horizon
        try_fast_forward = self._try_fast_forward
        int_queue = self.int_queue
        fp_queue = self.fp_queue
        lsq = self.lsq
        retired = self._retired
        # Jitter never changes mid-run, so on jitter-free machines the
        # per-edge ``clock.advance()`` call reduces to its two attribute
        # updates, inlined below.
        jitter_free = not (
            fe_clock.jitter_fraction
            or int_clock.jitter_fraction
            or fp_clock.jitter_fraction
            or ls_clock.jitter_fraction
        )
        idle_iterations = 0
        last_committed = 0
        while rob.total_committed < max_instructions:
            if not rob_entries and not fq_entries:
                # Quiescent point: nothing is in flight anywhere, so the
                # committed records collected since the last drain can no
                # longer be read as producers — recycle them into the fetch
                # pool.
                if retired:
                    frontend.recycle(retired)
                    retired.clear()
                if frontend.trace_exhausted:
                    break
                if fast_forward:
                    try_fast_forward(fe_clock, int_clock, fp_clock, ls_clock)

            if horizon_scheduling and not self._pending_events:
                # Event-horizon edge scheduling: every execution-domain edge
                # strictly before the next front-end edge is provably a no-op
                # while the domain holds no work — issue-queue arrivals and
                # LSQ allocations originate only from front-end dispatch, and
                # a memory op awaiting address generation keeps
                # ``lsq.unissued`` non-zero — so each idle domain's pending
                # edges are bulk-skipped together.  Skipping runs at the top
                # of the iteration, before an edge is selected and processed,
                # so it never consumes edges past the run's final cycle; the
                # per-cycle zero-occupancy samples the skipped edges would
                # have taken are applied in bulk, and pending events disable
                # skipping so reconfigurations keep firing at exactly the
                # edge they would have.
                fe_next = fe_clock.next_edge
                skipped = 0
                if int_clock.next_edge < fe_next and not int_queue._incoming:
                    if not int_queue._entries:
                        count = int_clock.skip_edges_before(fe_next)
                        int_queue.occupancy_samples += count
                        skipped = count
                    else:
                        # Occupied-queue horizon: the last wake-up scan proved
                        # every entry sleeps until _int_idle_until (producer
                        # completions are final and new entries arrive only
                        # via _incoming, which is empty), so edges strictly
                        # before min(idle, fe_next) sample occupancy and do
                        # nothing else.
                        bound = self._int_idle_until
                        if bound > int_clock.next_edge:
                            if bound > fe_next:
                                bound = fe_next
                            count = int_clock.skip_edges_before(bound)
                            if count:
                                int_queue.occupancy_samples += count
                                int_queue.occupancy_accumulator += count * len(
                                    int_queue._entries
                                )
                                skipped = count
                if fp_clock.next_edge < fe_next and not fp_queue._incoming:
                    if not fp_queue._entries:
                        count = fp_clock.skip_edges_before(fe_next)
                        fp_queue.occupancy_samples += count
                        skipped += count
                    else:
                        bound = self._fp_idle_until
                        if bound > fp_clock.next_edge:
                            if bound > fe_next:
                                bound = fe_next
                            count = fp_clock.skip_edges_before(bound)
                            if count:
                                fp_queue.occupancy_samples += count
                                fp_queue.occupancy_accumulator += count * len(
                                    fp_queue._entries
                                )
                                skipped += count
                if ls_clock.next_edge < fe_next and lsq.unissued == 0:
                    skipped += ls_clock.skip_edges_before(fe_next)
                if skipped:
                    self.horizon_skipped_edges += skipped
                    if trace_horizon:
                        assert self.recorder is not None
                        self.recorder.emit(
                            HORIZON_SKIP,
                            fe_next,
                            rob.total_committed,
                            edges=skipped,
                        )

            edge = fe_clock.next_edge
            clock = fe_clock
            cycle = fe_cycle
            candidate = int_clock.next_edge
            if candidate < edge:
                edge = candidate
                clock = int_clock
                cycle = int_cycle
            candidate = fp_clock.next_edge
            if candidate < edge:
                edge = candidate
                clock = fp_clock
                cycle = fp_cycle
            candidate = ls_clock.next_edge
            if candidate < edge:
                edge = candidate
                clock = ls_clock
                cycle = ls_cycle

            if self._pending_events:
                self._process_pending_events(edge)
            cycle(edge)
            if jitter_free:
                clock.cycle_count += 1
                clock.next_edge = edge + clock.period_ps
            else:
                clock.advance()

            committed = rob.total_committed
            if committed == last_committed:
                idle_iterations += 1
                if idle_iterations > _DEADLOCK_LIMIT:
                    raise RuntimeError(
                        "simulation made no forward progress for "
                        f"{_DEADLOCK_LIMIT} cycles (committed="
                        f"{committed}); this indicates a "
                        "pipeline modelling bug"
                    )
            else:
                idle_iterations = 0
                last_committed = committed

    def _try_fast_forward(
        self,
        fe_clock: DomainClock,
        int_clock: DomainClock,
        fp_clock: DomainClock,
        ls_clock: DomainClock,
    ) -> None:
        """Batch-consume provably idle clock edges while the machine drains.

        Preconditions (checked by the caller): the reorder buffer and fetch
        queue are empty, so no instruction is in flight anywhere — the issue
        queues, LSQ and functional units are all drained.  Until the front
        end fetches again, every domain's cycle is a no-op whose only side
        effects are the front end's stall counter and the issue queues'
        zero-occupancy samples, so those edges can be consumed in bulk with
        the same counter updates.

        Fetch resumes at the first front-end edge at or after the front
        end's stall horizon (branch redirect or I-cache refill time), so
        edges strictly before that — across all four domains — are skippable.
        Pending reconfiguration events cap the horizon (they must fire at
        exactly the edge they would have fired at), and any in-progress
        reconfiguration bypasses the fast-forward entirely: while the
        controllers are mid-change the conservative path keeps the event and
        frequency sequencing trivially identical.

        When no reconfiguration event is pending, one invocation chains
        across *multiple* quiescent stretches: after skipping to the stall
        horizon it runs the front end's fetch at the resume edge itself (the
        commit and dispatch halves of that front-end cycle are provably
        no-ops while the ROB and fetch queue are empty).  If fetch comes up
        empty and stalls again — an I-cache miss streak walking through the
        L2 — the next stretch is skipped immediately, without surfacing to
        the main loop between stretches.
        """
        frontend = self.frontend
        assert frontend is not None
        if self._changes_in_progress or frontend.waiting_for_branch is not None:
            return
        int_queue = self.int_queue
        fp_queue = self.fp_queue
        total_skipped = 0
        stretches = 0
        while True:
            horizon = fe_clock.edge_at_or_after(frontend.stall_until)
            # Any pending event disables chaining: the event must be fired by
            # the main loop at the first processed edge at or after its time,
            # which the chained fetch below would bypass.
            chain = not self._pending_events
            if not chain:
                earliest = min(event[0] for event in self._pending_events)
                if earliest < horizon:
                    horizon = earliest

            skipped = 0
            # skip_edges_before consumes the edges strictly before the
            # horizon — on a jittered clock by walking the index-addressable
            # offset stream once, landing exactly where per-edge advances
            # would have.
            count = fe_clock.skip_edges_before(horizon)
            if count:
                frontend.stats.fetch_stall_cycles += count
                skipped += count
            for clock, queue in ((int_clock, int_queue), (fp_clock, fp_queue)):
                count = clock.skip_edges_before(horizon)
                if count:
                    # The per-cycle occupancy sample of an empty queue, in bulk.
                    queue.occupancy_samples += count
                    skipped += count
            skipped += ls_clock.skip_edges_before(horizon)
            if skipped:
                stretches += 1
                total_skipped += skipped

            if not chain or not skipped or stretches >= _MAX_FF_STRETCHES:
                break
            if fe_clock.next_edge != horizon:
                break
            # The resume edge is now the globally earliest edge (every other
            # domain was skipped up to the horizon; the front end wins ties),
            # so run its front-end cycle here: commit and dispatch are no-ops
            # with the ROB and fetch queue empty, leaving just fetch.
            fetched = frontend.fetch_cycle(horizon, fe_clock.period_ps)
            fe_clock.advance()
            if fetched or frontend.trace_exhausted:
                break
            if frontend.stall_until <= horizon:
                # Fetch made no progress yet recorded no new stall; bail out
                # to the main loop rather than risk spinning here (the
                # deadlock guard lives there).
                break

        if total_skipped:
            self.fast_forward_invocations += 1
            self.fast_forward_cycles += total_skipped
            self.steady_stretches_skipped += stretches
            if self._trace_ff:
                assert self.recorder is not None
                self.recorder.emit(
                    FAST_FORWARD,
                    fe_clock.next_edge,
                    self.rob.total_committed,
                    edges=total_skipped,
                    stretches=stretches,
                )

    def _process_pending_events(self, now: Picoseconds) -> None:
        due = [event for event in self._pending_events if event[0] <= now]
        if not due:
            return
        self._pending_events = [
            event for event in self._pending_events if event[0] > now
        ]
        for _, action in sorted(due, key=lambda event: event[0]):
            action()
        # Domain frequencies change only inside pending-event actions (the
        # reconfiguration ``finish`` closures), so the wake-window table is
        # invalidated eagerly here and its per-call validity check reduces
        # to one ``is None`` test (see :meth:`_wake_windows`).  The per-queue
        # idle horizons were computed under the old windows, so they fall
        # with the table.
        self._wake_window_periods = None
        self._int_idle_until = 0
        self._fp_idle_until = 0

    # ------------------------------------------------------------ front end

    def _front_end_cycle(self, now: Picoseconds) -> None:
        fe_clock = self._fe_clock
        self._commit(now, fe_clock)
        self._dispatch(now, fe_clock)
        # Stalled fetch cycles (unresolved branch, I-cache refill) only bump
        # a counter; the checks are inlined here so the common stalled cycle
        # skips the fetch_cycle call entirely.  fetch_cycle performs the
        # same checks itself for its other callers (the fast-forward chain).
        frontend = self.frontend
        if frontend._waiting_branch is not None:
            frontend.stats.branch_stall_cycles += 1
        elif now < frontend._stall_until:
            frontend.stats.fetch_stall_cycles += 1
        else:
            frontend.fetch_cycle(now, fe_clock.period_ps)

    def _commit(self, now: Picoseconds, fe_clock: DomainClock) -> None:
        # Cheap early-out before any further binding: most front-end cycles
        # commit nothing (empty ROB, or a head still executing).
        rob = self.rob
        entries = rob._entries
        if not entries or entries[0].completion_time is None:
            return
        clock_by_name = self._clock_by_name
        sync = self.sync
        # Disabled synchronisation makes transfer the identity (and records
        # nothing), so the call is skipped outright on synchronous machines.
        sync_enabled = sync.enabled
        sync_stats = sync.stats
        windows_fe = self._wake_windows(_FRONT_END_DOMAIN) if sync_enabled else None
        last_writer = self._last_writer
        phase_adaptive = self.phase_adaptive
        trace_sync = self._trace_sync
        retired = self._retired
        committed = 0
        retire_width = self._retire_width
        while committed < retire_width:
            if not entries:
                break
            head = entries[0]
            completion = head.completion_time
            if completion is None:
                break
            producer_clock = (
                clock_by_name.get(head.exec_domain) if sync_enabled else None
            )
            if producer_clock is not None and producer_clock is not fe_clock:
                # Inline ``sync.transfer(completion, producer, fe_clock)``:
                # the commit check runs at ``now == fe_clock.next_edge``, so
                # for a completed head the capture edge clamps to *now* and
                # the synchroniser outcome reduces to the precomputed window
                # compare (see :meth:`_wake_windows`); only a head completing
                # in the future needs the true capture edge, and then solely
                # for the penalty statistic — it cannot commit this cycle
                # either way.  Statistics recording is identical to the call.
                window = windows_fe[head.exec_domain]
                sync_stats.transfers += 1
                if completion > now:
                    if fe_clock.edge_at_or_after(completion) - completion < window:
                        sync_stats.penalties += 1
                        if trace_sync:
                            self._emit_sync_penalty(
                                completion, head.exec_domain, _FRONT_END_DOMAIN
                            )
                    break
                if now - completion < window:
                    sync_stats.penalties += 1
                    if trace_sync:
                        self._emit_sync_penalty(
                            completion, head.exec_domain, _FRONT_END_DOMAIN
                        )
                    break
            elif completion > now:
                break
            rob.commit_head()
            head.commit_time = now
            committed += 1
            self._last_commit_time = now
            dest = head.dest
            if dest >= 0:
                if dest >= FP_BASE_INDEX:
                    self.fp_regs.release()
                else:
                    self.int_regs.release()
                if last_writer.get(dest) is head:
                    del last_writer[dest]
            if head.is_memory_op:
                self.lsq.release(head)
            if len(retired) < _RETIRED_KEEP_LIMIT:
                retired.append(head)
            if phase_adaptive:
                self._on_commit(now)

    def _dispatch(self, now: Picoseconds, fe_clock: DomainClock) -> None:
        frontend = self.frontend
        fetch_queue = frontend.fetch_queue
        # Cheap early-out (same container binding as the main loop): nothing
        # decoded and ready means nothing to dispatch this cycle.
        fq_entries = fetch_queue._entries
        if not fq_entries or fq_entries[0].dispatch_ready_time > now:
            return
        rob = self.rob
        rob_entries = rob._entries
        rob_capacity = rob._capacity
        lsq = self.lsq
        last_writer = self._last_writer
        last_writer_get = last_writer.get
        sync = self.sync
        sync_enabled = sync.enabled
        sync_stats = sync.stats
        int_clock = self._int_clock
        fp_clock = self._fp_clock
        feed_controllers = self.phase_adaptive and self.control.adapt_queues
        dispatched = 0
        decode_width = self._decode_width
        while dispatched < decode_width:
            inst = fq_entries[0] if fq_entries else None
            if inst is None or inst.dispatch_ready_time > now:
                break
            # Structural-hazard checks, inlined from the respective
            # ``has_space`` / ``can_allocate`` properties.
            if len(rob_entries) >= rob_capacity:
                break
            dest = inst.dest
            regfile = None
            if dest >= 0:
                regfile = self.fp_regs if dest >= FP_BASE_INDEX else self.int_regs
                if regfile._total <= regfile._allocated:
                    break
            is_fp_op = inst.is_fp
            queue = self.fp_queue if is_fp_op else self.int_queue
            if len(queue._entries) + len(queue._incoming) >= queue._capacity:
                break
            is_memory_op = inst.is_memory_op
            if is_memory_op and len(lsq._entries) >= lsq._capacity:
                break

            fetch_queue.pop()
            source_count = inst.source_count
            if source_count == 0:
                inst.producers = ()
            elif source_count == 1:
                inst.producers = (last_writer_get(inst.src0),)
            else:
                inst.producers = (
                    last_writer_get(inst.src0),
                    last_writer_get(inst.src1),
                )
            if regfile is not None:
                regfile.allocate()
                last_writer[dest] = inst
            rob.dispatch(inst)
            if is_memory_op:
                lsq.allocate(inst)
            inst.dispatch_time = now
            if sync_enabled:
                # Inline ``sync.transfer(now, fe_clock, queue_clock,
                # fifo=True)``: dispatch runs while the front-end edge *now*
                # is the globally earliest unconsumed edge, so the consumer's
                # capture edge ``edge_at_or_after(now)`` clamps to its
                # ``next_edge``, and a FIFO crossing never pays the extra
                # arbitration cycle — the call reduces to one attribute read
                # plus the transfer count it would have recorded.
                sync_stats.transfers += 1
                arrival = (fp_clock if is_fp_op else int_clock).next_edge
            else:
                arrival = now
            queue.dispatch(inst, arrival)
            dispatched += 1

            if feed_controllers:
                self._feed_queue_controllers(inst, now)

    # --------------------------------------------------------- exec domains

    def _operand_ready(self, inst: DynInst, now: Picoseconds, domain: Domain) -> bool:
        consumer_clock = self.clocks[domain]
        for producer in inst.producers:
            if producer is None:
                continue
            completion = producer.completion_time
            if completion is None:
                return False
            if producer.exec_domain != domain.value:
                producer_clock = self._clock_by_name.get(producer.exec_domain)
                if producer_clock is not None:
                    completion = self.sync.transfer(
                        completion, producer_clock, consumer_clock, record=False
                    )
            if completion > now:
                return False
        return True

    def _wake_windows(self, domain_name: str) -> dict[str, int]:
        """Wake-up addends per producer domain for consumer *domain_name*.

        The wake-up check always runs at ``now == consumer.next_edge`` (the
        edge being processed), where the synchronised readiness test
        ``transfer(completion, producer, consumer, record=False) <= now``
        reduces *exactly* to ``completion + window <= now`` with ``window =
        int(window_fraction * min(producer_period, consumer_period))``:

        - ``completion > now``: the consumer capture edge is a future edge,
          so the value is not ready — and ``completion + window > now`` too.
        - ``completion <= now``: ``edge_at_or_after`` clamps to the current
          edge, so the value is ready unless that edge falls inside the
          unsafe window after *completion* (``now - completion < window``),
          i.e. ready iff ``completion + window <= now``.

        This turns the per-producer synchronisation call in the wake-up scan
        into one integer add.  Windows are 0 within a domain and on the
        fully synchronous machine (transfers are free there).  Domain
        frequencies change only inside pending-event actions, and the event
        pump invalidates the table eagerly after running any (see
        :meth:`_process_pending_events`), so the per-call validity check is
        a single ``is None`` test; every rebuild advances ``_wake_epoch``,
        invalidating the memoised per-instruction wake-up times with it.
        """
        if self._wake_window_periods is None:
            clock_by_name = self._clock_by_name
            fraction = self.sync.window_fraction if self.sync.enabled else 0.0
            self._wake_window_table = {
                consumer: {
                    producer: (
                        int(fraction * min(pclock.period_ps, cclock.period_ps))
                        if pclock is not cclock
                        else 0
                    )
                    for producer, pclock in clock_by_name.items()
                }
                for consumer, cclock in clock_by_name.items()
            }
            self._wake_window_periods = (
                self._fe_clock.period_ps,
                self._int_clock.period_ps,
                self._fp_clock.period_ps,
                self._ls_clock.period_ps,
            )
            self._wake_epoch += 1
        return self._wake_window_table[domain_name]

    def _ready_entries(
        self, queue: IssueQueue, now: Picoseconds, domain_name: str
    ) -> Sequence[DynInst]:
        """Operand-ready queue entries, oldest first.

        The returned sequence is a reused scratch buffer, valid only until
        the next scan; callers consume it immediately.

        Inline equivalent of ``queue.ready_entries(now, operand_ready)``: the
        wake-up check runs for every queue entry every cycle, so the
        per-entry callback indirection of :meth:`_operand_ready` is flattened
        into one loop, and the cross-domain synchronisation call is reduced
        to its precomputed window addend (see :meth:`_wake_windows`).
        """
        entries = queue.pending_entries()
        if not entries:
            return _NO_READY
        windows = self._wake_windows(domain_name)
        # Read the epoch only after _wake_windows, which advances it when a
        # frequency change invalidates the windows (and with them every
        # memoised wake time).
        epoch = self._wake_epoch
        ready = self._ready_scratch
        ready.clear()
        # Side output for the event-horizon scheduler: when nothing is ready
        # and every entry's wake-up time is known, the earliest of them bounds
        # the next edge at which this queue can possibly issue.
        min_wake = 0
        all_known = True
        for inst in entries:
            if inst.wake_epoch == epoch:
                # Memoised: every producer's completion is final once set,
                # so the wake-up time computed on a previous scan holds for
                # as long as the windows do.
                wake = inst.wake_time
                if wake <= now:
                    ready.append(inst)
                elif min_wake == 0 or wake < min_wake:
                    min_wake = wake
                continue
            wake = 0
            for producer in inst.producers:
                if producer is None:
                    continue
                completion = producer.completion_time
                if completion is None:
                    all_known = False
                    break
                exec_domain = producer.exec_domain
                if exec_domain != domain_name:
                    completion += windows[exec_domain]
                if completion > wake:
                    wake = completion
            else:
                inst.wake_time = wake
                inst.wake_epoch = epoch
                if wake <= now:
                    ready.append(inst)
                elif min_wake == 0 or wake < min_wake:
                    min_wake = wake
        if ready or not all_known:
            self._scan_idle_until = 0
        else:
            self._scan_idle_until = min_wake
        ready.sort(key=_SEQ_KEY)
        return ready

    def _integer_cycle(self, now: Picoseconds) -> None:
        queue = self.int_queue
        if queue._incoming:
            queue.admit_arrivals(now)
        if queue._entries:
            clock = self._int_clock
            period = clock.period_ps
            units = self.int_units
            units.begin_cycle(now)
            ready = self._ready_entries(queue, now, _INTEGER_DOMAIN)
            self._int_idle_until = self._scan_idle_until
            issue_width = self._issue_width
            execution_latency = EXECUTION_LATENCY
            sync = self.sync
            sync_enabled = sync.enabled
            issued = 0
            for inst in ready:
                if issued >= issue_width:
                    break
                op = inst.op
                latency_ps = execution_latency[op] * period
                if not units.try_reserve(op, now, latency_ps):
                    continue
                queue.remove(inst)
                inst.issue_time = now
                issued += 1
                if inst.is_memory_op:
                    agen = now + period
                    inst.agen_time = agen
                    if sync_enabled:
                        # Inline ``sync.transfer(agen, clock, ls_clock,
                        # fifo=True)``: a FIFO crossing pays only the edge
                        # alignment (never the arbitration cycle), so the
                        # call is the capture-edge lookup plus the transfer
                        # count it would have recorded.
                        sync.stats.transfers += 1
                        inst.lsq_arrival_time = self._ls_clock.edge_at_or_after(
                            agen
                        )
                    else:
                        inst.lsq_arrival_time = agen
                else:
                    completion = now + latency_ps
                    inst.completion_time = completion
                    inst.exec_domain = _INTEGER_DOMAIN
                    if inst.mispredicted:
                        self._schedule_branch_redirect(inst, completion, clock)
        # Inline occupancy sample (one per processed edge, as always).
        queue.occupancy_samples += 1
        queue.occupancy_accumulator += len(queue._entries) + len(queue._incoming)

    def _floating_point_cycle(self, now: Picoseconds) -> None:
        queue = self.fp_queue
        if queue._incoming:
            queue.admit_arrivals(now)
        if queue._entries:
            period = self._fp_clock.period_ps
            units = self.fp_units
            units.begin_cycle(now)
            ready = self._ready_entries(queue, now, _FLOATING_POINT_DOMAIN)
            self._fp_idle_until = self._scan_idle_until
            issue_width = self._issue_width
            execution_latency = EXECUTION_LATENCY
            issued = 0
            for inst in ready:
                if issued >= issue_width:
                    break
                op = inst.op
                latency_ps = execution_latency[op] * period
                if not units.try_reserve(op, now, latency_ps):
                    continue
                queue.remove(inst)
                inst.issue_time = now
                issued += 1
                inst.completion_time = now + latency_ps
                inst.exec_domain = _FLOATING_POINT_DOMAIN
        queue.occupancy_samples += 1
        queue.occupancy_accumulator += len(queue._entries) + len(queue._incoming)

    def _load_store_cycle(self, now: Picoseconds) -> None:
        lsq = self.lsq
        if lsq.unissued == 0:
            # Every occupant has issued already (or the queue is empty):
            # the scan below would be a pure no-op.
            return
        clock = self._ls_clock
        period = clock.period_ps
        cache_ports = self._cache_ports
        access_data = self.hierarchy.access_data
        lsq_stats = lsq.stats
        performed = 0
        # Performing an access never mutates the LSQ entry list (entries
        # leave only at commit), so the program-ordered list is iterated
        # directly.
        for inst in lsq.pending_entries():
            if performed >= cache_ports:
                break
            if inst.memory_issued:
                continue
            arrival = inst.lsq_arrival_time
            if arrival is None or arrival > now:
                continue
            if inst.is_load:
                older_store = lsq.pending_older_store(inst)
                if older_store is not None:
                    forwardable = lsq.forwardable_store(inst, now)
                    if forwardable is None:
                        continue
                    inst.completion_time = now + period
                    inst.exec_domain = _LOAD_STORE_DOMAIN
                    inst.memory_issued = True
                    lsq.unissued -= 1
                    lsq_stats.loads_forwarded += 1
                    performed += 1
                    continue
                result = access_data(
                    inst.address, is_store=False, now_ps=now, period_ps=period
                )
                inst.completion_time = result.completion_ps
                inst.exec_domain = _LOAD_STORE_DOMAIN
                inst.memory_issued = True
                lsq.unissued -= 1
                lsq_stats.loads_performed += 1
                performed += 1
            else:
                result = access_data(
                    inst.address, is_store=True, now_ps=now, period_ps=period
                )
                inst.completion_time = result.completion_ps
                inst.exec_domain = _LOAD_STORE_DOMAIN
                inst.memory_issued = True
                lsq.unissued -= 1
                lsq_stats.stores_performed += 1
                performed += 1

    #: Pipeline depth already represented by the explicit fetch/decode/dispatch
    #: and issue modelling.  The configured misprediction penalties (Table 5)
    #: are *total* refill depths, so the explicitly added redirect delay is the
    #: configured penalty minus what the re-fetched instructions will pay
    #: anyway on their way back to the execution units.
    _MODELLED_REFILL_FRONT_END_CYCLES = 4
    _MODELLED_REFILL_INTEGER_CYCLES = 3

    def _schedule_branch_redirect(
        self, branch: DynInst, completion: Picoseconds, int_clock: DomainClock
    ) -> None:
        frontend = self.frontend
        assert frontend is not None
        fe_clock = self.clocks[Domain.FRONT_END]
        extra_int = max(
            0,
            self.spec.mispredict_integer_cycles - self._MODELLED_REFILL_INTEGER_CYCLES,
        )
        extra_fe = max(
            0,
            self.spec.mispredict_front_end_cycles
            - self._MODELLED_REFILL_FRONT_END_CYCLES,
        )
        resolved = completion + extra_int * int_clock.period_ps
        redirect = self.sync.transfer(resolved, int_clock, fe_clock)
        redirect += extra_fe * fe_clock.period_ps
        frontend.resume_after_branch(branch, redirect)

    def _service_icache_miss(self, address: int, now: Picoseconds) -> Picoseconds:
        """Service an I-cache miss from the unified L2 across the boundary."""
        fe_clock = self.clocks[Domain.FRONT_END]
        ls_clock = self.clocks[Domain.LOAD_STORE]
        request = self.sync.transfer(now, fe_clock, ls_clock)
        ready = self.hierarchy.access_l2_for_instruction(
            address, now_ps=request, period_ps=ls_clock.period_ps
        )
        return self.sync.transfer(ready, ls_clock, fe_clock)

    # ------------------------------------------------------------ adaptation

    def _feed_queue_controllers(self, inst: DynInst, now: Picoseconds) -> None:
        dest = inst.dest
        dest_index = dest if dest >= 0 else None
        source_count = inst.source_count
        if source_count == 0:
            source_indices: tuple[int, ...] = ()
        elif source_count == 1:
            source_indices = (inst.src0,)
        else:
            source_indices = (inst.src0, inst.src1)
        is_fp_op = inst.is_fp
        for controller, domain, queue in (
            (self._int_queue_controller, Domain.INTEGER, self.int_queue),
            (self._fp_queue_controller, Domain.FLOATING_POINT, self.fp_queue),
        ):
            if controller is None:
                continue
            tracked = is_fp_op if domain is Domain.FLOATING_POINT else not is_fp_op
            if controller.observe(dest_index, source_indices, tracked=tracked):
                decision = controller.evaluate()
                if self._trace_interval:
                    assert self.recorder is not None
                    self.recorder.emit(
                        CONTROLLER_INTERVAL,
                        now,
                        self.rob.total_committed,
                        structure=controller.name,
                        previous_size=decision.previous_size,
                        best_size=decision.best_size,
                        raw_best_size=decision.raw_best_size,
                        scores={
                            str(size): score
                            for size, score in decision.scores.items()
                        },
                        ilp_estimates={
                            str(size): estimate
                            for size, estimate in decision.ilp_estimates.items()
                        },
                        margin=decision.margin,
                        suppressed_by=decision.suppressed_by,
                        pending_candidate=decision.pending_candidate,
                        pending_count=decision.pending_count,
                        changed=decision.changed,
                    )
                if decision.changed and domain not in self._changes_in_progress:
                    self._apply_queue_change(
                        controller, domain, queue, decision.best_size, now
                    )

    def _on_commit(self, now: Picoseconds) -> None:
        for controller, structure in (
            (self._dcache_controller, "dcache"),
            (self._icache_controller, "icache"),
        ):
            if controller is None:
                continue
            if not controller.note_committed():
                continue
            interval_duration = now - self._interval_start_time.get(structure, 0)
            self._interval_start_time[structure] = now
            self._last_interval_duration = max(interval_duration, 1)
            decision = controller.evaluate_interval()
            domain = Domain.LOAD_STORE if structure == "dcache" else Domain.FRONT_END
            if self._trace_interval:
                assert self.recorder is not None
                self.recorder.emit(
                    CONTROLLER_INTERVAL,
                    now,
                    self.rob.total_committed,
                    structure=structure,
                    previous_index=decision.previous_index,
                    best_index=decision.best_index,
                    raw_best_index=decision.raw_best_index,
                    costs_ps=list(decision.costs_ps),
                    margin=decision.margin,
                    suppressed_by=decision.suppressed_by,
                    pending_candidate=decision.pending_candidate,
                    pending_count=decision.pending_count,
                    interval_instructions=decision.interval_instructions,
                    interval_duration_ps=interval_duration,
                    changed=decision.changed,
                )
            if decision.changed and domain not in self._changes_in_progress:
                self._apply_cache_change(structure, domain, decision.best_index, now)
            else:
                self._record_configuration(structure, domain, decision.best_index, now)

    def _configuration_name(self, structure: str, index: int) -> str:
        if structure == "dcache":
            return ADAPTIVE_DCACHE_CONFIGS[index].name
        if structure == "icache":
            return ADAPTIVE_ICACHE_CONFIGS[index].name
        return str(index)

    def _record_configuration(
        self, structure: str, domain: Domain, index: int, now: Picoseconds
    ) -> None:
        self._configuration_changes.append(
            ConfigurationChange(
                committed_instructions=self.rob.total_committed,
                time_ps=now,
                domain=domain.value,
                structure=structure,
                configuration=self._configuration_name(structure, index),
                index=index,
            )
        )

    def _apply_cache_change(
        self, structure: str, domain: Domain, new_index: int, now: Picoseconds
    ) -> None:
        clock = self.clocks[domain]
        if structure == "dcache":
            config = ADAPTIVE_DCACHE_CONFIGS[new_index]
            new_frequency = config.frequency_ghz
            apply_structure = lambda: self.hierarchy.apply_config(config)  # noqa: E731
        else:
            config = ADAPTIVE_ICACHE_CONFIGS[new_index]
            new_frequency = config.frequency_ghz
            frontend = self.frontend
            assert frontend is not None
            apply_structure = lambda: frontend.apply_icache_config(  # noqa: E731
                config, use_b_partition=self.spec.use_b_partitions
            )
        lock_time = self.pll.sample_lock_ps(self._last_interval_duration)
        upsizing = new_frequency < clock.frequency_ghz
        self._changes_in_progress.add(domain)
        fire_time = now + lock_time
        trace_freq = self._trace_freq

        def finish() -> None:
            old_frequency = clock.frequency_ghz
            if upsizing:
                apply_structure()
            clock.set_frequency(new_frequency)
            self._changes_in_progress.discard(domain)
            if trace_freq:
                assert self.recorder is not None
                self.recorder.emit(
                    FREQUENCY_CHANGE,
                    fire_time,
                    self.rob.total_committed,
                    domain=domain.value,
                    old_ghz=old_frequency,
                    new_ghz=new_frequency,
                )

        if not upsizing:
            # Downsizing: the smaller structure is safe at the old (slower)
            # frequency, so it switches immediately; the faster clock waits
            # for the PLL to re-lock.
            apply_structure()
        self._pending_events.append((fire_time, finish))
        self._record_configuration(structure, domain, new_index, now)
        if self._trace_reconfig:
            assert self.recorder is not None
            self.recorder.emit(
                RECONFIGURATION,
                now,
                self.rob.total_committed,
                structure=structure,
                domain=domain.value,
                index=new_index,
                configuration=self._configuration_name(structure, new_index),
                upsizing=upsizing,
                lock_time_ps=lock_time,
                effective_time_ps=fire_time,
            )

    def _apply_queue_change(
        self,
        controller: PhaseAdaptiveQueueController,
        domain: Domain,
        queue: IssueQueue,
        new_size: int,
        now: Picoseconds,
    ) -> None:
        clock = self.clocks[domain]
        new_frequency = ISSUE_QUEUE_FREQUENCY_GHZ[new_size]
        upsizing = new_size > queue.capacity
        lock_time = self.pll.sample_lock_ps(self._last_interval_duration or None)
        self._changes_in_progress.add(domain)
        fire_time = now + lock_time
        trace_freq = self._trace_freq

        def finish() -> None:
            old_frequency = clock.frequency_ghz
            if upsizing:
                queue.set_capacity(new_size)
            clock.set_frequency(new_frequency)
            self._changes_in_progress.discard(domain)
            if trace_freq:
                assert self.recorder is not None
                self.recorder.emit(
                    FREQUENCY_CHANGE,
                    fire_time,
                    self.rob.total_committed,
                    domain=domain.value,
                    old_ghz=old_frequency,
                    new_ghz=new_frequency,
                )

        if not upsizing:
            queue.set_capacity(new_size)
        self._pending_events.append((fire_time, finish))
        structure = "int-queue" if domain is Domain.INTEGER else "fp-queue"
        self._configuration_changes.append(
            ConfigurationChange(
                committed_instructions=self.rob.total_committed,
                time_ps=now,
                domain=domain.value,
                structure=structure,
                configuration=str(new_size),
                index=new_size,
            )
        )
        if self._trace_reconfig:
            assert self.recorder is not None
            self.recorder.emit(
                RECONFIGURATION,
                now,
                self.rob.total_committed,
                structure=structure,
                domain=domain.value,
                index=new_size,
                configuration=str(new_size),
                upsizing=upsizing,
                lock_time_ps=lock_time,
                effective_time_ps=fire_time,
            )

    # ------------------------------------------------------------- results

    @staticmethod
    def _geometry_dict(geometry: CacheGeometry) -> dict[str, int]:
        return {
            "size_kb": geometry.size_kb,
            "associativity": geometry.associativity,
            "sub_banks": geometry.sub_banks,
            "block_bytes": geometry.block_bytes,
        }

    @staticmethod
    def _profile_dict(profile: dict[str, int] | dict[int, int]) -> dict[str, int]:
        # String keys so the histogram survives JSON round-trips losslessly.
        return {str(ways): count for ways, count in sorted(profile.items())}

    @staticmethod
    def _predictor_size_kb(predictor: BranchPredictorGeometry) -> float:
        """Storage footprint of the hybrid predictor (KB of counter/history bits)."""
        bits = (
            2 * (predictor.gshare_entries + predictor.meta_entries)
            + 2 * predictor.local_pht_entries
            + predictor.local_history_bits * predictor.local_bht_entries
        )
        return bits / 8 / 1024

    def _build_result(self, workload_name: str) -> RunResult:
        frontend = self.frontend
        assert frontend is not None
        hierarchy_stats = self.hierarchy.stats
        spec = self.spec
        if spec.is_adaptive:
            # The resizable machines carry (and leak) the full physical
            # arrays; the energy model prices partial-activation probes of
            # them via the recorded probe-width histograms.
            l1i_geometry = frontend.icache.geometry
            l1d_geometry = self.hierarchy.l1d.geometry
            l2_geometry = self.hierarchy.l2.geometry
            queue_entries = max(ISSUE_QUEUE_SIZES)
            int_queue_entries = fp_queue_entries = queue_entries
        else:
            l1i_geometry = spec.icache.icache
            l1d_geometry = spec.dcache.l1
            l2_geometry = spec.dcache.l2
            int_queue_entries = spec.int_queue_size
            fp_queue_entries = spec.fp_queue_size
        params = self.params
        result = RunResult(
            workload=workload_name,
            machine=self.spec.describe(),
            style=self.spec.style.value,
            committed_instructions=self.rob.total_committed,
            execution_time_ps=self._last_commit_time,
            domain_cycles={
                domain.value: clock.cycle_count
                for domain, clock in self.clocks.items()
            },
            final_frequencies_ghz={
                domain.value: clock.frequency_ghz
                for domain, clock in self.clocks.items()
            },
            branch_predictions=frontend.stats.branches,
            branch_mispredictions=frontend.stats.mispredictions,
            icache_accesses=frontend.stats.icache_accesses,
            icache_b_hits=frontend.stats.icache_b_hits,
            icache_misses=frontend.stats.icache_misses,
            loads=hierarchy_stats.loads,
            stores=hierarchy_stats.stores,
            l1d_hits_a=hierarchy_stats.l1_hits_a,
            l1d_hits_b=hierarchy_stats.l1_hits_b,
            l1d_misses=hierarchy_stats.l1_misses,
            l2_hits_a=hierarchy_stats.l2_hits_a,
            l2_hits_b=hierarchy_stats.l2_hits_b,
            l2_misses=hierarchy_stats.l2_misses,
            memory_accesses=self.memory.stats.accesses,
            loads_forwarded=self.lsq.stats.loads_forwarded,
            sync_transfers=self.sync.stats.transfers,
            sync_penalties=self.sync.stats.penalties,
            fetch_stall_cycles=frontend.stats.fetch_stall_cycles,
            branch_stall_cycles=frontend.stats.branch_stall_cycles,
            int_queue_average_occupancy=self.int_queue.average_occupancy,
            fp_queue_average_occupancy=self.fp_queue.average_occupancy,
            configuration_changes=list(self._configuration_changes),
            phase_adaptive=self.phase_adaptive,
            fetched=frontend.stats.fetched,
            rob_dispatches=self.rob.total_dispatched,
            int_queue_dispatches=self.int_queue.total_dispatched,
            fp_queue_dispatches=self.fp_queue.total_dispatched,
            int_queue_issues=self.int_queue.total_issued,
            fp_queue_issues=self.fp_queue.total_issued,
            int_queue_occupancy_cycles=self.int_queue.occupancy_accumulator,
            fp_queue_occupancy_cycles=self.fp_queue.occupancy_accumulator,
            int_queue_operand_reads=self.int_queue.operand_reads,
            fp_queue_operand_reads=self.fp_queue.operand_reads,
            int_regfile_writes=self.int_regs.allocations,
            fp_regfile_writes=self.fp_regs.allocations,
            int_alu_ops=self.int_units.alu_ops,
            int_complex_ops=self.int_units.complex_ops_executed,
            fp_alu_ops=self.fp_units.alu_ops,
            fp_complex_ops=self.fp_units.complex_ops_executed,
            lsq_allocations=self.lsq.stats.allocations,
            cache_geometries={
                "l1i": self._geometry_dict(l1i_geometry),
                "l1d": self._geometry_dict(l1d_geometry),
                "l2": self._geometry_dict(l2_geometry),
            },
            cache_access_profile={
                "l1i": self._profile_dict(frontend.icache.access_profile),
                "l1d": self._profile_dict(self.hierarchy.l1d.access_profile),
                "l2": self._profile_dict(self.hierarchy.l2.access_profile),
            },
            structure_entries={
                "rob": params.reorder_buffer_entries,
                "lsq": params.load_store_queue_entries,
                "int_regfile": params.physical_int_registers,
                "fp_regfile": params.physical_fp_registers,
                "int_queue": int_queue_entries,
                "fp_queue": fp_queue_entries,
            },
            predictor_size_kb=self._predictor_size_kb(spec.icache.predictor),
            fast_forward_invocations=self.fast_forward_invocations,
            fast_forward_cycles=self.fast_forward_cycles,
            steady_stretches_skipped=self.steady_stretches_skipped,
            horizon_skipped_edges=self.horizon_skipped_edges,
            compiled_trace_cache_hits=frontend.compiled_trace_cache_hits,
        )
        return result
