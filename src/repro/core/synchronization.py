"""Cross-domain synchronisation model (Sjogren & Myers style).

Data crossing a clock-domain boundary is captured by the consumer domain at
one of its own clock edges.  If the producing event lands too close to the
consuming edge — within 30 % of the period of the faster of the two clocks —
the synchroniser cannot safely capture it and the data is delayed by one
additional consumer cycle.  This is the same arbitration window model the MCD
papers use and, as there, superscalar and out-of-order execution hide most of
the resulting stalls.

For the fully synchronous baseline the model is disabled: every domain shares
one clock, so a transfer costs nothing beyond the natural edge alignment the
consuming unit already performs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.clocks.clock import DomainClock
from repro.clocks.time import Picoseconds

#: The paper's arbitration window: 30 % of the faster clock's period.
DEFAULT_WINDOW_FRACTION = 0.3


@dataclass(slots=True)
class SynchronizationStats:
    """Counters of boundary crossings and penalty cycles."""

    transfers: int = 0
    penalties: int = 0

    @property
    def penalty_rate(self) -> float:
        """Fraction of transfers that paid the extra synchronisation cycle."""
        if not self.transfers:
            return 0.0
        return self.penalties / self.transfers


class SynchronizationModel:
    """Computes when a value produced in one domain is usable in another.

    Parameters
    ----------
    enabled:
        When False (fully synchronous machine) transfers are free.
    window_fraction:
        Fraction of the faster clock's period that constitutes the unsafe
        capture window (0.3 in the paper).
    """

    def __init__(
        self, *, enabled: bool = True, window_fraction: float = DEFAULT_WINDOW_FRACTION
    ) -> None:
        if not 0 <= window_fraction < 1:
            raise ValueError("window_fraction must be in [0, 1)")
        self.enabled = enabled
        self.window_fraction = window_fraction
        self.stats = SynchronizationStats()
        #: Observation-only hook invoked as ``on_penalty(event_time,
        #: producer_name, consumer_name)`` for every recorded penalty.  The
        #: telemetry layer (:mod:`repro.obs`) attaches here; ``None`` (the
        #: default) adds no work beyond the counter increment it shadows.
        self.on_penalty: Callable[[Picoseconds, str, str], None] | None = None

    def transfer(
        self,
        event_time: Picoseconds,
        producer_clock: DomainClock,
        consumer_clock: DomainClock,
        *,
        record: bool = True,
        fifo: bool = False,
    ) -> Picoseconds:
        """Return the earliest time the consumer domain can use the value.

        The value becomes visible at the consumer's next clock edge at or
        after *event_time*; if that edge falls inside the unsafe window the
        synchroniser adds one further consumer cycle.

        ``fifo=True`` models a crossing that lands in an existing hardware
        queue (issue queue or load/store queue).  Following the companion
        "Hiding Synchronization Delays in a GALS Processor" result the paper
        builds on, such crossings are decoupled by the queue and do not pay
        the extra arbitration cycle — only the edge alignment.

        ``record=False`` suppresses statistics, for callers that re-evaluate
        the same transfer repeatedly (operand wake-up checks).
        """
        if not self.enabled or producer_clock is consumer_clock:
            return event_time
        edge = consumer_clock.edge_at_or_after(event_time)
        window = int(
            self.window_fraction
            * min(producer_clock.period_ps, consumer_clock.period_ps)
        )
        delayed = (edge - event_time < window) and not fifo
        if record:
            self.stats.transfers += 1
            if delayed:
                self.stats.penalties += 1
                if self.on_penalty is not None:
                    self.on_penalty(
                        event_time, producer_clock.name, consumer_clock.name
                    )
        if delayed:
            if consumer_clock.jitter_fraction:
                # The extra cycle must land on a true jittered edge, not a
                # nominal-period extrapolation the clock never produces.
                return consumer_clock.edge_at_or_after(edge + 1)
            return edge + consumer_clock.period_ps
        return edge

    def reset(self) -> None:
        """Zero the statistics (used between runs)."""
        self.stats = SynchronizationStats()
