"""The paper's contribution: the adaptive MCD (GALS) processor.

This package ties the substrates together into the four-domain adaptive
processor of the paper — independently clocked front-end, integer,
floating-point and load/store domains with resizable structures — plus the
hardware control algorithms that pick a configuration per program phase, and
the machine specifications used by the whole-program (Program-Adaptive) and
fully synchronous experiments.
"""

from repro.core.domains import Domain
from repro.core.synchronization import SynchronizationModel, SynchronizationStats
from repro.core.pll import PLLModel
from repro.core.configuration import (
    ArchitecturalParameters,
    AdaptiveConfigIndices,
    MachineSpec,
    MachineStyle,
    adaptive_mcd_spec,
    base_adaptive_spec,
    best_overall_synchronous_spec,
    synchronous_spec,
)
from repro.core.controllers import (
    AdaptiveControlParams,
    CacheControllerDecision,
    ILPTracker,
    PhaseAdaptiveCacheController,
    PhaseAdaptiveQueueController,
)
from repro.core.processor import MCDProcessor

__all__ = [
    "Domain",
    "SynchronizationModel",
    "SynchronizationStats",
    "PLLModel",
    "ArchitecturalParameters",
    "AdaptiveConfigIndices",
    "MachineSpec",
    "MachineStyle",
    "adaptive_mcd_spec",
    "base_adaptive_spec",
    "best_overall_synchronous_spec",
    "synchronous_spec",
    "AdaptiveControlParams",
    "CacheControllerDecision",
    "ILPTracker",
    "PhaseAdaptiveCacheController",
    "PhaseAdaptiveQueueController",
    "MCDProcessor",
]
