"""Clock-domain identifiers for the four-domain MCD machine."""

from __future__ import annotations

import enum


class Domain(str, enum.Enum):
    """The independently clocked domains of the adaptive MCD processor.

    Main memory is conceptually a fifth domain, but it runs at a fixed base
    frequency and is therefore modelled by the latency-based
    :class:`~repro.caches.memory.MainMemory` rather than by a clock.
    """

    FRONT_END = "front_end"
    INTEGER = "integer"
    FLOATING_POINT = "floating_point"
    LOAD_STORE = "load_store"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Domains in a canonical order (used for reporting).
ALL_DOMAINS: tuple[Domain, ...] = (
    Domain.FRONT_END,
    Domain.INTEGER,
    Domain.FLOATING_POINT,
    Domain.LOAD_STORE,
)
