"""Machine specifications: architectural parameters and configurations.

Two machine styles are supported:

* ``MachineStyle.ADAPTIVE_MCD`` — the paper's adaptive GALS machine: four
  independently clocked domains, resizable structures drawn from the
  *adaptive* timing tables, over-pipelined branch-misprediction penalty
  (10 front-end + 9 integer cycles), and cross-domain synchronisation costs.
* ``MachineStyle.SYNCHRONOUS`` — the fully synchronous baseline: a single
  global clock set by the slowest of its (capacity-optimised) structures, the
  lower 9 + 7 misprediction penalty, and no synchronisation costs.

The architectural parameters follow Table 5 of the paper.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Iterator

from repro.core.domains import Domain
from repro.timing.tables import (
    ADAPTIVE_DCACHE_CONFIGS,
    ADAPTIVE_ICACHE_CONFIGS,
    ISSUE_QUEUE_SIZES,
    OPTIMAL_DCACHE_CONFIGS,
    OPTIMIZED_ICACHE_CONFIGS,
    DCacheL2Config,
    ICacheConfig,
    issue_queue_frequency,
)


class MachineStyle(str, enum.Enum):
    """Which machine organisation a specification describes."""

    ADAPTIVE_MCD = "adaptive_mcd"
    SYNCHRONOUS = "synchronous"


@dataclass(frozen=True, slots=True)
class ArchitecturalParameters:
    """Fixed microarchitectural parameters (Table 5 of the paper)."""

    fetch_queue_entries: int = 16
    fetch_width: int = 8
    decode_width: int = 8
    issue_width: int = 6
    retire_width: int = 11
    decode_cycles: int = 2
    reorder_buffer_entries: int = 256
    load_store_queue_entries: int = 64
    physical_int_registers: int = 96
    physical_fp_registers: int = 96
    int_alus: int = 4
    int_complex_units: int = 1
    fp_alus: int = 4
    fp_complex_units: int = 1
    cache_ports: int = 2
    memory_first_chunk_ns: float = 80.0
    memory_subsequent_chunk_ns: float = 2.0
    mispredict_front_end_cycles_synchronous: int = 9
    mispredict_integer_cycles_synchronous: int = 7
    mispredict_front_end_cycles_adaptive: int = 10
    mispredict_integer_cycles_adaptive: int = 9


@dataclass(frozen=True, slots=True)
class AdaptiveConfigIndices:
    """One point in the adaptive (or synchronous) configuration space."""

    icache_index: int = 0
    dcache_index: int = 0
    int_queue_size: int = 16
    fp_queue_size: int = 16

    def __post_init__(self) -> None:
        if self.int_queue_size not in ISSUE_QUEUE_SIZES:
            raise ValueError(f"unsupported integer queue size {self.int_queue_size}")
        if self.fp_queue_size not in ISSUE_QUEUE_SIZES:
            raise ValueError(f"unsupported FP queue size {self.fp_queue_size}")

    def describe(self) -> str:
        """Short text form, e.g. ``ic0/dc1/iq16/fq32``."""
        return (
            f"ic{self.icache_index}/dc{self.dcache_index}"
            f"/iq{self.int_queue_size}/fq{self.fp_queue_size}"
        )

    @classmethod
    def from_key(cls, key: str) -> "AdaptiveConfigIndices":
        """Parse a :meth:`describe` key back into indices."""
        try:
            icache, dcache, int_queue, fp_queue = key.split("/")
            if (icache[:2], dcache[:2], int_queue[:2], fp_queue[:2]) != (
                "ic", "dc", "iq", "fq",
            ):
                raise ValueError(key)
            return cls(
                int(icache[2:]), int(dcache[2:]), int(int_queue[2:]), int(fp_queue[2:])
            )
        except (ValueError, IndexError) as error:
            raise ValueError(f"malformed configuration key {key!r}") from error

    def to_dict(self) -> dict[str, int]:
        """Plain-data form for JSON payloads and job fingerprints."""
        return {
            "icache_index": self.icache_index,
            "dcache_index": self.dcache_index,
            "int_queue_size": self.int_queue_size,
            "fp_queue_size": self.fp_queue_size,
        }


def adaptive_configuration_space() -> Iterator[AdaptiveConfigIndices]:
    """All 256 adaptive MCD configurations (4 x 4 x 4 x 4)."""
    for ic, dc, iq, fq in itertools.product(
        range(len(ADAPTIVE_ICACHE_CONFIGS)),
        range(len(ADAPTIVE_DCACHE_CONFIGS)),
        ISSUE_QUEUE_SIZES,
        ISSUE_QUEUE_SIZES,
    ):
        yield AdaptiveConfigIndices(ic, dc, iq, fq)


def synchronous_configuration_space() -> Iterator[AdaptiveConfigIndices]:
    """All 1024 fully synchronous configurations (16 x 4 x 4 x 4)."""
    for ic, dc, iq, fq in itertools.product(
        range(len(OPTIMIZED_ICACHE_CONFIGS)),
        range(len(OPTIMAL_DCACHE_CONFIGS)),
        ISSUE_QUEUE_SIZES,
        ISSUE_QUEUE_SIZES,
    ):
        yield AdaptiveConfigIndices(ic, dc, iq, fq)


@dataclass(frozen=True, slots=True)
class MachineSpec:
    """A fully resolved machine to simulate."""

    style: MachineStyle
    icache: ICacheConfig
    dcache: DCacheL2Config
    int_queue_size: int
    fp_queue_size: int
    frequencies_ghz: dict[Domain, float]
    mispredict_front_end_cycles: int
    mispredict_integer_cycles: int
    use_b_partitions: bool
    inter_domain_sync: bool
    indices: AdaptiveConfigIndices | None = None
    parameters: ArchitecturalParameters = field(default_factory=ArchitecturalParameters)

    @property
    def is_adaptive(self) -> bool:
        """True for the adaptive MCD organisation."""
        return self.style is MachineStyle.ADAPTIVE_MCD

    def frequency(self, domain: Domain) -> float:
        """Frequency (GHz) of *domain* at the start of a run."""
        return self.frequencies_ghz[domain]

    def describe(self) -> str:
        """Readable one-line summary for reports."""
        freqs = ", ".join(
            f"{domain.value}={ghz:.2f}GHz" for domain, ghz in self.frequencies_ghz.items()
        )
        return (
            f"{self.style.value}: I${self.icache.name}, D$/L2 {self.dcache.name}, "
            f"IQ{self.int_queue_size}/FQ{self.fp_queue_size} [{freqs}]"
        )

    def to_dict(self) -> dict[str, object]:
        """Plain-data summary of the spec (for JSON payloads and reports).

        Structure configurations are referenced by name — the timing tables
        are the single source of truth for their geometry and frequency.
        """
        return {
            "style": self.style.value,
            "icache": self.icache.name,
            "dcache": self.dcache.name,
            "int_queue_size": self.int_queue_size,
            "fp_queue_size": self.fp_queue_size,
            "frequencies_ghz": {
                domain.value: ghz for domain, ghz in self.frequencies_ghz.items()
            },
            "mispredict_front_end_cycles": self.mispredict_front_end_cycles,
            "mispredict_integer_cycles": self.mispredict_integer_cycles,
            "use_b_partitions": self.use_b_partitions,
            "inter_domain_sync": self.inter_domain_sync,
            "indices": self.indices.to_dict() if self.indices is not None else None,
        }


def adaptive_mcd_spec(
    indices: AdaptiveConfigIndices | None = None,
    *,
    use_b_partitions: bool = False,
    parameters: ArchitecturalParameters | None = None,
) -> MachineSpec:
    """Build an adaptive MCD machine fixed at *indices*.

    ``use_b_partitions`` is False for whole-program (Program-Adaptive) runs —
    a miss in the A partition goes straight to the next level, exactly as the
    paper does for its whole-program experiments — and True when the machine
    will be driven by the phase-adaptive controllers.
    """
    indices = indices if indices is not None else AdaptiveConfigIndices()
    parameters = parameters if parameters is not None else ArchitecturalParameters()
    icache = ADAPTIVE_ICACHE_CONFIGS[indices.icache_index]
    dcache = ADAPTIVE_DCACHE_CONFIGS[indices.dcache_index]
    frequencies = {
        Domain.FRONT_END: icache.frequency_ghz,
        Domain.INTEGER: issue_queue_frequency(indices.int_queue_size),
        Domain.FLOATING_POINT: issue_queue_frequency(indices.fp_queue_size),
        Domain.LOAD_STORE: dcache.frequency_ghz,
    }
    return MachineSpec(
        style=MachineStyle.ADAPTIVE_MCD,
        icache=icache,
        dcache=dcache,
        int_queue_size=indices.int_queue_size,
        fp_queue_size=indices.fp_queue_size,
        frequencies_ghz=frequencies,
        mispredict_front_end_cycles=parameters.mispredict_front_end_cycles_adaptive,
        mispredict_integer_cycles=parameters.mispredict_integer_cycles_adaptive,
        use_b_partitions=use_b_partitions,
        inter_domain_sync=True,
        indices=indices,
        parameters=parameters,
    )


def base_adaptive_spec(
    *, use_b_partitions: bool = True, parameters: ArchitecturalParameters | None = None
) -> MachineSpec:
    """The adaptive MCD machine in its base (smallest, fastest) configuration.

    This is the starting point of every phase-adaptive run: 16 KB
    direct-mapped I-cache, 32 KB/256 KB direct-mapped D/L2, 16-entry issue
    queues, with the B partitions available to the controllers.
    """
    return adaptive_mcd_spec(
        AdaptiveConfigIndices(0, 0, 16, 16),
        use_b_partitions=use_b_partitions,
        parameters=parameters,
    )


def synchronous_spec(
    indices: AdaptiveConfigIndices | None = None,
    *,
    parameters: ArchitecturalParameters | None = None,
) -> MachineSpec:
    """Build a fully synchronous machine from *indices*.

    The I-cache index selects from the sixteen capacity-optimised
    configurations of Table 3 and the D-cache index from the optimal column
    of Table 1.  The single global frequency is set by the slowest selected
    structure.
    """
    indices = indices if indices is not None else AdaptiveConfigIndices()
    parameters = parameters if parameters is not None else ArchitecturalParameters()
    icache = OPTIMIZED_ICACHE_CONFIGS[indices.icache_index]
    dcache = OPTIMAL_DCACHE_CONFIGS[indices.dcache_index]
    global_frequency = min(
        icache.frequency_ghz,
        dcache.frequency_ghz,
        issue_queue_frequency(indices.int_queue_size),
        issue_queue_frequency(indices.fp_queue_size),
    )
    frequencies = {domain: global_frequency for domain in Domain}
    return MachineSpec(
        style=MachineStyle.SYNCHRONOUS,
        icache=icache,
        dcache=dcache,
        int_queue_size=indices.int_queue_size,
        fp_queue_size=indices.fp_queue_size,
        frequencies_ghz=frequencies,
        mispredict_front_end_cycles=parameters.mispredict_front_end_cycles_synchronous,
        mispredict_integer_cycles=parameters.mispredict_integer_cycles_synchronous,
        use_b_partitions=False,
        inter_domain_sync=False,
        indices=indices,
        parameters=parameters,
    )


def best_overall_synchronous_spec(
    *, parameters: ArchitecturalParameters | None = None
) -> MachineSpec:
    """The paper's best-overall fully synchronous machine.

    Section 4: a 16-entry integer issue queue, a 16-entry floating-point
    queue, a 64 KB direct-mapped instruction cache with its associated branch
    predictor, and the 32 KB direct-mapped L1 data cache with a 256 KB
    direct-mapped L2.
    """
    icache_index = next(
        index
        for index, config in enumerate(OPTIMIZED_ICACHE_CONFIGS)
        if config.name == "64k1W"
    )
    return synchronous_spec(
        AdaptiveConfigIndices(icache_index, 0, 16, 16), parameters=parameters
    )
