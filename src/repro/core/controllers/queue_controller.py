"""ILP-tracking issue-queue controller (Section 3.2 of the paper).

The controller measures the *inherent* ILP of the instruction stream,
independent of the microarchitecture, by tracking dependence heights through
the rename map: every renamed instruction's destination receives a timestamp
one larger than the largest timestamp among its sources.  Four trackers run
simultaneously, one per candidate queue size N in {16, 32, 48, 64}; tracker N
closes its window once N instructions of the tracked class (integer or
floating point) have been observed, recording the maximum timestamp M_N seen
so far.  N/M_N estimates the ILP a window of N instructions exposes; scaling
each estimate by the frequency that queue size permits and taking the
maximum gives the queue size that would have yielded the highest effective
throughput over the recent past.

Timestamps saturate at the width the paper provisions (4 bits for the
16-entry tracker, 5 for 32, 6 for 48 and 64), and windows for the less
dominant instruction class terminate early when the dominant class fills the
machine, exactly as described in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.registers import TOTAL_LOGICAL_REGS
from repro.timing.tables import ISSUE_QUEUE_FREQUENCY_GHZ, ISSUE_QUEUE_SIZES

#: Timestamp width per tracked queue size (bits), per the paper.
TIMESTAMP_BITS: dict[int, int] = {16: 4, 32: 5, 48: 6, 64: 6}


@dataclass(frozen=True, slots=True)
class QueueControllerDecision:
    """Result of one resize evaluation.

    The trailing fields are pure diagnostics for the telemetry layer
    (:mod:`repro.obs`): ``raw_best_size`` is the score-maximal queue size
    *before* hysteresis/streak damping, ``margin`` the hysteresis margin that
    applied, and ``suppressed_by`` names the damping mechanism
    (``"hysteresis"``/``"streak"``, empty when the raw winner was taken).
    They never influence the selection itself.
    """

    best_size: int
    previous_size: int
    scores: dict[int, float]
    ilp_estimates: dict[int, float]
    raw_best_size: int = -1
    margin: float = 0.0
    pending_candidate: int | None = None
    pending_count: int = 0
    suppressed_by: str = ""

    @property
    def changed(self) -> bool:
        """True when the controller selected a different queue size."""
        return self.best_size != self.previous_size


class _SizeTracker:
    """Dependence-height tracker for a single candidate queue size."""

    __slots__ = ("size", "max_timestamp", "count", "tracked_count", "other_count",
                 "saturation", "timestamps", "complete")

    def __init__(self, size: int) -> None:
        self.size = size
        self.saturation = (1 << TIMESTAMP_BITS[size]) - 1
        self.timestamps = [0] * TOTAL_LOGICAL_REGS
        self.max_timestamp = 0
        self.tracked_count = 0
        self.other_count = 0
        self.complete = False

    def reset(self) -> None:
        for index in range(TOTAL_LOGICAL_REGS):
            self.timestamps[index] = 0
        self.max_timestamp = 0
        self.tracked_count = 0
        self.other_count = 0
        self.complete = False

    def observe(self, dest: int | None, sources: tuple[int, ...], tracked: bool) -> None:
        if self.complete:
            return
        height = 0
        for source in sources:
            value = self.timestamps[source]
            if value > height:
                height = value
        height = min(height + 1, self.saturation)
        if dest is not None:
            self.timestamps[dest] = height
        if tracked:
            self.tracked_count += 1
            if height > self.max_timestamp:
                self.max_timestamp = height
        else:
            self.other_count += 1
        # The window ends when either instruction class reaches the queue
        # size: the less dominant class can never fill a deeper queue.
        if self.tracked_count >= self.size or self.other_count >= self.size:
            self.complete = True

    @property
    def ilp_estimate(self) -> float:
        """Estimated ILP for this window (tracked instructions / height)."""
        if self.max_timestamp == 0:
            return float(self.tracked_count) if self.tracked_count else 1.0
        return self.tracked_count / self.max_timestamp


class ILPTracker:
    """Simultaneous dependence-height tracking for all four queue sizes."""

    def __init__(self, *, queue_sizes: tuple[int, ...] = ISSUE_QUEUE_SIZES) -> None:
        self.queue_sizes = queue_sizes
        self._trackers = [_SizeTracker(size) for size in queue_sizes]

    def observe(
        self, dest: int | None, sources: tuple[int, ...], *, tracked: bool
    ) -> None:
        """Feed one renamed instruction to every active tracker."""
        for tracker in self._trackers:
            tracker.observe(dest, sources, tracked)

    @property
    def all_windows_complete(self) -> bool:
        """True when every candidate size has a fresh estimate."""
        return all(tracker.complete for tracker in self._trackers)

    def estimates(self) -> dict[int, float]:
        """Current ILP estimate per candidate queue size."""
        return {tracker.size: tracker.ilp_estimate for tracker in self._trackers}

    def reset(self) -> None:
        """Clear every tracker (hardware counter reset between windows)."""
        for tracker in self._trackers:
            tracker.reset()


class PhaseAdaptiveQueueController:
    """Resize decision logic for one issue queue (integer or floating point)."""

    def __init__(
        self,
        *,
        name: str,
        initial_size: int = 16,
        queue_sizes: tuple[int, ...] = ISSUE_QUEUE_SIZES,
        frequencies_ghz: dict[int, float] | None = None,
        hysteresis: float = 0.0,
        consecutive_decisions_required: int = 1,
    ) -> None:
        if not 0 <= hysteresis < 0.5:
            raise ValueError("hysteresis must be in [0, 0.5)")
        if consecutive_decisions_required < 1:
            raise ValueError("consecutive_decisions_required must be >= 1")
        self.name = name
        self.queue_sizes = queue_sizes
        self.frequencies_ghz = dict(
            frequencies_ghz if frequencies_ghz is not None else ISSUE_QUEUE_FREQUENCY_GHZ
        )
        self.current_size = initial_size
        self.hysteresis = hysteresis
        self.consecutive_decisions_required = consecutive_decisions_required
        self._pending_candidate: int | None = None
        self._pending_count = 0
        self.tracker = ILPTracker(queue_sizes=queue_sizes)
        self.decisions: list[QueueControllerDecision] = []

    def observe(self, dest: int | None, sources: tuple[int, ...], *, tracked: bool) -> bool:
        """Feed one renamed instruction; True when a decision is available."""
        self.tracker.observe(dest, sources, tracked=tracked)
        return self.tracker.all_windows_complete

    def evaluate(self) -> QueueControllerDecision:
        """Pick the queue size with the best frequency-scaled effective ILP.

        A change is only requested when the winning size beats the current
        size's score by the hysteresis margin for
        ``consecutive_decisions_required`` windows in a row; each change pays
        a PLL re-lock, so single noisy windows should not trigger one.
        """
        estimates = self.tracker.estimates()
        scores = {
            size: min(estimates[size], float(size)) * self.frequencies_ghz[size]
            for size in self.queue_sizes
        }
        candidate = max(self.queue_sizes, key=lambda size: (scores[size], -size))
        raw_best_size = candidate
        margin = 0.0
        suppressed_by = ""
        if candidate != self.current_size:
            # Growing the queue commits the domain to a much lower frequency,
            # so it must win by the full hysteresis margin; shrinking back
            # only needs a small one (it recovers frequency).
            margin = self.hysteresis if candidate > self.current_size else 0.02
            if scores[candidate] <= scores[self.current_size] * (1.0 + margin):
                candidate = self.current_size
                suppressed_by = "hysteresis"
        if candidate == self.current_size:
            self._pending_candidate = None
            self._pending_count = 0
            best_size = self.current_size
        else:
            if candidate == self._pending_candidate:
                self._pending_count += 1
            else:
                self._pending_candidate = candidate
                self._pending_count = 1
            if self._pending_count >= self.consecutive_decisions_required:
                best_size = candidate
                self._pending_candidate = None
                self._pending_count = 0
            else:
                best_size = self.current_size
                suppressed_by = "streak"
        decision = QueueControllerDecision(
            best_size=best_size,
            previous_size=self.current_size,
            scores=scores,
            ilp_estimates=estimates,
            raw_best_size=raw_best_size,
            margin=margin,
            pending_candidate=self._pending_candidate,
            pending_count=self._pending_count,
            suppressed_by=suppressed_by,
        )
        self.decisions.append(decision)
        self.current_size = best_size
        self.tracker.reset()
        return decision
