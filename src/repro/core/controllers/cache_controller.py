"""Phase-adaptive Accounting-Cache controller (Section 3.1 of the paper).

At the end of every adaptation interval the controller reads the MRU-position
hit counters of the cache (or cache pair) it manages and computes, for every
possible A-partition width, the total access *time* the interval would have
cost under that configuration — A-partition hits pay the A latency, B hits
and misses additionally pay the B latency, and last-level misses pay a
constant memory estimate.  Latencies are divided by the frequency each
configuration permits, so the tradeoff between a small, fast partition and a
large, slow one is captured directly.  The configuration with the minimum
reconstructed cost is selected for the next interval.

The same controller class manages both the jointly resized L1-D/L2 pair and
the I-cache (with a single level).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.caches.accounting import AccountingCache
from repro.clocks.time import Picoseconds, ghz_to_period_ps


@dataclass(frozen=True, slots=True)
class CacheLevel:
    """One cache level managed by the controller.

    ``latencies`` holds an ``(a_cycles, b_cycles)`` pair per configuration
    index, and ``a_ways`` the A-partition width per configuration index.
    """

    cache: AccountingCache
    latencies: tuple[tuple[int, int | None], ...]
    a_ways: tuple[int, ...]


@dataclass(frozen=True, slots=True)
class CacheControllerDecision:
    """Result of one interval evaluation.

    The trailing fields are pure diagnostics for the telemetry layer
    (:mod:`repro.obs`): ``raw_best_index`` is the cost-minimal configuration
    *before* hysteresis/streak damping, ``margin`` the hysteresis margin that
    applied, and ``suppressed_by`` names the mechanism (``"hysteresis"`` or
    ``"streak"``, empty when the raw winner was taken) that kept the
    controller on its current configuration.  They never influence the
    selection itself.
    """

    best_index: int
    previous_index: int
    costs_ps: tuple[float, ...]
    interval_instructions: int
    raw_best_index: int = -1
    margin: float = 0.0
    pending_candidate: int | None = None
    pending_count: int = 0
    suppressed_by: str = ""

    @property
    def changed(self) -> bool:
        """True when the controller selected a different configuration."""
        return self.best_index != self.previous_index


class PhaseAdaptiveCacheController:
    """Interval-based configuration selector for one cache or cache pair.

    Parameters
    ----------
    name:
        Identifier used in decision records ("icache" or "dcache").
    levels:
        The cache levels resized together (one for the I-cache, two for the
        L1-D/L2 pair).
    frequencies_ghz:
        Domain frequency permitted by each configuration index.
    beyond_last_level_ps:
        Constant cost charged for each miss from the last managed level
        (L2-service estimate for the I-cache, main-memory estimate for the
        D/L2 pair).
    interval_instructions:
        Adaptation interval in committed instructions.
    """

    def __init__(
        self,
        *,
        name: str,
        levels: tuple[CacheLevel, ...],
        frequencies_ghz: tuple[float, ...],
        beyond_last_level_ps: Picoseconds,
        interval_instructions: int = 15_000,
        initial_index: int = 0,
        hysteresis: float = 0.0,
        consecutive_decisions_required: int = 1,
        b_hit_overlap_factor: float = 0.5,
    ) -> None:
        if not levels:
            raise ValueError("controller needs at least one cache level")
        n_configs = len(frequencies_ghz)
        for level in levels:
            if len(level.latencies) != n_configs or len(level.a_ways) != n_configs:
                raise ValueError("per-level tables must match the configuration count")
        if not 0 <= hysteresis < 0.5:
            raise ValueError("hysteresis must be in [0, 0.5)")
        if consecutive_decisions_required < 1:
            raise ValueError("consecutive_decisions_required must be >= 1")
        self.name = name
        self.levels = levels
        self.frequencies_ghz = frequencies_ghz
        self.beyond_last_level_ps = beyond_last_level_ps
        self.interval_instructions = interval_instructions
        self.current_index = initial_index
        self.hysteresis = hysteresis
        self.consecutive_decisions_required = consecutive_decisions_required
        self.b_hit_overlap_factor = b_hit_overlap_factor
        self._pending_candidate: int | None = None
        self._pending_count = 0
        self._instructions_in_interval = 0
        self.decisions: list[CacheControllerDecision] = []

    # ------------------------------------------------------------------ API

    def note_committed(self, count: int = 1) -> bool:
        """Account *count* committed instructions; True when interval ends."""
        self._instructions_in_interval += count
        return self._instructions_in_interval >= self.interval_instructions

    @property
    def instructions_in_interval(self) -> int:
        """Committed instructions accumulated in the current interval."""
        return self._instructions_in_interval

    def evaluate_interval(self) -> CacheControllerDecision:
        """Pick the best configuration for the next interval and reset counters."""
        costs = tuple(
            self._configuration_cost_ps(index)
            for index in range(len(self.frequencies_ghz))
        )
        best_index = min(range(len(costs)), key=lambda index: (costs[index], index))
        raw_best_index = best_index
        margin = 0.0
        suppressed_by = ""
        # A change pays a PLL re-lock, so the winner must beat the current
        # configuration by the hysteresis margin, and must keep winning for
        # ``consecutive_decisions_required`` intervals, to displace it.
        if best_index != self.current_index:
            current_cost = costs[self.current_index]
            margin = self.hysteresis if best_index > self.current_index else 0.02
            if costs[best_index] > current_cost * (1.0 - margin):
                best_index = self.current_index
                suppressed_by = "hysteresis"
        if best_index != self.current_index:
            if best_index == self._pending_candidate:
                self._pending_count += 1
            else:
                self._pending_candidate = best_index
                self._pending_count = 1
            if self._pending_count < self.consecutive_decisions_required:
                best_index = self.current_index
                suppressed_by = "streak"
            else:
                self._pending_candidate = None
                self._pending_count = 0
        else:
            self._pending_candidate = None
            self._pending_count = 0
        decision = CacheControllerDecision(
            best_index=best_index,
            previous_index=self.current_index,
            costs_ps=costs,
            interval_instructions=self._instructions_in_interval,
            raw_best_index=raw_best_index,
            margin=margin,
            pending_candidate=self._pending_candidate,
            pending_count=self._pending_count,
            suppressed_by=suppressed_by,
        )
        self.decisions.append(decision)
        self.current_index = best_index
        self._instructions_in_interval = 0
        for level in self.levels:
            level.cache.reset_interval()
        return decision

    def force_reset_interval(self) -> None:
        """Discard the current interval's counters without deciding.

        The consecutive-decision streak is cleared too: a discarded interval
        produced no decision, so it must not count toward (or carry over) the
        ``consecutive_decisions_required`` run of identical winners.
        """
        self._instructions_in_interval = 0
        self._pending_candidate = None
        self._pending_count = 0
        for level in self.levels:
            level.cache.reset_interval()

    # ----------------------------------------------------------- internals

    def _configuration_cost_ps(self, index: int) -> float:
        period = ghz_to_period_ps(self.frequencies_ghz[index])
        total = 0.0
        last_level_misses = 0
        for level in self.levels:
            stats = level.cache.interval_stats
            a_latency, b_latency = level.latencies[index]
            a_ways = level.a_ways[index]
            has_b = b_latency is not None
            a_hits, b_hits, misses = stats.what_if(a_ways, b_enabled=has_b)
            accesses = stats.accesses
            # Every access pays the A-partition probe.
            total += accesses * a_latency * period
            # B hits additionally pay the B-partition probe, discounted by the
            # overlap factor because out-of-order execution and the decoupled
            # fetch pipeline hide part of that latency.  Misses are not
            # charged the B probe: they cost the same in every configuration
            # (the block is not resident anywhere), and charging them would
            # let transient bursts of compulsory misses drag the controller
            # toward the largest configuration for no steady-state benefit.
            if has_b:
                total += b_hits * b_latency * period * self.b_hit_overlap_factor
            last_level_misses = misses
        total += last_level_misses * self.beyond_last_level_ps
        return total
