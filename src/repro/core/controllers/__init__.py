"""Hardware-style adaptive control algorithms (Section 3 of the paper).

Two controllers drive the phase-adaptive machine:

* :class:`PhaseAdaptiveCacheController` — the Accounting-Cache controller.
  Every adaptation interval it reconstructs, from MRU-position counters, the
  access cost every possible configuration *would have had* over the interval
  just ended and picks the cheapest for the next interval.
* :class:`PhaseAdaptiveQueueController` — the ILP-tracking issue-queue
  controller.  Timestamp-based dependence-height tracking estimates the
  effective ILP a 16/32/48/64-entry queue could extract, scales each by the
  frequency that queue size permits, and requests the best size.

Both avoid any online exploration of the configuration space, which is the
property the paper emphasises.
"""

from repro.core.controllers.params import AdaptiveControlParams
from repro.core.controllers.cache_controller import (
    CacheControllerDecision,
    CacheLevel,
    PhaseAdaptiveCacheController,
)
from repro.core.controllers.queue_controller import (
    ILPTracker,
    PhaseAdaptiveQueueController,
    QueueControllerDecision,
)

__all__ = [
    "AdaptiveControlParams",
    "CacheControllerDecision",
    "CacheLevel",
    "PhaseAdaptiveCacheController",
    "ILPTracker",
    "PhaseAdaptiveQueueController",
    "QueueControllerDecision",
]
