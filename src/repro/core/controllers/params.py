"""Tunable parameters of the phase-adaptive control algorithms."""

from __future__ import annotations

from dataclasses import dataclass

from repro.clocks.time import ns_to_ps


@dataclass(frozen=True, slots=True)
class AdaptiveControlParams:
    """Knobs of the phase-adaptive controllers.

    Parameters
    ----------
    interval_instructions:
        Length of the cache controller's adaptation interval in committed
        instructions.  The paper uses 15 000; scaled-down runs typically use
        an interval around one tenth of their simulation window so several
        adaptations occur.
    adapt_caches / adapt_queues:
        Enable the cache-pair / issue-queue controllers individually (useful
        for ablations).
    pll_interval_scaled:
        When True the PLL lock time tracks the duration of the previous
        adaptation interval (the paper's "comparable to the PLL lock-down
        time" relationship, preserved under window scaling).  When False the
        paper's absolute 10-20 microsecond lock times are used.
    pll_mean_us / pll_min_us / pll_max_us:
        Absolute lock-time distribution used when not interval-scaled.
    icache_miss_time_ns:
        Constant estimate of the cost of an instruction-cache miss (service
        from L2), used in the I-cache controller's cost function.
    memory_time_ns:
        Constant estimate of a main-memory access, used as the beyond-L2 term
        in the D/L2 controller's cost function.
    decision_latency_cycles:
        Cycles the dedicated controller hardware needs to produce a decision
        (the paper estimates roughly 32 cycles with bit-serial multipliers).
    cache_hysteresis / queue_hysteresis:
        Relative margin by which an alternative configuration's score must
        beat the current one before a (PLL-relock-costing) change is
        requested.  Small engineering guard against sampling noise at the
        scaled-down interval lengths used here.
    cache_consecutive_decisions / queue_consecutive_decisions:
        Number of consecutive identical decisions required before a
        (PLL-relock-costing) reconfiguration is requested.
    """

    interval_instructions: int = 15_000
    adapt_caches: bool = True
    adapt_queues: bool = True
    pll_interval_scaled: bool = True
    pll_mean_us: float = 15.0
    pll_min_us: float = 10.0
    pll_max_us: float = 20.0
    icache_miss_time_ns: float = 20.0
    memory_time_ns: float = 94.0
    decision_latency_cycles: int = 32
    cache_hysteresis: float = 0.08
    cache_consecutive_decisions: int = 1
    cache_b_hit_overlap_factor: float = 0.5
    queue_hysteresis: float = 0.30
    queue_consecutive_decisions: int = 3

    def __post_init__(self) -> None:
        if self.interval_instructions < 100:
            raise ValueError("interval_instructions must be at least 100")
        if self.decision_latency_cycles < 0:
            raise ValueError("decision_latency_cycles must be non-negative")
        if not 0 <= self.cache_hysteresis < 0.5:
            raise ValueError("cache_hysteresis must be in [0, 0.5)")
        if not 0 <= self.queue_hysteresis < 0.5:
            raise ValueError("queue_hysteresis must be in [0, 0.5)")
        if self.queue_consecutive_decisions < 1:
            raise ValueError("queue_consecutive_decisions must be >= 1")

    @property
    def icache_miss_time_ps(self) -> int:
        """I-cache miss service estimate in picoseconds."""
        return ns_to_ps(self.icache_miss_time_ns)

    @property
    def memory_time_ps(self) -> int:
        """Main-memory access estimate in picoseconds."""
        return ns_to_ps(self.memory_time_ns)
