"""Construction and search helpers for the fully synchronous baseline."""

from __future__ import annotations

from typing import Sequence

from repro.core.configuration import (
    AdaptiveConfigIndices,
    MachineSpec,
    best_overall_synchronous_spec,
    synchronous_spec,
)
from repro.workloads.characteristics import WorkloadProfile

__all__ = [
    "best_overall_synchronous_spec",
    "synchronous_spec",
    "find_best_overall_configuration",
]


def find_best_overall_configuration(
    profiles: Sequence[WorkloadProfile],
    *,
    mode: str = "factored",
    window: int | None = None,
    warmup: int | None = None,
) -> tuple[AdaptiveConfigIndices, MachineSpec]:
    """Search for the synchronous configuration with the best overall performance.

    This is the search the paper ran over 1 024 configurations and 32
    applications (160 CPU-months of simulation); here it delegates to
    :func:`repro.analysis.sweep.best_synchronous_configuration`, which
    normalises each application's run time by its per-application best and
    picks the configuration with the lowest average.  The paper's winner —
    64 KB direct-mapped I-cache, 32 KB/256 KB direct-mapped D/L2 and 16-entry
    issue queues — is available directly via
    :func:`best_overall_synchronous_spec`.
    """
    from repro.analysis.sweep import best_synchronous_configuration

    indices, _averages = best_synchronous_configuration(
        profiles, mode=mode, window=window, warmup=warmup
    )
    return indices, synchronous_spec(indices)
