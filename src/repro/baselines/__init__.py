"""Fully synchronous baseline machines.

The fully synchronous processor of the paper shares the entire pipeline model
with the adaptive MCD machine (see :class:`repro.core.MCDProcessor`); it
differs only in its specification: one global clock set by the slowest of its
capacity-optimised structures, no inter-domain synchronisation cost, the
shallower 9 + 7 cycle misprediction penalty, and no B partitions.  This
package re-exports the specification constructors and the suite-wide
best-overall search.
"""

from repro.baselines.synchronous import (
    best_overall_synchronous_spec,
    find_best_overall_configuration,
    synchronous_spec,
)

__all__ = [
    "best_overall_synchronous_spec",
    "find_best_overall_configuration",
    "synchronous_spec",
]
