"""Dynamic-instruction bookkeeping used throughout the pipeline."""

from __future__ import annotations

from repro.clocks.time import Picoseconds
from repro.isa.instruction import Instruction
from repro.isa.opcodes import IS_FLOATING_POINT, OpClass
from repro.isa.registers import NO_REGISTER, register_index


class DynInst:
    """One in-flight dynamic instruction.

    A :class:`DynInst` carries the timing state the pipeline needs — when it
    was fetched, dispatched, issued and completed, which domain produced its
    result, and which in-flight producers its source operands depend on —
    together with the decoded instruction fields themselves: program counter,
    opcode, dense register ids (``NO_REGISTER`` when absent), effective
    address and branch target.

    On the compiled-trace fast path the fields are populated directly from
    flat column reads and the instance is recycled through a free list once
    the machine drains, so no per-instruction objects are allocated at all;
    the legacy constructor form ``DynInst(instruction=...)`` decodes a trace
    ``Instruction`` instead and keeps a reference to it.

    Deliberately a plain ``__slots__`` class with *identity* equality: queue
    entries are unique in-flight objects, and the containers that remove them
    (:meth:`IssueQueue.remove`, LSQ release) rely on fast identity scans
    rather than field-by-field comparison.
    """

    __slots__ = (
        "instruction",
        "producers",
        "fetch_time",
        "dispatch_ready_time",
        "dispatch_time",
        "queue_arrival_time",
        "issue_time",
        "agen_time",
        "lsq_arrival_time",
        "completion_time",
        "commit_time",
        "exec_domain",
        "mispredicted",
        "squashed",
        "memory_issued",
        # Memoised operand wake-up time (see MCDProcessor._ready_entries):
        # valid only while ``wake_epoch`` matches the processor's current
        # wake-window epoch, which advances on any domain frequency change.
        "wake_time",
        "wake_epoch",
        # Decoded instruction fields (column reads on the fast path).
        "seq",
        "op",
        "is_branch",
        "is_memory_op",
        "is_load",
        "is_store",
        "is_fp",
        "pc",
        "dest",
        "src0",
        "src1",
        "source_count",
        "address",
        "target",
    )

    def __init__(self, instruction: Instruction | None = None) -> None:
        self.instruction = instruction
        #: Producers of each source operand that were still in flight at
        #: rename time (``None`` entries mean the operand was already
        #: architecturally ready).
        self.producers: tuple[DynInst | None, ...] = ()
        self.fetch_time: Picoseconds = 0
        self.dispatch_ready_time: Picoseconds = 0
        self.dispatch_time: Picoseconds | None = None
        self.queue_arrival_time: Picoseconds | None = None
        self.issue_time: Picoseconds | None = None
        self.agen_time: Picoseconds | None = None
        self.lsq_arrival_time: Picoseconds | None = None
        self.completion_time: Picoseconds | None = None
        self.commit_time: Picoseconds | None = None
        #: Name of the domain whose clock produced ``completion_time``.
        self.exec_domain: str = "integer"
        self.mispredicted = False
        self.squashed = False
        self.memory_issued = False
        self.wake_time: Picoseconds = 0
        self.wake_epoch = -1
        if instruction is not None:
            self.seq = instruction.seq
            self.op = instruction.op
            self.is_branch = instruction.is_branch
            self.is_memory_op = instruction.is_memory_op
            self.is_load = instruction.is_load
            self.is_store = instruction.is_store
            self.is_fp = IS_FLOATING_POINT[instruction.op]
            self.pc = instruction.pc
            dest = instruction.dest
            self.dest = NO_REGISTER if dest is None else register_index(dest)
            sources = instruction.sources
            count = len(sources)
            self.src0 = register_index(sources[0]) if count else NO_REGISTER
            self.src1 = register_index(sources[1]) if count > 1 else NO_REGISTER
            self.source_count = count
            self.address = instruction.address if instruction.address is not None else 0
            self.target = instruction.target if instruction.target is not None else 0
        else:
            self.seq = -1
            self.op = OpClass.NOP
            self.is_branch = False
            self.is_memory_op = False
            self.is_load = False
            self.is_store = False
            self.is_fp = False
            self.pc = 0
            self.dest = NO_REGISTER
            self.src0 = NO_REGISTER
            self.src1 = NO_REGISTER
            self.source_count = 0
            self.address = 0
            self.target = 0

    @property
    def completed(self) -> bool:
        """True once the instruction has produced its result."""
        return self.completion_time is not None

    def describe(self) -> str:
        """Readable one-line rendering for debugging."""
        state = "completed" if self.completed else "in-flight"
        rendering = (
            self.instruction.describe()
            if self.instruction is not None
            else f"{self.op.value}@{self.pc:#x}"
        )
        return f"[{self.seq}] {rendering} ({state})"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<DynInst {self.describe()}>"
