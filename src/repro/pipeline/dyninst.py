"""Dynamic-instruction bookkeeping used throughout the pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clocks.time import Picoseconds
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OpClass, is_floating_point


@dataclass(slots=True)
class DynInst:
    """One in-flight dynamic instruction.

    A :class:`DynInst` wraps the trace-level
    :class:`~repro.isa.instruction.Instruction` with the timing state the
    pipeline needs: when it was fetched, dispatched, issued and completed,
    which domain produced its result, and which in-flight producers its
    source operands depend on.
    """

    instruction: Instruction
    #: Producers of each source operand that were still in flight at rename
    #: time (``None`` entries mean the operand was already architecturally
    #: ready).
    producers: tuple["DynInst | None", ...] = ()
    fetch_time: Picoseconds = 0
    dispatch_ready_time: Picoseconds = 0
    dispatch_time: Picoseconds | None = None
    queue_arrival_time: Picoseconds | None = None
    issue_time: Picoseconds | None = None
    agen_time: Picoseconds | None = None
    lsq_arrival_time: Picoseconds | None = None
    completion_time: Picoseconds | None = None
    commit_time: Picoseconds | None = None
    #: Name of the domain whose clock produced ``completion_time``.
    exec_domain: str = "integer"
    mispredicted: bool = False
    squashed: bool = False
    memory_issued: bool = field(default=False)

    # Convenience accessors -------------------------------------------------

    @property
    def seq(self) -> int:
        """Dynamic sequence number of the wrapped instruction."""
        return self.instruction.seq

    @property
    def op(self) -> OpClass:
        """Operation class of the wrapped instruction."""
        return self.instruction.op

    @property
    def is_branch(self) -> bool:
        """True if the instruction is a control transfer."""
        return self.instruction.is_branch

    @property
    def is_memory_op(self) -> bool:
        """True if the instruction accesses the data cache."""
        return self.instruction.is_memory_op

    @property
    def is_load(self) -> bool:
        """True for loads."""
        return self.instruction.is_load

    @property
    def is_store(self) -> bool:
        """True for stores."""
        return self.instruction.is_store

    @property
    def is_fp(self) -> bool:
        """True if the instruction executes in the floating-point domain."""
        return is_floating_point(self.instruction.op)

    @property
    def completed(self) -> bool:
        """True once the instruction has produced its result."""
        return self.completion_time is not None

    def describe(self) -> str:
        """Readable one-line rendering for debugging."""
        state = "completed" if self.completed else "in-flight"
        return f"[{self.seq}] {self.instruction.describe()} ({state})"
