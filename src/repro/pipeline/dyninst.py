"""Dynamic-instruction bookkeeping used throughout the pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clocks.time import Picoseconds
from repro.isa.instruction import Instruction
from repro.isa.opcodes import IS_FLOATING_POINT, OpClass


@dataclass(slots=True)
class DynInst:
    """One in-flight dynamic instruction.

    A :class:`DynInst` wraps the trace-level
    :class:`~repro.isa.instruction.Instruction` with the timing state the
    pipeline needs: when it was fetched, dispatched, issued and completed,
    which domain produced its result, and which in-flight producers its
    source operands depend on.
    """

    instruction: Instruction
    #: Producers of each source operand that were still in flight at rename
    #: time (``None`` entries mean the operand was already architecturally
    #: ready).
    producers: tuple["DynInst | None", ...] = ()
    fetch_time: Picoseconds = 0
    dispatch_ready_time: Picoseconds = 0
    dispatch_time: Picoseconds | None = None
    queue_arrival_time: Picoseconds | None = None
    issue_time: Picoseconds | None = None
    agen_time: Picoseconds | None = None
    lsq_arrival_time: Picoseconds | None = None
    completion_time: Picoseconds | None = None
    commit_time: Picoseconds | None = None
    #: Name of the domain whose clock produced ``completion_time``.
    exec_domain: str = "integer"
    mispredicted: bool = False
    squashed: bool = False
    memory_issued: bool = field(default=False)

    # Cached accessors ------------------------------------------------------
    # The pipeline touches these several times per cycle per in-flight
    # instruction, so they are copied out of the wrapped Instruction once at
    # construction instead of living behind properties.
    seq: int = field(init=False, repr=False, default=-1)
    op: OpClass = field(init=False, repr=False, default=OpClass.NOP)
    is_branch: bool = field(init=False, repr=False, default=False)
    is_memory_op: bool = field(init=False, repr=False, default=False)
    is_load: bool = field(init=False, repr=False, default=False)
    is_store: bool = field(init=False, repr=False, default=False)
    is_fp: bool = field(init=False, repr=False, default=False)

    def __post_init__(self) -> None:
        instruction = self.instruction
        self.seq = instruction.seq
        self.op = instruction.op
        self.is_branch = instruction.is_branch
        self.is_memory_op = instruction.is_memory_op
        self.is_load = instruction.is_load
        self.is_store = instruction.is_store
        self.is_fp = IS_FLOATING_POINT[instruction.op]

    @property
    def completed(self) -> bool:
        """True once the instruction has produced its result."""
        return self.completion_time is not None

    def describe(self) -> str:
        """Readable one-line rendering for debugging."""
        state = "completed" if self.completed else "in-flight"
        return f"[{self.seq}] {self.instruction.describe()} ({state})"
