"""Execution resources: functional-unit pools and physical register files."""

from __future__ import annotations

from repro.clocks.time import Picoseconds
from repro.isa.opcodes import OpClass


class FunctionalUnitPool:
    """A pool of functional units within one execution domain.

    The pool distinguishes fully pipelined units (ALUs: a unit is busy for
    one issue slot per cycle regardless of operation latency) from
    unpipelined units (multiply/divide/sqrt: busy for the whole operation).

    Parameters
    ----------
    alus:
        Number of pipelined ALUs.
    complex_units:
        Number of unpipelined multiply/divide units.
    complex_ops:
        The operation classes routed to the complex units.
    """

    def __init__(
        self,
        *,
        alus: int,
        complex_units: int,
        complex_ops: frozenset[OpClass],
    ) -> None:
        if alus < 1 or complex_units < 0:
            raise ValueError("invalid functional unit counts")
        self._alus = alus
        self._complex_units = complex_units
        self._complex_ops = complex_ops
        self._alu_slots_used = 0
        self._current_cycle_time: Picoseconds = -1
        self._complex_busy_until: list[Picoseconds] = [0] * complex_units
        # Energy-accounting activity (observation-only).
        self.alu_ops = 0
        self.complex_ops_executed = 0

    def begin_cycle(self, now: Picoseconds) -> None:
        """Reset per-cycle issue-slot accounting."""
        self._current_cycle_time = now
        self._alu_slots_used = 0

    def try_reserve(self, op: OpClass, now: Picoseconds, latency_ps: Picoseconds) -> bool:
        """Reserve a unit for *op* this cycle; return False if none is free."""
        if op in self._complex_ops:
            for index, busy_until in enumerate(self._complex_busy_until):
                if busy_until <= now:
                    self._complex_busy_until[index] = now + latency_ps
                    self.complex_ops_executed += 1
                    return True
            return False
        if self._alu_slots_used >= self._alus:
            return False
        self._alu_slots_used += 1
        self.alu_ops += 1
        return True

    def reset(self) -> None:
        """Release every unit (used between runs)."""
        self._alu_slots_used = 0
        self._complex_busy_until = [0] * self._complex_units
        self.alu_ops = 0
        self.complex_ops_executed = 0


class PhysicalRegisterFile:
    """Occupancy model of one physical register file.

    Registers are allocated at dispatch and freed at commit.  Only the count
    matters for timing, so the model is a simple counter with the logical
    registers permanently resident (as in the paper's 96-entry files backing
    32 logical registers).
    """

    def __init__(self, total: int, logical: int = 32) -> None:
        if total <= logical:
            raise ValueError("physical register file must exceed the logical count")
        self._total = total
        self._logical = logical
        self._allocated = logical
        # Energy-accounting activity (observation-only): rename writes.
        self.allocations = 0

    @property
    def total(self) -> int:
        """Total number of physical registers."""
        return self._total

    @property
    def free(self) -> int:
        """Number of registers currently available for renaming."""
        return self._total - self._allocated

    def can_allocate(self, count: int = 1) -> bool:
        """True if *count* registers can be allocated."""
        return self.free >= count

    def allocate(self, count: int = 1) -> None:
        """Allocate *count* registers (dispatch)."""
        if not self.can_allocate(count):
            raise RuntimeError("physical register file overflow")
        self._allocated += count
        self.allocations += count

    def release(self, count: int = 1) -> None:
        """Release *count* registers (commit)."""
        self._allocated -= count
        if self._allocated < self._logical:
            raise RuntimeError("physical register file underflow")

    def reset(self) -> None:
        """Return to the initial state with only logical registers mapped."""
        self._allocated = self._logical
        self.allocations = 0
