"""Timing-pipeline substrate shared by the adaptive MCD machine and the
fully synchronous baseline: dynamic-instruction bookkeeping, issue queues,
reorder buffer, load/store queue, register files and functional units, and
the fetch/rename front end."""

from repro.pipeline.dyninst import DynInst
from repro.pipeline.resources import FunctionalUnitPool, PhysicalRegisterFile
from repro.pipeline.issue_queue import IssueQueue
from repro.pipeline.rob import ReorderBuffer
from repro.pipeline.lsq import LoadStoreQueue
from repro.pipeline.frontend import FetchQueue, FrontEnd

__all__ = [
    "DynInst",
    "FunctionalUnitPool",
    "PhysicalRegisterFile",
    "IssueQueue",
    "ReorderBuffer",
    "LoadStoreQueue",
    "FetchQueue",
    "FrontEnd",
]
