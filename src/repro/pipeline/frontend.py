"""Front-end: instruction fetch, branch prediction, and the fetch queue.

The front end owns the (resizable) instruction cache, the jointly sized
hybrid branch predictor, a small BTB and the fetch queue.  It is trace
driven: instructions come from the workload generator in committed program
order, so there is no wrong-path fetch; a mispredicted branch instead stalls
fetch until the processor reports that the branch has resolved and the
configured misprediction penalty has elapsed (the standard trace-driven
modelling of branch mispredictions).

Fetch consumes the trace through its *compiled* flat-column form
(:class:`~repro.workloads.trace_cache.CompiledTrace`): the fetch loop reads
parallel ``array`` columns by cursor index and populates pooled
:class:`~repro.pipeline.dyninst.DynInst` records, so the per-instruction hot
path performs no object construction and no attribute chasing through
``Instruction``.  Caller-supplied iterators are wrapped into a compiled
trace that keeps the original ``Instruction`` objects, which preserves
object identity for legacy consumers (warm-up, tests) while sharing the one
fetch implementation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.branch.btb import BranchTargetBuffer
from repro.branch.hybrid import HybridPredictor, build_predictor
from repro.caches.accounting import AccountingCache
from repro.caches.cache import AccessOutcome
from repro.clocks.time import Picoseconds
from repro.timing.cacti import CacheGeometry
from repro.isa.instruction import Instruction
from repro.isa.opcodes import (
    FLAG_BRANCH,
    FLAG_FP,
    FLAG_LOAD,
    FLAG_MEMORY,
    FLAG_STORE,
    FLAG_TAKEN,
    OPCLASSES,
)
from repro.isa.registers import NO_REGISTER
from repro.pipeline.dyninst import DynInst
from repro.timing.tables import ICacheConfig
from repro.workloads.trace_cache import CompiledTrace

#: Upper bound on the DynInst free list (enough to cover ROB + queues with
#: slack; beyond this, retired records are simply dropped to the GC).
_POOL_CAPACITY = 512


@dataclass(slots=True)
class FrontEndStats:
    """Aggregate front-end counters."""

    fetched: int = 0
    icache_accesses: int = 0
    icache_b_hits: int = 0
    icache_misses: int = 0
    branches: int = 0
    mispredictions: int = 0
    btb_misses: int = 0
    fetch_stall_cycles: int = 0
    branch_stall_cycles: int = 0


class FetchQueue:
    """Fixed-capacity queue between fetch and dispatch."""

    def __init__(self, capacity: int = 16) -> None:
        if capacity < 1:
            raise ValueError("fetch queue capacity must be positive")
        self._capacity = capacity
        self._entries: deque[DynInst] = deque()

    @property
    def capacity(self) -> int:
        """Maximum number of buffered instructions."""
        return self._capacity

    @property
    def occupancy(self) -> int:
        """Number of buffered instructions."""
        return len(self._entries)

    @property
    def has_space(self) -> bool:
        """True when fetch may insert another instruction."""
        return len(self._entries) < self._capacity

    def push(self, inst: DynInst) -> None:
        """Append a fetched instruction."""
        if not self.has_space:
            raise RuntimeError("fetch queue overflow")
        self._entries.append(inst)

    def peek(self) -> DynInst | None:
        """Oldest buffered instruction, or ``None``."""
        return self._entries[0] if self._entries else None

    def pop(self) -> DynInst:
        """Remove and return the oldest buffered instruction."""
        return self._entries.popleft()

    def clear(self) -> None:
        """Drop the buffer contents."""
        self._entries.clear()


class FrontEnd:
    """Fetch engine for one run.

    Parameters
    ----------
    trace:
        The instruction stream in program order: a
        :class:`~repro.workloads.trace_cache.CompiledTrace`, an object
        exposing a ``compiled`` attribute (e.g.
        :class:`~repro.workloads.trace_cache.ReplayableTrace`), or any
        iterable/iterator of :class:`~repro.isa.instruction.Instruction`
        (compiled on the fly, originals retained).
    icache_config:
        The active I-cache / branch-predictor configuration.
    fetch_width:
        Maximum instructions fetched per front-end cycle.
    fetch_queue_capacity:
        Depth of the fetch queue (Table 5: 16 entries).
    decode_cycles:
        Front-end cycles between fetch and dispatch eligibility.
    use_b_partition:
        Whether the I-cache B partition is accessible.
    icache_miss_handler:
        Callback ``(block_address, now_ps) -> ready_ps`` used to service
        I-cache misses from the unified L2 across the domain boundary.
    """

    def __init__(
        self,
        trace: CompiledTrace | Iterable[Instruction] | Iterator[Instruction],
        *,
        icache_config: ICacheConfig,
        physical_geometry: CacheGeometry | None = None,
        fetch_width: int = 8,
        fetch_queue_capacity: int = 16,
        decode_cycles: int = 2,
        use_b_partition: bool = True,
        icache_miss_handler: Callable[[int, Picoseconds], Picoseconds] | None = None,
    ) -> None:
        if isinstance(trace, CompiledTrace):
            compiled = trace
        else:
            candidate = getattr(trace, "compiled", None)
            if isinstance(candidate, CompiledTrace):
                compiled = candidate
            else:
                compiled = CompiledTrace(iter(trace), keep_objects=True)
        self._trace = compiled
        self._cursor = 0
        #: Rows already compiled before this run started — fetches below this
        #: watermark are compiled-trace cache hits (columns built by an
        #: earlier run in the same process).
        self._premat = compiled.length
        self._measured_from = 0
        self._pool: list[DynInst] = []
        self.fetch_width = fetch_width
        self.decode_cycles = decode_cycles
        self.fetch_queue = FetchQueue(fetch_queue_capacity)
        self.stats = FrontEndStats()

        # The physical array is the maximum (resizable) organisation; the
        # active configuration selects how many ways form the A partition.
        # For non-resizable (synchronous) machines the physical array is the
        # configuration itself.
        self.icache_config = icache_config
        self.icache = AccountingCache(
            physical_geometry if physical_geometry is not None else icache_config.icache,
            a_ways=icache_config.ways,
            b_enabled=use_b_partition and icache_config.l1_latency[1] is not None,
            name="L1I",
        )
        self.predictor: HybridPredictor = build_predictor(icache_config.predictor)
        self.btb = BranchTargetBuffer()
        self._icache_miss_handler = icache_miss_handler

        self._stall_until: Picoseconds = 0
        self._waiting_branch: DynInst | None = None
        self._last_block: int | None = None

    # ------------------------------------------------------------------ API

    @property
    def trace(self) -> CompiledTrace:
        """The compiled trace fetch reads from (for bulk warm-up)."""
        return self._trace

    @property
    def cursor(self) -> int:
        """Index of the next instruction to fetch."""
        return self._cursor

    @property
    def trace_exhausted(self) -> bool:
        """True once the trace has been fully consumed."""
        return self._trace.exhausted and self._cursor >= self._trace.length

    @property
    def waiting_for_branch(self) -> DynInst | None:
        """The unresolved mispredicted branch fetch is stalled on, if any."""
        return self._waiting_branch

    @property
    def stall_until(self) -> Picoseconds:
        """Time before which fetch is stalled (redirect or I-cache refill)."""
        return self._stall_until

    @property
    def compiled_trace_cache_hits(self) -> int:
        """Measured-run fetches served from pre-compiled trace columns."""
        return max(0, min(self._cursor, self._premat) - self._measured_from)

    def apply_icache_config(self, config: ICacheConfig, *, use_b_partition: bool) -> None:
        """Repartition the I-cache for *config* (contents are preserved)."""
        self.icache_config = config
        self.icache.set_a_ways(config.ways)
        self.icache.set_b_enabled(use_b_partition and config.l1_latency[1] is not None)

    def resume_after_branch(self, branch: DynInst, redirect_time: Picoseconds) -> None:
        """Called by the processor when a mispredicted branch resolves."""
        if self._waiting_branch is branch:
            self._waiting_branch = None
            self._stall_until = max(self._stall_until, redirect_time)
            self._last_block = None

    def take_instruction(self) -> Instruction | None:
        """Consume and return the next trace instruction (used for warm-up)."""
        cursor = self._cursor
        if self._trace.ensure(cursor + 1) <= cursor:
            return None
        self._cursor = cursor + 1
        return self._trace.instruction_at(cursor)

    def advance_cursor(self, count: int) -> None:
        """Skip *count* instructions (bulk warm-up reads columns directly)."""
        self._cursor += count

    def warm(self, instruction: Instruction) -> None:
        """Warm the I-cache and branch predictor without timing effects."""
        pc = instruction.pc
        block = pc // self.icache.geometry.block_bytes
        if block != self._last_block:
            self.icache.access(pc)
            self._last_block = block
        if instruction.is_branch:
            taken = instruction.taken
            self.predictor.predict_and_update(pc, taken)
            if taken:
                self.btb.update(pc, instruction.target or 0)

    def reset_warm_state(self) -> None:
        """Clear warmup bookkeeping and statistics before a measured run."""
        self._last_block = None
        self._measured_from = self._cursor
        self.icache.reset_interval()
        self.icache.stats.accesses = 0
        self.icache.stats.hits = 0
        self.icache.stats.misses = 0
        self.icache.stats.b_hits = 0
        self.icache.reset_access_profile()
        self.stats = FrontEndStats()
        self.predictor.stats.predictions = 0
        self.predictor.stats.mispredictions = 0

    def recycle(self, insts: Iterable[DynInst]) -> None:
        """Return retired DynInst records to the fetch pool.

        Only safe once no in-flight instruction can still read them (the
        processor calls this at quiescent points: ROB and fetch queue empty).
        """
        pool = self._pool
        for inst in insts:
            if len(pool) >= _POOL_CAPACITY:
                break
            inst.instruction = None
            inst.producers = ()
            inst.dispatch_time = None
            inst.queue_arrival_time = None
            inst.issue_time = None
            inst.agen_time = None
            inst.lsq_arrival_time = None
            inst.completion_time = None
            inst.commit_time = None
            inst.exec_domain = "integer"
            inst.mispredicted = False
            inst.squashed = False
            inst.memory_issued = False
            inst.wake_epoch = -1
            pool.append(inst)

    # ------------------------------------------------------------ fetch step

    def fetch_cycle(self, now: Picoseconds, period_ps: Picoseconds) -> list[DynInst]:
        """Fetch up to ``fetch_width`` instructions at front-end edge *now*."""
        stats = self.stats
        if self._waiting_branch is not None:
            stats.branch_stall_cycles += 1
            return []
        if now < self._stall_until:
            stats.fetch_stall_cycles += 1
            return []

        fetched: list[DynInst] = []
        fetch_queue = self.fetch_queue
        icache = self.icache
        trace = self._trace
        cursor = self._cursor
        limit = cursor + self.fetch_width
        available = trace.ensure(limit)
        pc_col = trace.pc
        op_col = trace.op
        flags_col = trace.flags
        dest_col = trace.dest
        src0_col = trace.src0
        src1_col = trace.src1
        addr_col = trace.address
        target_col = trace.target
        seq_col = trace.seq
        opclasses = OPCLASSES
        pool = self._pool
        predictor = self.predictor
        btb = self.btb
        last_block = self._last_block
        block_bytes = icache.geometry.block_bytes
        decode_delay = self.decode_cycles * period_ps
        extra_decode_delay = 0
        while cursor < limit and cursor < available:
            if not fetch_queue.has_space:
                break

            pc = pc_col[cursor]
            block = pc // block_bytes
            if block != last_block:
                outcome = icache.access(pc)
                stats.icache_accesses += 1
                last_block = block
                if outcome is AccessOutcome.HIT_B:
                    # The fetch pipeline keeps running; instructions from this
                    # block simply become available to dispatch B-latency
                    # cycles later.
                    stats.icache_b_hits += 1
                    extra_decode_delay = (self.icache_config.l1_latency[1] or 0) * period_ps
                elif outcome is AccessOutcome.MISS:
                    stats.icache_misses += 1
                    if self._icache_miss_handler is not None:
                        ready = self._icache_miss_handler(pc, now)
                    else:
                        ready = now + 20 * period_ps
                    self._stall_until = max(ready, now + period_ps)
                    # The cursor does not advance: the same instruction is
                    # refetched after the refill (hitting the now-warm block,
                    # as ``last_block`` already points at it).
                    break

            bits = flags_col[cursor]
            dyninst = pool.pop() if pool else DynInst()
            dyninst.seq = seq_col[cursor]
            dyninst.op = opclasses[op_col[cursor]]
            dyninst.is_branch = is_branch = bool(bits & FLAG_BRANCH)
            dyninst.is_memory_op = bool(bits & FLAG_MEMORY)
            dyninst.is_load = bool(bits & FLAG_LOAD)
            dyninst.is_store = bool(bits & FLAG_STORE)
            dyninst.is_fp = bool(bits & FLAG_FP)
            dyninst.pc = pc
            dyninst.dest = dest_col[cursor]
            src0 = src0_col[cursor]
            src1 = src1_col[cursor]
            dyninst.src0 = src0
            dyninst.src1 = src1
            if src1 != NO_REGISTER:
                dyninst.source_count = 2
            elif src0 != NO_REGISTER:
                dyninst.source_count = 1
            else:
                dyninst.source_count = 0
            dyninst.address = addr_col[cursor]
            dyninst.target = target_col[cursor]
            dyninst.fetch_time = now
            dyninst.dispatch_ready_time = now + decode_delay + extra_decode_delay
            fetch_queue.push(dyninst)
            fetched.append(dyninst)
            stats.fetched += 1
            cursor += 1

            if is_branch:
                stats.branches += 1
                taken = bool(bits & FLAG_TAKEN)
                correct = predictor.predict_and_update(pc, taken)
                predicted_target = btb.lookup(pc)
                if taken:
                    btb.update(pc, dyninst.target)
                if not correct:
                    dyninst.mispredicted = True
                    stats.mispredictions += 1
                    self._waiting_branch = dyninst
                    break
                if taken:
                    if predicted_target is None:
                        # Correctly predicted direction but unknown target:
                        # one fetch bubble while the target is computed.
                        stats.btb_misses += 1
                        self._stall_until = now + period_ps
                    # Cannot fetch past a taken branch in the same cycle.
                    last_block = None
                    break
        self._cursor = cursor
        self._last_block = last_block
        return fetched
