"""Front-end: instruction fetch, branch prediction, and the fetch queue.

The front end owns the (resizable) instruction cache, the jointly sized
hybrid branch predictor, a small BTB and the fetch queue.  It is trace
driven: instructions come from the workload generator in committed program
order, so there is no wrong-path fetch; a mispredicted branch instead stalls
fetch until the processor reports that the branch has resolved and the
configured misprediction penalty has elapsed (the standard trace-driven
modelling of branch mispredictions).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.branch.btb import BranchTargetBuffer
from repro.branch.hybrid import HybridPredictor, build_predictor
from repro.caches.accounting import AccountingCache
from repro.caches.cache import AccessOutcome
from repro.clocks.time import Picoseconds
from repro.timing.cacti import CacheGeometry
from repro.isa.instruction import Instruction
from repro.pipeline.dyninst import DynInst
from repro.timing.tables import ICacheConfig


@dataclass(slots=True)
class FrontEndStats:
    """Aggregate front-end counters."""

    fetched: int = 0
    icache_accesses: int = 0
    icache_b_hits: int = 0
    icache_misses: int = 0
    branches: int = 0
    mispredictions: int = 0
    btb_misses: int = 0
    fetch_stall_cycles: int = 0
    branch_stall_cycles: int = 0


class FetchQueue:
    """Fixed-capacity queue between fetch and dispatch."""

    def __init__(self, capacity: int = 16) -> None:
        if capacity < 1:
            raise ValueError("fetch queue capacity must be positive")
        self._capacity = capacity
        self._entries: deque[DynInst] = deque()

    @property
    def capacity(self) -> int:
        """Maximum number of buffered instructions."""
        return self._capacity

    @property
    def occupancy(self) -> int:
        """Number of buffered instructions."""
        return len(self._entries)

    @property
    def has_space(self) -> bool:
        """True when fetch may insert another instruction."""
        return len(self._entries) < self._capacity

    def push(self, inst: DynInst) -> None:
        """Append a fetched instruction."""
        if not self.has_space:
            raise RuntimeError("fetch queue overflow")
        self._entries.append(inst)

    def peek(self) -> DynInst | None:
        """Oldest buffered instruction, or ``None``."""
        return self._entries[0] if self._entries else None

    def pop(self) -> DynInst:
        """Remove and return the oldest buffered instruction."""
        return self._entries.popleft()

    def clear(self) -> None:
        """Drop the buffer contents."""
        self._entries.clear()


class FrontEnd:
    """Fetch engine for one run.

    Parameters
    ----------
    trace:
        Iterator of :class:`~repro.isa.instruction.Instruction` in program
        order.
    icache_config:
        The active I-cache / branch-predictor configuration.
    fetch_width:
        Maximum instructions fetched per front-end cycle.
    fetch_queue_capacity:
        Depth of the fetch queue (Table 5: 16 entries).
    decode_cycles:
        Front-end cycles between fetch and dispatch eligibility.
    use_b_partition:
        Whether the I-cache B partition is accessible.
    icache_miss_handler:
        Callback ``(block_address, now_ps) -> ready_ps`` used to service
        I-cache misses from the unified L2 across the domain boundary.
    """

    def __init__(
        self,
        trace: Iterator[Instruction],
        *,
        icache_config: ICacheConfig,
        physical_geometry: CacheGeometry | None = None,
        fetch_width: int = 8,
        fetch_queue_capacity: int = 16,
        decode_cycles: int = 2,
        use_b_partition: bool = True,
        icache_miss_handler: Callable[[int, Picoseconds], Picoseconds] | None = None,
    ) -> None:
        self._trace = trace
        self._pending: Instruction | None = None
        self._exhausted = False
        self.fetch_width = fetch_width
        self.decode_cycles = decode_cycles
        self.fetch_queue = FetchQueue(fetch_queue_capacity)
        self.stats = FrontEndStats()

        # The physical array is the maximum (resizable) organisation; the
        # active configuration selects how many ways form the A partition.
        # For non-resizable (synchronous) machines the physical array is the
        # configuration itself.
        self.icache_config = icache_config
        self.icache = AccountingCache(
            physical_geometry if physical_geometry is not None else icache_config.icache,
            a_ways=icache_config.ways,
            b_enabled=use_b_partition and icache_config.l1_latency[1] is not None,
            name="L1I",
        )
        self.predictor: HybridPredictor = build_predictor(icache_config.predictor)
        self.btb = BranchTargetBuffer()
        self._icache_miss_handler = icache_miss_handler

        self._stall_until: Picoseconds = 0
        self._waiting_branch: DynInst | None = None
        self._last_block: int | None = None

    # ------------------------------------------------------------------ API

    @property
    def trace_exhausted(self) -> bool:
        """True once the trace iterator has been fully consumed."""
        return self._exhausted and self._pending is None

    @property
    def waiting_for_branch(self) -> DynInst | None:
        """The unresolved mispredicted branch fetch is stalled on, if any."""
        return self._waiting_branch

    @property
    def stall_until(self) -> Picoseconds:
        """Time before which fetch is stalled (redirect or I-cache refill)."""
        return self._stall_until

    def apply_icache_config(self, config: ICacheConfig, *, use_b_partition: bool) -> None:
        """Repartition the I-cache for *config* (contents are preserved)."""
        self.icache_config = config
        self.icache.set_a_ways(config.ways)
        self.icache.set_b_enabled(use_b_partition and config.l1_latency[1] is not None)

    def resume_after_branch(self, branch: DynInst, redirect_time: Picoseconds) -> None:
        """Called by the processor when a mispredicted branch resolves."""
        if self._waiting_branch is branch:
            self._waiting_branch = None
            self._stall_until = max(self._stall_until, redirect_time)
            self._last_block = None

    def take_instruction(self) -> Instruction | None:
        """Consume and return the next trace instruction (used for warm-up)."""
        return self._next_instruction()

    def warm(self, instruction: Instruction) -> None:
        """Warm the I-cache and branch predictor without timing effects."""
        pc = instruction.pc
        block = pc // self.icache.geometry.block_bytes
        if block != self._last_block:
            self.icache.access(pc)
            self._last_block = block
        if instruction.is_branch:
            taken = instruction.taken
            self.predictor.predict_and_update(pc, taken)
            if taken:
                self.btb.update(pc, instruction.target or 0)

    def reset_warm_state(self) -> None:
        """Clear warmup bookkeeping and statistics before a measured run."""
        self._last_block = None
        self.icache.reset_interval()
        self.icache.stats.accesses = 0
        self.icache.stats.hits = 0
        self.icache.stats.misses = 0
        self.icache.stats.b_hits = 0
        self.icache.reset_access_profile()
        self.stats = FrontEndStats()
        self.predictor.stats.predictions = 0
        self.predictor.stats.mispredictions = 0

    # ------------------------------------------------------------ fetch step

    def _next_instruction(self) -> Instruction | None:
        if self._pending is not None:
            inst = self._pending
            self._pending = None
            return inst
        if self._exhausted:
            return None
        try:
            return next(self._trace)
        except StopIteration:
            self._exhausted = True
            return None

    def _push_back(self, instruction: Instruction) -> None:
        self._pending = instruction

    def fetch_cycle(self, now: Picoseconds, period_ps: Picoseconds) -> list[DynInst]:
        """Fetch up to ``fetch_width`` instructions at front-end edge *now*."""
        stats = self.stats
        if self._waiting_branch is not None:
            stats.branch_stall_cycles += 1
            return []
        if now < self._stall_until:
            stats.fetch_stall_cycles += 1
            return []

        fetched: list[DynInst] = []
        fetch_queue = self.fetch_queue
        icache = self.icache
        next_instruction = self._next_instruction
        block_bytes = icache.geometry.block_bytes
        decode_delay = self.decode_cycles * period_ps
        extra_decode_delay = 0
        for _ in range(self.fetch_width):
            if not fetch_queue.has_space:
                break
            instruction = next_instruction()
            if instruction is None:
                break

            pc = instruction.pc
            block = pc // block_bytes
            if block != self._last_block:
                outcome = icache.access(pc)
                stats.icache_accesses += 1
                self._last_block = block
                if outcome is AccessOutcome.HIT_B:
                    # The fetch pipeline keeps running; instructions from this
                    # block simply become available to dispatch B-latency
                    # cycles later.
                    stats.icache_b_hits += 1
                    extra_decode_delay = (self.icache_config.l1_latency[1] or 0) * period_ps
                if outcome is AccessOutcome.MISS:
                    stats.icache_misses += 1
                    if self._icache_miss_handler is not None:
                        ready = self._icache_miss_handler(pc, now)
                    else:
                        ready = now + 20 * period_ps
                    self._stall_until = max(ready, now + period_ps)
                    self._push_back(instruction)
                    break

            dyninst = DynInst(instruction=instruction)
            dyninst.fetch_time = now
            dyninst.dispatch_ready_time = now + decode_delay + extra_decode_delay
            fetch_queue.push(dyninst)
            fetched.append(dyninst)
            stats.fetched += 1

            if instruction.is_branch:
                stats.branches += 1
                taken = instruction.taken
                correct = self.predictor.predict_and_update(pc, taken)
                predicted_target = self.btb.lookup(pc)
                if taken:
                    self.btb.update(pc, instruction.target or 0)
                if not correct:
                    dyninst.mispredicted = True
                    stats.mispredictions += 1
                    self._waiting_branch = dyninst
                    break
                if taken:
                    if predicted_target is None:
                        # Correctly predicted direction but unknown target:
                        # one fetch bubble while the target is computed.
                        stats.btb_misses += 1
                        self._stall_until = now + period_ps
                    # Cannot fetch past a taken branch in the same cycle.
                    self._last_block = None
                    break
        return fetched
