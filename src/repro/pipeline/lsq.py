"""Load/store queue.

Memory operations reach the load/store domain after their address has been
generated in the integer domain.  The LSQ holds them until the data cache can
be accessed.  Loads may bypass earlier stores except when an earlier store to
the same double-word is still pending, in which case the load waits and then
receives the value by forwarding (one load/store-domain cycle).  This models
perfect memory disambiguation, which is the common SimpleScalar-style
idealisation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clocks.time import Picoseconds
from repro.pipeline.dyninst import DynInst

_DWORD_MASK = ~0x7


@dataclass(slots=True)
class LSQStats:
    """Aggregate load/store-queue statistics."""

    loads_forwarded: int = 0
    loads_performed: int = 0
    stores_performed: int = 0
    allocations: int = 0


class LoadStoreQueue:
    """Occupancy and ordering model of the load/store queue."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError("load/store queue capacity must be positive")
        self._capacity = capacity
        # Program-ordered list of memory operations currently occupying slots.
        self._entries: list[DynInst] = []
        self.stats = LSQStats()
        # Occupants whose cache access has not been issued yet.  Maintained
        # by allocate/release/squash here and decremented by the processor at
        # the point it marks an entry ``memory_issued``; lets the load/store
        # cycle (and horizon scheduling) skip edges with nothing to issue
        # without scanning the queue.
        self.unissued = 0

    # ------------------------------------------------------------------ API

    @property
    def capacity(self) -> int:
        """Maximum number of memory operations in flight."""
        return self._capacity

    @property
    def occupancy(self) -> int:
        """Memory operations currently holding slots."""
        return len(self._entries)

    @property
    def has_space(self) -> bool:
        """True when another memory operation can be allocated."""
        return len(self._entries) < self._capacity

    def allocate(self, inst: DynInst) -> None:
        """Reserve a slot at dispatch time (program order is preserved)."""
        if not self.has_space:
            raise RuntimeError("allocation into a full load/store queue")
        self._entries.append(inst)
        self.stats.allocations += 1
        self.unissued += 1

    def release(self, inst: DynInst) -> None:
        """Free the slot at commit time."""
        try:
            self._entries.remove(inst)
        except ValueError:
            return
        if not inst.memory_issued:
            self.unissued -= 1

    def pending_older_store(self, load: DynInst) -> DynInst | None:
        """Return an older, not-yet-performed store to the same double word."""
        load_dword = load.address & _DWORD_MASK
        for entry in self._entries:
            if entry.seq >= load.seq:
                break
            if not entry.is_store or entry.completed:
                continue
            if (entry.address & _DWORD_MASK) == load_dword:
                return entry
        return None

    def forwardable_store(self, load: DynInst, now: Picoseconds) -> DynInst | None:
        """Return an older, completed store to the same double word, if any."""
        load_dword = load.address & _DWORD_MASK
        match: DynInst | None = None
        for entry in self._entries:
            if entry.seq >= load.seq:
                break
            if not entry.is_store:
                continue
            if (entry.address & _DWORD_MASK) != load_dword:
                continue
            if entry.completed and (entry.completion_time or 0) <= now:
                match = entry
        return match

    def pending_entries(self) -> list[DynInst]:
        """The queue entries in program order (read-only view, no copy)."""
        return self._entries

    def occupants(self) -> tuple[DynInst, ...]:
        """Snapshot of all memory operations currently in the queue."""
        return tuple(self._entries)

    def squash(self, predicate) -> int:
        """Remove entries matching *predicate*; return how many were removed."""
        before = len(self._entries)
        self._entries = [inst for inst in self._entries if not predicate(inst)]
        self.unissued = sum(1 for inst in self._entries if not inst.memory_issued)
        return before - len(self._entries)

    def reset(self) -> None:
        """Empty the queue (used between runs)."""
        self._entries.clear()
        self.stats = LSQStats()
        self.unissued = 0
