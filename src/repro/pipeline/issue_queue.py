"""Resizable out-of-order issue queue.

The queue holds dispatched instructions until their source operands are ready
and a functional unit is available, then issues them oldest-first.  Capacity
is one of 16/32/48/64 entries and can be changed at run time by the queue
controller; shrinking never discards occupants — the new bound only applies
to subsequent dispatches, which models draining the tail of a real resizable
queue.
"""

from __future__ import annotations

from repro.clocks.time import Picoseconds
from repro.pipeline.dyninst import DynInst


class IssueQueue:
    """One domain's issue queue."""

    def __init__(self, capacity: int, *, name: str = "issue-queue") -> None:
        if capacity < 1:
            raise ValueError("issue queue capacity must be positive")
        self.name = name
        self._capacity = capacity
        self._entries: list[DynInst] = []
        # Instructions dispatched but not yet past the synchronisation
        # boundary into this domain, keyed by their arrival time.
        self._incoming: list[DynInst] = []
        self.total_issued = 0
        self.occupancy_samples = 0
        self.occupancy_accumulator = 0
        # Energy-accounting activity (observation-only): queue writes and the
        # register-file source reads those entries will perform at issue.
        self.total_dispatched = 0
        self.operand_reads = 0

    # ------------------------------------------------------------------ API

    @property
    def capacity(self) -> int:
        """Current configured capacity."""
        return self._capacity

    @property
    def occupancy(self) -> int:
        """Number of instructions currently holding queue slots."""
        return len(self._entries) + len(self._incoming)

    @property
    def has_space(self) -> bool:
        """True if a new instruction may be dispatched into the queue."""
        return self.occupancy < self._capacity

    def set_capacity(self, capacity: int) -> None:
        """Resize the queue; occupants above the new bound drain naturally."""
        if capacity < 1:
            raise ValueError("issue queue capacity must be positive")
        self._capacity = capacity

    def dispatch(self, inst: DynInst, arrival_time: Picoseconds) -> None:
        """Accept a dispatched instruction that arrives at *arrival_time*."""
        if not self.has_space:
            raise RuntimeError(f"{self.name}: dispatch into a full queue")
        inst.queue_arrival_time = arrival_time
        self._incoming.append(inst)
        self.total_dispatched += 1
        self.operand_reads += inst.source_count

    def admit_arrivals(self, now: Picoseconds) -> None:
        """Move instructions whose synchronised arrival time has passed."""
        if not self._incoming:
            return
        still_waiting: list[DynInst] = []
        for inst in self._incoming:
            if inst.queue_arrival_time is not None and inst.queue_arrival_time <= now:
                self._entries.append(inst)
            else:
                still_waiting.append(inst)
        self._incoming = still_waiting

    def pending_entries(self) -> list[DynInst]:
        """The admitted entries, in insertion order (read-only view).

        This is the internal list itself, exposed so the processor's wake-up
        loop can scan it without a per-cycle copy; callers must not mutate
        it.  Use :meth:`ready_entries` for the safe, filtering variant.
        """
        return self._entries

    def ready_entries(self, now: Picoseconds, operand_ready) -> list[DynInst]:
        """Return queue entries whose operands are ready, oldest first.

        ``operand_ready(inst, now)`` is supplied by the processor and applies
        cross-domain synchronisation to producer completion times.
        """
        ready = [inst for inst in self._entries if operand_ready(inst, now)]
        ready.sort(key=lambda inst: inst.seq)
        return ready

    def remove(self, inst: DynInst) -> None:
        """Remove an issued instruction from the queue."""
        self._entries.remove(inst)
        self.total_issued += 1

    def squash(self, predicate) -> int:
        """Drop every entry for which *predicate* holds; return the count."""
        before = self.occupancy
        self._entries = [inst for inst in self._entries if not predicate(inst)]
        self._incoming = [inst for inst in self._incoming if not predicate(inst)]
        return before - self.occupancy

    def sample_occupancy(self) -> None:
        """Record the current occupancy for average-occupancy statistics."""
        self.occupancy_samples += 1
        self.occupancy_accumulator += self.occupancy

    @property
    def average_occupancy(self) -> float:
        """Mean occupancy across all sampled cycles."""
        if not self.occupancy_samples:
            return 0.0
        return self.occupancy_accumulator / self.occupancy_samples

    def reset(self) -> None:
        """Empty the queue (used between runs)."""
        self._entries.clear()
        self._incoming.clear()
        self.total_issued = 0
        self.occupancy_samples = 0
        self.occupancy_accumulator = 0
        self.total_dispatched = 0
        self.operand_reads = 0
