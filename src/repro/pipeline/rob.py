"""Reorder buffer: in-order retirement of out-of-order execution."""

from __future__ import annotations

from collections import deque

from repro.pipeline.dyninst import DynInst


class ReorderBuffer:
    """A FIFO of in-flight instructions retired in program order."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("reorder buffer capacity must be positive")
        self._capacity = capacity
        self._entries: deque[DynInst] = deque()
        self.total_committed = 0
        self.total_dispatched = 0

    @property
    def capacity(self) -> int:
        """Maximum number of in-flight instructions."""
        return self._capacity

    @property
    def occupancy(self) -> int:
        """Number of instructions currently in flight."""
        return len(self._entries)

    @property
    def has_space(self) -> bool:
        """True if another instruction may be dispatched."""
        return len(self._entries) < self._capacity

    @property
    def head(self) -> DynInst | None:
        """Oldest in-flight instruction, or ``None`` when empty."""
        return self._entries[0] if self._entries else None

    def is_empty(self) -> bool:
        """True when no instructions are in flight."""
        return not self._entries

    def dispatch(self, inst: DynInst) -> None:
        """Append a newly dispatched instruction."""
        if not self.has_space:
            raise RuntimeError("dispatch into a full reorder buffer")
        self._entries.append(inst)
        self.total_dispatched += 1

    def commit_head(self) -> DynInst:
        """Retire and return the oldest instruction."""
        inst = self._entries.popleft()
        self.total_committed += 1
        return inst

    def reset(self) -> None:
        """Drop all in-flight state (used between runs)."""
        self._entries.clear()
