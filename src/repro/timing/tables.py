"""Calibrated per-configuration timing tables (Tables 1-3, Figures 2-4).

These tables are the authoritative frequencies and organisations consumed by
the simulator.  The frequencies are calibrated to reproduce the relationships
the paper reports:

* Figure 2 — the D-cache / L2 pair loses frequency as associativity grows and
  the adaptive organisation is ~5 % slower than a capacity-optimised one
  (except at the minimal configuration where they are identical by
  construction).
* Figure 3 — the I-cache / branch-predictor pair shows a ~31 % frequency drop
  from direct-mapped to 2-way in the adaptive organisation, and the optimal
  64 KB direct-mapped cache is ~27 % faster than the adaptive 64 KB 4-way.
* Figure 4 — issue-queue frequency drops sharply between 16 and 20 entries
  (two vs. three levels of selection logic) and only gently thereafter.

Latencies (in cycles at the configuration's own frequency) follow Table 5 of
the paper: L1 caches have a 2-cycle A partition and an 8/5/2-cycle B
partition depending on the A-partition width; the L2 has a 12-cycle A
partition and a 43/27/12-cycle B partition.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.timing.cacti import CacheGeometry

# ---------------------------------------------------------------------------
# Load / store domain: L1-D and L2 resized together by ways (Table 1, Fig. 2)
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class DCacheL2Config:
    """One jointly sized L1-D / L2 configuration.

    ``l1_latency`` and ``l2_latency`` are ``(a_cycles, b_cycles)`` pairs;
    ``b_cycles`` is ``None`` when the A partition spans the whole cache and
    there is no B partition.
    """

    name: str
    l1: CacheGeometry
    l2: CacheGeometry
    frequency_ghz: float
    l1_latency: tuple[int, int | None]
    l2_latency: tuple[int, int | None]

    @property
    def ways(self) -> int:
        """Associativity of the configuration (L1 and L2 share it)."""
        return self.l1.associativity


def _dl2(name, l1_kb, l2_kb, assoc, l1_banks, l2_banks, freq, l1_lat, l2_lat):
    return DCacheL2Config(
        name=name,
        l1=CacheGeometry(size_kb=l1_kb, associativity=assoc, sub_banks=l1_banks),
        l2=CacheGeometry(size_kb=l2_kb, associativity=assoc, sub_banks=l2_banks),
        frequency_ghz=freq,
        l1_latency=l1_lat,
        l2_latency=l2_lat,
    )


#: Adaptive (resizable) L1-D / L2 configurations: each additional way is an
#: identical copy of the minimal way (32 sub-banks per 32 KB L1 way, 8
#: sub-banks per 256 KB L2 way).  Index 0 is the base (smallest, fastest)
#: configuration.
ADAPTIVE_DCACHE_CONFIGS: tuple[DCacheL2Config, ...] = (
    _dl2("32k1W/256k1W", 32, 256, 1, 32, 8, 1.76, (2, 8), (12, 43)),
    _dl2("64k2W/512k2W", 64, 512, 2, 64, 16, 1.40, (2, 5), (12, 27)),
    _dl2("128k4W/1024k4W", 128, 1024, 4, 128, 32, 1.26, (2, 2), (12, 12)),
    _dl2("256k8W/2048k8W", 256, 2048, 8, 256, 64, 1.13, (2, None), (12, None)),
)

#: Capacity-optimised (non-resizable) L1-D / L2 configurations used by the
#: fully synchronous machine; sub-banking follows the "optimal" columns of
#: Table 1 (32/8/16/4 L1 sub-banks and 8/4/4/4 L2 sub-banks per way).
OPTIMAL_DCACHE_CONFIGS: tuple[DCacheL2Config, ...] = (
    _dl2("32k1W/256k1W", 32, 256, 1, 32, 8, 1.76, (2, None), (12, None)),
    _dl2("64k2W/512k2W", 64, 512, 2, 8, 8, 1.47, (2, None), (12, None)),
    _dl2("128k4W/1024k4W", 128, 1024, 4, 16, 16, 1.32, (2, None), (12, None)),
    _dl2("256k8W/2048k8W", 256, 2048, 8, 4, 32, 1.19, (2, None), (12, None)),
)


def adaptive_dcache_config(index_or_name: int | str) -> DCacheL2Config:
    """Look up an adaptive D-cache/L2 configuration by index or name."""
    return _lookup(ADAPTIVE_DCACHE_CONFIGS, index_or_name)


def optimal_dcache_config(index_or_name: int | str) -> DCacheL2Config:
    """Look up an optimal D-cache/L2 configuration by index or name."""
    return _lookup(OPTIMAL_DCACHE_CONFIGS, index_or_name)


# ---------------------------------------------------------------------------
# Front-end domain: I-cache + branch predictor (Tables 2-3, Fig. 3)
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class BranchPredictorGeometry:
    """Sizing of the hybrid (gshare + local + meta) branch predictor."""

    global_history_bits: int
    gshare_entries: int
    meta_entries: int
    local_history_bits: int
    local_bht_entries: int
    local_pht_entries: int


@dataclass(frozen=True, slots=True)
class ICacheConfig:
    """One jointly sized I-cache / branch-predictor configuration."""

    name: str
    icache: CacheGeometry
    predictor: BranchPredictorGeometry
    frequency_ghz: float
    l1_latency: tuple[int, int | None]

    @property
    def size_kb(self) -> int:
        """I-cache capacity in KB."""
        return self.icache.size_kb

    @property
    def ways(self) -> int:
        """I-cache associativity."""
        return self.icache.associativity


def _icache(name, size_kb, assoc, banks, hg, gshare, meta, hl, lbht, lpht, freq, lat):
    return ICacheConfig(
        name=name,
        icache=CacheGeometry(size_kb=size_kb, associativity=assoc, sub_banks=banks),
        predictor=BranchPredictorGeometry(
            global_history_bits=hg,
            gshare_entries=gshare,
            meta_entries=meta,
            local_history_bits=hl,
            local_bht_entries=lbht,
            local_pht_entries=lpht,
        ),
        frequency_ghz=freq,
        l1_latency=lat,
    )


#: Adaptive I-cache / branch-predictor configurations (Table 2).  Index 0 is
#: the base (16 KB direct-mapped) configuration.
ADAPTIVE_ICACHE_CONFIGS: tuple[ICacheConfig, ...] = (
    _icache("16k1W", 16, 1, 32, 14, 16384, 16384, 11, 2048, 1024, 1.74, (2, 8)),
    _icache("32k2W", 32, 2, 32, 15, 32768, 32768, 12, 4096, 1024, 1.20, (2, 5)),
    _icache("48k3W", 48, 3, 32, 15, 32768, 32768, 12, 4096, 1024, 1.16, (2, 2)),
    _icache("64k4W", 64, 4, 32, 16, 65536, 65536, 13, 8192, 1024, 1.10, (2, None)),
)

#: Capacity-optimised I-cache / branch-predictor configurations available to
#: the fully synchronous design-space sweep (Table 3).
OPTIMIZED_ICACHE_CONFIGS: tuple[ICacheConfig, ...] = (
    _icache("4k1W", 4, 1, 2, 12, 4096, 4096, 10, 1024, 512, 1.82, (2, None)),
    _icache("8k1W", 8, 1, 4, 13, 8192, 8192, 10, 1024, 1024, 1.78, (2, None)),
    _icache("16k1W", 16, 1, 16, 14, 16384, 16384, 11, 2048, 1024, 1.74, (2, None)),
    _icache("32k1W", 32, 1, 32, 15, 32768, 32768, 12, 4096, 1024, 1.58, (2, None)),
    _icache("64k1W", 64, 1, 32, 16, 65536, 65536, 13, 8192, 1024, 1.40, (2, None)),
    _icache("4k2W", 4, 2, 8, 12, 4096, 4096, 10, 1024, 512, 1.44, (2, None)),
    _icache("8k2W", 8, 2, 16, 13, 8192, 8192, 10, 1024, 1024, 1.41, (2, None)),
    _icache("16k2W", 16, 2, 32, 14, 16384, 16384, 11, 2048, 1024, 1.35, (2, None)),
    _icache("32k2W", 32, 2, 32, 15, 32768, 32768, 12, 4096, 1024, 1.28, (2, None)),
    _icache("64k2W", 64, 2, 32, 16, 65536, 65536, 13, 8192, 1024, 1.21, (2, None)),
    _icache("12k3W", 12, 3, 16, 13, 8192, 8192, 10, 1024, 1024, 1.37, (2, None)),
    _icache("16k4W", 16, 4, 16, 14, 16384, 16384, 11, 2048, 1024, 1.32, (2, None)),
    _icache("24k3W", 24, 3, 32, 14, 16384, 16384, 11, 2048, 1024, 1.30, (2, None)),
    _icache("32k4W", 32, 4, 2, 15, 32768, 32768, 12, 4096, 1024, 1.26, (2, None)),
    _icache("48k3W", 48, 3, 32, 15, 32768, 32768, 12, 4096, 1024, 1.24, (2, None)),
    _icache("64k4W", 64, 4, 16, 16, 65536, 65536, 13, 8192, 1024, 1.18, (2, None)),
)


def adaptive_icache_config(index_or_name: int | str) -> ICacheConfig:
    """Look up an adaptive I-cache configuration by index or name."""
    return _lookup(ADAPTIVE_ICACHE_CONFIGS, index_or_name)


def optimized_icache_config(index_or_name: int | str) -> ICacheConfig:
    """Look up an optimised I-cache configuration by index or name."""
    return _lookup(OPTIMIZED_ICACHE_CONFIGS, index_or_name)


# ---------------------------------------------------------------------------
# Integer / floating-point domains: issue queues (Fig. 4)
# ---------------------------------------------------------------------------

#: Issue-queue sizes the machine can be configured with.
ISSUE_QUEUE_SIZES: tuple[int, ...] = (16, 32, 48, 64)

#: Frequency of the integer / FP domains for each configurable queue size.
ISSUE_QUEUE_FREQUENCY_GHZ: dict[int, float] = {
    16: 1.58,
    32: 1.16,
    48: 1.11,
    64: 1.05,
}

#: Full frequency-vs-size curve (Figure 4), sizes 16..64 in steps of 4.  The
#: step between 16 and 20 entries reflects the second-to-third level jump in
#: the log4 selection tree.
ISSUE_QUEUE_FREQUENCY_CURVE: dict[int, float] = {
    16: 1.58,
    20: 1.21,
    24: 1.20,
    28: 1.18,
    32: 1.16,
    36: 1.15,
    40: 1.14,
    44: 1.12,
    48: 1.11,
    52: 1.09,
    56: 1.08,
    60: 1.06,
    64: 1.05,
}


def issue_queue_frequency(entries: int) -> float:
    """Domain frequency (GHz) for an issue queue of *entries* entries."""
    try:
        return ISSUE_QUEUE_FREQUENCY_GHZ[entries]
    except KeyError as exc:
        raise ValueError(
            f"unsupported issue queue size {entries}; "
            f"supported sizes are {ISSUE_QUEUE_SIZES}"
        ) from exc


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _lookup(table, index_or_name):
    if isinstance(index_or_name, int):
        return table[index_or_name]
    for entry in table:
        if entry.name == index_or_name:
            return entry
    names = ", ".join(entry.name for entry in table)
    raise KeyError(f"no configuration named {index_or_name!r}; known: {names}")
