"""Circuit-timing models for the resizable structures.

Two analytic models are provided:

* :mod:`repro.timing.cacti` — a simplified CACTI-style cache access-time
  model (decode, array, way select, routing, output driver).
* :mod:`repro.timing.palacharla` — a Palacharla-style issue-queue wakeup +
  selection delay model with a log4 selection tree.

The authoritative per-configuration frequencies used by the simulator live in
:mod:`repro.timing.tables`.  They are calibrated to the relationships the
paper publishes in Figures 2–4 (≈5 % adaptive-vs-optimal D-cache gap, ≈31 %
direct-mapped to 2-way I-cache drop, 27 % faster optimal 64 KB I-cache,
selection-logic step between 16- and 32-entry issue queues).  The analytic
models are used for validation, extrapolation and the ablation studies.
"""

from repro.timing.cacti import CacheGeometry, cache_access_time_ns
from repro.timing.palacharla import (
    issue_queue_delay_ns,
    issue_queue_frequency_ghz,
    selection_levels,
)
from repro.timing.tables import (
    ADAPTIVE_DCACHE_CONFIGS,
    ADAPTIVE_ICACHE_CONFIGS,
    ISSUE_QUEUE_SIZES,
    ISSUE_QUEUE_FREQUENCY_GHZ,
    ISSUE_QUEUE_FREQUENCY_CURVE,
    OPTIMAL_DCACHE_CONFIGS,
    OPTIMIZED_ICACHE_CONFIGS,
    DCacheL2Config,
    ICacheConfig,
    adaptive_dcache_config,
    adaptive_icache_config,
    optimal_dcache_config,
    optimized_icache_config,
    issue_queue_frequency,
)

__all__ = [
    "CacheGeometry",
    "cache_access_time_ns",
    "issue_queue_delay_ns",
    "issue_queue_frequency_ghz",
    "selection_levels",
    "DCacheL2Config",
    "ICacheConfig",
    "ADAPTIVE_DCACHE_CONFIGS",
    "OPTIMAL_DCACHE_CONFIGS",
    "ADAPTIVE_ICACHE_CONFIGS",
    "OPTIMIZED_ICACHE_CONFIGS",
    "ISSUE_QUEUE_SIZES",
    "ISSUE_QUEUE_FREQUENCY_GHZ",
    "ISSUE_QUEUE_FREQUENCY_CURVE",
    "adaptive_dcache_config",
    "optimal_dcache_config",
    "adaptive_icache_config",
    "optimized_icache_config",
    "issue_queue_frequency",
]
