"""Palacharla-style issue-queue timing model.

Following Palacharla, Jouppi and Smith (and the usage in the paper, Section
2.3), the issue-queue critical path is the sum of a *wakeup* delay (tag
broadcast across the queue entries) and a *selection* delay (a tree of
arbiters that picks ready instructions).  The selection tree has a fan-in of
four, so a 16-entry queue needs two levels of arbitration while 32-, 48- and
64-entry queues all need three.  Because the selection delay dominates, the
model exhibits the step the paper highlights in Figure 4: a large frequency
drop between 16 and 20 entries and only a gentle slope thereafter.
"""

from __future__ import annotations

import math

# Calibration constants (nanoseconds).
_WAKEUP_BASE_NS = 0.105
_WAKEUP_PER_ENTRY_NS = 0.0022
_SELECT_PER_LEVEL_NS = 0.195
_SELECT_ROOT_NS = 0.060
_LATCH_OVERHEAD_NS = 0.045


def selection_levels(entries: int) -> int:
    """Number of arbitration levels in the log4 selection tree."""
    if entries < 1:
        raise ValueError("issue queue must have at least one entry")
    return max(1, math.ceil(math.log(entries, 4)))


def wakeup_delay_ns(entries: int) -> float:
    """Tag-broadcast (wakeup) delay across *entries* queue entries."""
    if entries < 1:
        raise ValueError("issue queue must have at least one entry")
    return _WAKEUP_BASE_NS + _WAKEUP_PER_ENTRY_NS * entries


def selection_delay_ns(entries: int) -> float:
    """Selection-tree delay for a queue with *entries* entries."""
    return _SELECT_ROOT_NS + _SELECT_PER_LEVEL_NS * selection_levels(entries)


def issue_queue_delay_ns(entries: int) -> float:
    """Total wakeup + select critical-path delay, in nanoseconds."""
    return wakeup_delay_ns(entries) + selection_delay_ns(entries)


def issue_queue_frequency_ghz(entries: int) -> float:
    """Frequency supported by a queue of *entries* entries.

    Per Buyuktosunoglu et al. (cited by the paper), a resizable queue pays no
    access penalty over a fixed queue of the same size, so the same model
    serves both the adaptive and the fully synchronous machines.
    """
    cycle_ns = issue_queue_delay_ns(entries) + _LATCH_OVERHEAD_NS
    return 1.0 / cycle_ns
