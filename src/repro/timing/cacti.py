"""Simplified CACTI-style cache access-time model.

The paper derives per-configuration frequencies from CACTI 3.1.  This module
provides an analytic stand-in with the same structure: the access time is the
sum of a decoder term (logarithmic in the number of rows addressed within a
sub-bank), an array term (wordline + bitline, growing with sub-bank size), a
way-selection term (comparator + output multiplexor, growing with
associativity), a routing term (growing with the number of sub-banks that
must be reached), and a fixed sense-amp/output-driver term.

Constants below are calibration constants, chosen so the model reproduces the
qualitative relationships of Figures 2 and 3 of the paper: a direct-mapped
cache is substantially faster than a set-associative cache of the same
capacity, growing capacity at fixed associativity costs relatively little,
and the adaptive organisations (which replicate the minimal-configuration
sub-bank layout) are a few percent slower than capacity-optimised layouts.
The exact frequencies consumed by the simulator come from
:mod:`repro.timing.tables`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

# Calibration constants (nanoseconds unless noted).
_DECODE_BASE_NS = 0.055
_DECODE_PER_BIT_NS = 0.018
_ARRAY_BASE_NS = 0.095
_ARRAY_PER_SQRT_KB_NS = 0.034
_WAY_SELECT_BASE_NS = 0.085
_WAY_SELECT_PER_LEVEL_NS = 0.028
_WAY_FANOUT_NS = 0.006
_ROUTING_PER_SQRT_BANK_NS = 0.011
_OUTPUT_DRIVER_NS = 0.050
_BLOCK_BYTES = 64


@dataclass(frozen=True, slots=True)
class CacheGeometry:
    """Physical organisation of one cache configuration.

    Parameters
    ----------
    size_kb:
        Total capacity in kilobytes.
    associativity:
        Number of ways.
    sub_banks:
        Number of sub-banks the data array is divided into.  For the adaptive
        organisations of the paper this is the per-way sub-banking of the
        minimal configuration replicated across ways.
    block_bytes:
        Cache line size.
    """

    size_kb: int
    associativity: int
    sub_banks: int
    block_bytes: int = _BLOCK_BYTES

    def __post_init__(self) -> None:
        if self.size_kb <= 0:
            raise ValueError("size_kb must be positive")
        if self.associativity < 1:
            raise ValueError("associativity must be >= 1")
        if self.sub_banks < 1:
            raise ValueError("sub_banks must be >= 1")
        if self.block_bytes < 8:
            raise ValueError("block_bytes must be >= 8")

    @property
    def num_sets(self) -> int:
        """Number of sets."""
        sets = (self.size_kb * 1024) // (self.associativity * self.block_bytes)
        return max(1, sets)

    @property
    def kb_per_sub_bank(self) -> float:
        """Data capacity held in each sub-bank."""
        return self.size_kb / self.sub_banks


def _decoder_delay_ns(geometry: CacheGeometry) -> float:
    rows_per_bank = max(2.0, geometry.num_sets / geometry.sub_banks)
    return _DECODE_BASE_NS + _DECODE_PER_BIT_NS * math.log2(rows_per_bank)


def _array_delay_ns(geometry: CacheGeometry) -> float:
    return _ARRAY_BASE_NS + _ARRAY_PER_SQRT_KB_NS * math.sqrt(
        max(geometry.kb_per_sub_bank, 0.25)
    )


def _way_select_delay_ns(geometry: CacheGeometry) -> float:
    if geometry.associativity == 1:
        return 0.0
    levels = math.ceil(math.log2(geometry.associativity))
    return (
        _WAY_SELECT_BASE_NS
        + _WAY_SELECT_PER_LEVEL_NS * levels
        + _WAY_FANOUT_NS * (geometry.associativity - 1)
    )


def _routing_delay_ns(geometry: CacheGeometry) -> float:
    return _ROUTING_PER_SQRT_BANK_NS * math.sqrt(geometry.sub_banks)


def cache_access_time_ns(geometry: CacheGeometry) -> float:
    """Estimated access time of *geometry*, in nanoseconds."""
    return (
        _decoder_delay_ns(geometry)
        + _array_delay_ns(geometry)
        + _way_select_delay_ns(geometry)
        + _routing_delay_ns(geometry)
        + _OUTPUT_DRIVER_NS
    )


def cache_frequency_ghz(geometry: CacheGeometry, *, pipeline_stages: int = 2) -> float:
    """Frequency a domain could run at if *geometry* is on its critical path.

    The structure is pipelined over ``pipeline_stages`` stages (the L1 caches
    of the paper have a two-cycle latency), so the cycle time is the access
    time divided by the number of stages plus a latch overhead.
    """
    latch_overhead_ns = 0.045
    cycle_ns = cache_access_time_ns(geometry) / pipeline_stages + latch_overhead_ns
    return 1.0 / cycle_ns
