"""``python -m repro.engine`` — operate on persistent result-cache stores.

The maintenance surface of the distributed campaign fabric: worker
processes fill private cache directories (``matrix --shard K/N
--cache-dir DIR``), and this CLI folds and inspects them.

Examples::

    python -m repro.engine merge merged/ shard0/ shard1/
    python -m repro.engine inspect merged/
    python -m repro.engine inspect merged/ --json

``merge`` validates every source entry (JSON parse, fingerprint/file-name
consistency, ``FINGERPRINT_VERSION`` match, result-schema round-trip)
before copying it byte-for-byte into the destination store, refusing
cross-version mixes and conflicting duplicates; its summary ends with the
destination cache's hit/miss/merge counters.  ``inspect`` summarises a
store and probes every committed entry through a real :class:`ResultCache`
— the store's committed entries are never altered, though stale temp files
(orphaned ``.tmp-*`` older than an hour) are reaped as on any cache open.
See ``docs/OPERATIONS.md`` for the full shard / merge / resume workflows.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.engine.cache import CacheMergeError, CacheVersionError, ResultCache
from repro.engine.job import FINGERPRINT_VERSION
from repro.obs.logging import add_logging_arguments, configure_logging

__all__ = ["build_parser", "inspect_store", "main"]


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.engine`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.engine",
        description="Maintain persistent result-cache stores (merge, inspect).",
    )
    add_logging_arguments(parser)
    subparsers = parser.add_subparsers(dest="command", required=True)

    merge_parser = subparsers.add_parser(
        "merge", help="fold worker cache directories into one canonical store"
    )
    merge_parser.add_argument("destination", help="destination store directory")
    merge_parser.add_argument(
        "sources", nargs="+", help="source cache directories (one per worker)"
    )

    inspect_parser = subparsers.add_parser(
        "inspect", help="summarise and validate a result-cache store"
    )
    inspect_parser.add_argument("directory", help="cache directory to inspect")
    inspect_parser.add_argument("--json", action="store_true", dest="as_json")
    return parser


def inspect_store(directory: Path) -> dict:
    """Machine-readable store health summary (the ``inspect --json`` payload).

    Public so operators' scripts and ``python -m repro.obs report --store``
    can consume store health without screen-scraping the text table.
    """
    entries = 0
    versions: dict[str, int] = {}
    temp_files = 0
    for path in sorted(directory.glob("*.json")):
        entries += 1
        try:
            data = json.loads(path.read_text())
            version = data.get("version") if isinstance(data, dict) else None
            key = str(version) if version is not None else "unversioned"
        except ValueError:
            key = "invalid"
        versions[key] = versions.get(key, 0) + 1
    temp_files += sum(1 for _ in directory.glob(".tmp-*"))

    # Probe every committed entry through a real ResultCache: a valid entry
    # answers `get` with a disk hit, a corrupt one with a miss, and a
    # cross-version one with CacheVersionError — the same classification the
    # engine would apply at run time, now surfaced as hit/miss counters.
    cache = ResultCache(directory)
    version_mismatches = 0
    for fingerprint in cache.disk_fingerprints():
        try:
            cache.get(fingerprint)
        except CacheVersionError:
            version_mismatches += 1
    return {
        "directory": str(directory),
        "entries": entries,
        "versions": versions,
        "orphaned_temp_files": temp_files,
        "expected_version": FINGERPRINT_VERSION,
        "servable_entries": cache.stats.disk_hits,
        "unreadable_entries": cache.stats.misses,
        "version_mismatches": version_mismatches,
        "cache_stats_line": cache.stats.describe(),
        "cache_stats": {
            "hits": cache.stats.hits,
            "memory_hits": cache.stats.memory_hits,
            "disk_hits": cache.stats.disk_hits,
            "misses": cache.stats.misses,
            "stores": cache.stats.stores,
            "merged_entries": cache.stats.merged_entries,
            "merge_duplicates": cache.stats.merge_duplicates,
        },
    }


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    configure_logging(args)

    if args.command == "merge":
        destination = ResultCache(args.destination)
        total = 0
        try:
            for source in args.sources:
                report = destination.merge(source)
                total += report.merged
                print(report.describe())
        except (CacheMergeError, CacheVersionError, FileNotFoundError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        entries = len(destination.disk_fingerprints())
        print(f"merged {total} new entr(y/ies) into {args.destination} ({entries} total)")
        print(destination.stats.describe())
        return 0

    if args.command == "inspect":
        directory = Path(args.directory)
        if not directory.is_dir():
            print(f"error: {directory} is not a directory", file=sys.stderr)
            return 2
        summary = inspect_store(directory)
        if args.as_json:
            print(json.dumps(summary, indent=2, sort_keys=True))
            return 0
        print(f"store     : {summary['directory']}")
        print(f"entries   : {summary['entries']}")
        for version in sorted(summary["versions"]):
            marker = (
                ""
                if version == str(summary["expected_version"])
                else "  (incompatible with this build)"
            )
            print(f"  version {version}: {summary['versions'][version]}{marker}")
        print(f"temp files: {summary['orphaned_temp_files']}")
        print(f"this build: FINGERPRINT_VERSION {summary['expected_version']}")
        print(
            f"validation: {summary['servable_entries']} servable, "
            f"{summary['unreadable_entries']} unreadable, "
            f"{summary['version_mismatches']} version mismatch(es)"
        )
        print(summary["cache_stats_line"])
        return 0

    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
