"""The engine-owned job runner: one :class:`SimulationJob` in, one result out.

``run_job`` is a module-level function so executors can ship it to worker
processes by reference; it reproduces exactly the construction sequence the
sweep layer historically performed inline (spec build, controller defaults,
deterministic trace, processor run).
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.metrics import RunResult
from repro.core.processor import MCDProcessor
from repro.engine.job import SimulationJob, make_trace


def run_job(job: SimulationJob) -> RunResult:
    """Simulate *job* and return its :class:`RunResult`."""
    processor = MCDProcessor(
        job.build_spec(),
        control=job.resolved_control(),
        phase_adaptive=job.phase_adaptive,
        seed=job.seed,
        jitter_fraction=job.jitter_fraction,
        sync_window_fraction=job.resolved_sync_window_fraction(),
    )
    # The trace object itself (not an iterator) so the processor fetches from
    # its compiled flat-column form, built once per (profile, seed) per
    # process and shared by every job on the same cached trace.
    trace = make_trace(job.profile, seed=job.trace_seed)
    return processor.run(
        trace,
        max_instructions=job.resolved_window(),
        warmup_instructions=job.resolved_warmup(),
        workload_name=job.profile.name,
    )


def run_jobs(jobs: Iterable[SimulationJob]) -> list[RunResult]:
    """Simulate *jobs* in order (convenience wrapper for scripts)."""
    return [run_job(job) for job in jobs]
