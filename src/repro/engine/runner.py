"""The engine-owned job runner: one :class:`SimulationJob` in, one result out.

``run_job`` is a module-level function so executors can ship it to worker
processes by reference; it reproduces exactly the construction sequence the
sweep layer historically performed inline (spec build, controller defaults,
deterministic trace, processor run).

Tracing: when the job carries :class:`~repro.obs.options.TraceOptions` (or
the caller passes a ready-made recorder), the processor is handed a
:class:`~repro.obs.recorder.TraceRecorder` and the run's event stream is
written to the configured JSONL file.  This is strictly observation-only —
the result is bit-identical to the untraced run — and the trace options are
excluded from the job fingerprint, so the engine's result cache will serve
a traced job from an untraced twin's entry *without simulating* (and thus
without writing a trace).  Drivers that need the trace file call
``run_job`` directly, bypassing the cache.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.metrics import RunResult
from repro.core.processor import MCDProcessor
from repro.engine.job import SimulationJob, make_trace
from repro.obs.recorder import JsonlSink, TraceRecorder


def _recorder_for(job: SimulationJob) -> TraceRecorder:
    """Build the JSONL-backed recorder described by ``job.trace``."""
    options = job.trace
    assert options is not None
    sink = JsonlSink(
        options.path,
        meta={"job": job.describe(), "fingerprint": job.fingerprint()},
    )
    return TraceRecorder(
        [sink], event_types=options.events, sampling=options.sampling
    )


def run_job(job: SimulationJob, *, recorder: TraceRecorder | None = None) -> RunResult:
    """Simulate *job* and return its :class:`RunResult`.

    *recorder* overrides the job's own :class:`TraceOptions`; when it is
    ``None`` and the job carries trace options, a JSONL-backed recorder is
    built from them and closed (flushing the file) when the run finishes.
    """
    owns_recorder = False
    if recorder is None and job.trace is not None:
        recorder = _recorder_for(job)
        owns_recorder = True
    processor = MCDProcessor(
        job.build_spec(),
        control=job.resolved_control(),
        phase_adaptive=job.phase_adaptive,
        seed=job.seed,
        jitter_fraction=job.jitter_fraction,
        sync_window_fraction=job.resolved_sync_window_fraction(),
        recorder=recorder,
    )
    # The trace object itself (not an iterator) so the processor fetches from
    # its compiled flat-column form, built once per (profile, seed) per
    # process and shared by every job on the same cached trace.
    trace = make_trace(job.profile, seed=job.trace_seed)
    try:
        return processor.run(
            trace,
            max_instructions=job.resolved_window(),
            warmup_instructions=job.resolved_warmup(),
            workload_name=job.profile.name,
        )
    finally:
        if owns_recorder:
            assert recorder is not None
            recorder.close()


def run_jobs(jobs: Iterable[SimulationJob]) -> list[RunResult]:
    """Simulate *jobs* in order (convenience wrapper for scripts)."""
    return [run_job(job) for job in jobs]
