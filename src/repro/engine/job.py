"""Simulation jobs: the unit of work of the experiment engine.

A :class:`SimulationJob` bundles everything a worker needs to reproduce one
run — the machine (named by construction recipe rather than a resolved
:class:`~repro.core.configuration.MachineSpec`, so the payload stays tiny),
the workload profile, the trace seed and the control parameters — plus a
stable content fingerprint so identical runs are recognised across sweeps,
experiment drivers, processes and sessions.

This module also owns the run-parameter defaults (warm-up length, adaptation
interval scaling, trace construction) that the sweep layer historically
defined; :mod:`repro.analysis.sweep` re-exports them for compatibility.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from dataclasses import dataclass, fields, is_dataclass
from typing import Any, Mapping

from repro.core.configuration import (
    AdaptiveConfigIndices,
    MachineSpec,
    adaptive_mcd_spec,
    base_adaptive_spec,
    best_overall_synchronous_spec,
    synchronous_spec,
)
from repro.core.controllers.params import AdaptiveControlParams
from repro.core.synchronization import DEFAULT_WINDOW_FRACTION
from repro.obs.options import TraceOptions
from repro.workloads.characteristics import WorkloadProfile
from repro.workloads.trace_cache import cached_trace

#: Default trace seed so every machine sees the identical dynamic instruction
#: stream for a given workload.
DEFAULT_TRACE_SEED = 1234

#: Part of every fingerprint; bump whenever *simulator* semantics change
#: (processor, pipeline, cache or controller modelling) so persistent disk
#: caches from older code are invalidated.  Machine-configuration changes
#: (timing tables, spec fields) need no bump: the fingerprint hashes the
#: fully resolved :class:`MachineSpec`, so those invalidate automatically.
#:
#: Schema changes are *enforced* to bump: the ``schema-guard`` rule of
#: ``python -m repro.checks`` compares this module's introspected
#: :class:`SimulationJob` field/payload structure (plus the ``RunResult``
#: store schema) against the committed snapshot in
#: ``src/repro/checks/snapshots/fingerprint_schema.json`` and fails CI when
#: either changes under an unchanged version.  After a deliberate bump, run
#: ``python -m repro.checks --update-snapshots`` and commit the result.
FINGERPRINT_VERSION = 6  # v6: trace field on SimulationJob (observation-only,
# excluded from the payload — the bump records the schema change, not a
# semantic one; results are bit-identical with and without tracing)


def default_warmup(profile: WorkloadProfile, window: int | None = None) -> int:
    """A warm-up length long enough to populate the caches for *profile*.

    Scales with the hot data footprint (so the measured window starts from a
    warm hierarchy, standing in for the paper's fast-forward windows) and is
    bounded so sweeps stay tractable.
    """
    window = window if window is not None else profile.simulation_window
    memory_fraction = max(0.05, profile.load_fraction + profile.store_fraction)
    hot_lines = profile.hot_data_kb * 1024 / 64
    cold_lines = max(0.0, (profile.data_footprint_kb - profile.hot_data_kb) * 1024 / 64)
    hot_rate = memory_fraction * max(profile.hot_data_fraction, 0.05)
    cold_rate = memory_fraction * max(1.0 - profile.hot_data_fraction, 0.02)
    # Factor ~2 approximates coupon-collector coverage of randomly touched lines.
    needed = int(hot_lines / hot_rate * 1.3 + cold_lines / cold_rate * 2.0)
    code_lines = profile.code_footprint_kb * 1024 / 64
    needed = max(needed, int(code_lines * profile.block_size))
    return int(min(100_000, max(6_000, needed)))


def default_control_params(window: int) -> AdaptiveControlParams:
    """Control parameters scaled to a simulation window of *window* instructions.

    The adaptation interval is one sixth of the window (minimum 500
    instructions) so several adaptation decisions occur per run while each
    interval still sees enough accesses to average out transients, and the
    PLL lock time tracks the interval duration, preserving the paper's
    "interval comparable to lock time" relationship under window scaling.
    """
    interval = max(500, window // 6)
    return AdaptiveControlParams(interval_instructions=interval, pll_interval_scaled=True)


def make_trace(profile: WorkloadProfile, seed: int = DEFAULT_TRACE_SEED):
    """The deterministic trace for *profile* (memoised per process).

    Returns a :class:`~repro.workloads.trace_cache.ReplayableTrace`: the
    same consumption API as :class:`SyntheticTraceGenerator`, but sweeps
    that simulate one workload under many machine configurations generate
    the instruction stream once and replay it, instead of re-rolling the
    identical pseudo-random trace per job.  Set ``REPRO_TRACE_CACHE=0`` to
    fall back to uncached generation.
    """
    return cached_trace(profile, seed=seed)


class SpecKind(str, enum.Enum):
    """Recipe for rebuilding the machine spec inside a worker process."""

    SYNCHRONOUS = "synchronous"
    BEST_SYNCHRONOUS = "best_synchronous"
    ADAPTIVE = "adaptive"
    BASE_ADAPTIVE = "base_adaptive"


_ADAPTIVE_KINDS = frozenset({SpecKind.ADAPTIVE, SpecKind.BASE_ADAPTIVE})


def canonical_payload(value: Any) -> Any:
    """Recursively convert *value* to plain JSON-stable data.

    Dataclasses become field dicts (definition order), enums their values and
    mappings key-sorted dicts, so two structurally equal objects always yield
    byte-identical JSON.
    """
    if is_dataclass(value) and not isinstance(value, type):
        return {
            spec.name: canonical_payload(getattr(value, spec.name))
            for spec in fields(value)
        }
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, Mapping):
        converted = {
            str(key.value if isinstance(key, enum.Enum) else key): item
            for key, item in value.items()
        }
        return {key: canonical_payload(converted[key]) for key in sorted(converted)}
    if isinstance(value, (list, tuple)):
        return [canonical_payload(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot canonicalise {type(value).__name__} for fingerprinting")


@dataclass(frozen=True, slots=True)
class SimulationJob:
    """One fully specified simulation run.

    ``window``, ``warmup`` and ``control`` may be left ``None`` to inherit the
    profile-derived defaults; fingerprints are computed over the *resolved*
    values, so an explicit parameter equal to its default hits the same cache
    entry.

    ``spec_overrides`` patches individual :class:`MachineSpec` fields after
    the recipe is built (``dataclasses.replace`` semantics) — how the
    ablation drivers express hypothetical machines such as a shallower
    misprediction penalty or synchronisation-free domain crossings.

    ``jitter_fraction`` and ``sync_window_fraction`` are the paper's
    timing-uncertainty knobs: peak-to-peak clock jitter as a fraction of each
    domain period, and the unsafe capture window at domain crossings as a
    fraction of the faster clock's period (``None`` inherits the paper's
    0.3).  ``control_overrides`` patches individual
    :class:`AdaptiveControlParams` fields on top of the resolved controller
    parameters (``dataclasses.replace`` semantics) — how sensitivity sweeps
    vary the adaptation interval or hysteresis without re-deriving the
    window-scaled defaults; it therefore requires a phase-adaptive job.  All
    three knobs are part of the fingerprint, so jittered runs are cached and
    parallelised exactly like jitter-free ones.

    ``trace`` attaches observation-only telemetry recording
    (:class:`~repro.obs.options.TraceOptions`) to the run.  It is
    deliberately **excluded** from :meth:`payload` and therefore from the
    fingerprint: tracing never changes a result, so a traced job and its
    untraced twin share a cache entry (which also means a cache hit skips
    the simulation and writes no trace — drivers that must produce a trace
    file run the job directly through :func:`~repro.engine.runner.run_job`).
    """

    profile: WorkloadProfile
    spec_kind: SpecKind = SpecKind.ADAPTIVE
    indices: AdaptiveConfigIndices | None = None
    use_b_partitions: bool = False
    spec_overrides: Mapping[str, Any] | None = None
    window: int | None = None
    warmup: int | None = None
    trace_seed: int = DEFAULT_TRACE_SEED
    phase_adaptive: bool = False
    control: AdaptiveControlParams | None = None
    seed: int = 0
    jitter_fraction: float = 0.0
    sync_window_fraction: float | None = None
    control_overrides: Mapping[str, Any] | None = None
    trace: TraceOptions | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.spec_kind, SpecKind):
            object.__setattr__(self, "spec_kind", SpecKind(self.spec_kind))
        if self.phase_adaptive and self.spec_kind not in _ADAPTIVE_KINDS:
            raise ValueError("phase-adaptive runs require an adaptive machine spec")
        if self.window is not None and self.window <= 0:
            raise ValueError("window must be positive")
        if self.warmup is not None and self.warmup < 0:
            raise ValueError("warmup must be non-negative")
        if self.spec_overrides is not None:
            valid = {spec.name for spec in fields(MachineSpec)}
            unknown = set(self.spec_overrides) - valid
            if unknown:
                raise ValueError(f"unknown MachineSpec fields: {sorted(unknown)}")
            object.__setattr__(self, "spec_overrides", dict(self.spec_overrides))
        if not 0 <= self.jitter_fraction < 0.5:
            raise ValueError("jitter_fraction must be in [0, 0.5)")
        if self.sync_window_fraction is not None and not (
            0 <= self.sync_window_fraction < 1
        ):
            raise ValueError("sync_window_fraction must be in [0, 1)")
        if self.control_overrides is not None:
            if not self.phase_adaptive:
                raise ValueError("control_overrides require a phase-adaptive job")
            valid = {spec.name for spec in fields(AdaptiveControlParams)}
            unknown = set(self.control_overrides) - valid
            if unknown:
                raise ValueError(
                    f"unknown AdaptiveControlParams fields: {sorted(unknown)}"
                )
            object.__setattr__(self, "control_overrides", dict(self.control_overrides))
        if self.trace is not None and not isinstance(self.trace, TraceOptions):
            raise TypeError("trace must be a repro.obs.options.TraceOptions")

    # ------------------------------------------------------------ resolution

    def resolved_window(self) -> int:
        """Measured-instruction count after applying profile defaults."""
        return self.window if self.window is not None else self.profile.simulation_window

    def resolved_warmup(self) -> int:
        """Warm-up instruction count after applying profile defaults."""
        if self.warmup is not None:
            return self.warmup
        return default_warmup(self.profile, self.resolved_window())

    def resolved_control(self) -> AdaptiveControlParams | None:
        """Controller parameters actually passed to the processor."""
        control = self.control
        if self.phase_adaptive and control is None:
            control = default_control_params(self.resolved_window())
        if self.control_overrides:
            # control cannot be None here: overrides imply phase_adaptive,
            # which guarantees the window-scaled defaults above.
            control = dataclasses.replace(control, **self.control_overrides)
        return control

    def resolved_sync_window_fraction(self) -> float:
        """Synchronisation window after applying the paper default (0.3)."""
        if self.sync_window_fraction is not None:
            return self.sync_window_fraction
        return DEFAULT_WINDOW_FRACTION

    def build_spec(self) -> MachineSpec:
        """Rebuild the machine spec from the job's recipe."""
        if self.spec_kind is SpecKind.SYNCHRONOUS:
            spec = synchronous_spec(self.indices)
        elif self.spec_kind is SpecKind.BEST_SYNCHRONOUS:
            spec = best_overall_synchronous_spec()
        elif self.spec_kind is SpecKind.ADAPTIVE:
            spec = adaptive_mcd_spec(self.indices, use_b_partitions=self.use_b_partitions)
        else:
            spec = base_adaptive_spec(use_b_partitions=self.use_b_partitions)
        if self.spec_overrides:
            spec = dataclasses.replace(spec, **self.spec_overrides)
        return spec

    # ----------------------------------------------------------- fingerprint

    def payload(self) -> dict[str, Any]:
        """Canonical plain-data description of the job (resolved parameters).

        The machine entry is the fully built :class:`MachineSpec` (every
        field, overrides applied), not the construction recipe — so jobs
        that resolve to the same machine share a fingerprint no matter how
        they were expressed (``indices=None`` vs. the explicit base indices,
        ``BEST_SYNCHRONOUS`` vs. the same explicit synchronous point), and a
        timing-table recalibration changes the fingerprint and therefore
        invalidates any persistent cache entry automatically.
        """
        return {
            "version": FINGERPRINT_VERSION,
            "profile": canonical_payload(self.profile),
            "machine": canonical_payload(self.build_spec()),
            "run": {
                "window": self.resolved_window(),
                "warmup": self.resolved_warmup(),
                "trace_seed": self.trace_seed,
                "phase_adaptive": self.phase_adaptive,
                "control": canonical_payload(self.resolved_control()),
                "seed": self.seed,
                "jitter_fraction": self.jitter_fraction,
                "sync_window_fraction": self.resolved_sync_window_fraction(),
            },
        }

    def fingerprint(self) -> str:
        """Stable content hash identifying this run across processes."""
        encoded = json.dumps(self.payload(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(encoded.encode("utf-8")).hexdigest()

    def describe(self) -> str:
        """Short human-readable label for logs and progress output."""
        machine = self.spec_kind.value
        if self.indices is not None:
            machine = f"{machine}:{self.indices.describe()}"
        label = f"{self.profile.name}/{machine}/w{self.resolved_window()}"
        if self.jitter_fraction:
            label = f"{label}/j{self.jitter_fraction:g}"
        return label
