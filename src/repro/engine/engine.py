"""The experiment engine: jobs in, cached deterministic results out.

:class:`ExperimentEngine` composes an executor (placement) with a result
cache (memoisation) and performs the batch bookkeeping both need: duplicate
jobs inside one submission are simulated once, previously seen jobs are
served from the cache, and everything comes back in submission order.

Results are checkpointed *incrementally*: every finished simulation is
written to the result cache the moment its executor yields it, so a batch
killed part-way through keeps all completed work — the substrate of the
``matrix --resume`` workflow and the distributed campaign fabric
(:mod:`repro.engine.fabric`).

The engine can also be driven asynchronously by many concurrent clients:
:meth:`ExperimentEngine.submit` returns a :class:`JobHandle` immediately and
runs the simulation on a background executor, deduplicating in-flight
fingerprints so two clients submitting the same job share one simulation.
:meth:`~ExperimentEngine.poll` and :meth:`~ExperimentEngine.result` complete
the submit/poll/result serving surface.
"""

from __future__ import annotations

import copy
import itertools
import os
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.analysis.metrics import RunResult
from repro.engine.cache import ResultCache
from repro.engine.executors import Executor, JobRunner, SerialExecutor
from repro.engine.job import SimulationJob
from repro.engine.runner import run_job
from repro.obs.ledger import LedgerWriter, wallclock_timestamp
from repro.obs.logging import get_logger
from repro.obs.metrics import EngineMetrics

_LOGGER = get_logger("repro.engine")

#: Distinguishes engine instances within and across processes in ledger
#: records: metrics snapshots are cumulative per engine, so readers need to
#: know where one engine's history ends and a re-run's begins.
_ENGINE_SESSION_COUNTER = itertools.count()


@dataclass(slots=True)
class EngineStats:
    """Work accounting across an engine's lifetime."""

    jobs_submitted: int = 0
    simulations: int = 0
    cache_hits: int = 0
    batch_duplicates: int = 0

    @property
    def jobs_avoided(self) -> int:
        """Submitted jobs that never reached the executor."""
        return self.cache_hits + self.batch_duplicates


class JobHandle:
    """One asynchronous submission: poll it, then collect its result.

    Handles are created by :meth:`ExperimentEngine.submit`; several handles
    may share one underlying simulation (in-flight fingerprint dedup), and
    each :meth:`result` call returns a private deep copy so concurrent
    clients can never corrupt each other through a shared
    :class:`RunResult`.
    """

    __slots__ = ("job", "fingerprint", "source", "_future")

    def __init__(self, job: SimulationJob, fingerprint: str, source: str, future: Future) -> None:
        self.job = job
        self.fingerprint = fingerprint
        #: How the submission was satisfied: ``"cache"`` (already stored),
        #: ``"duplicate"`` (rides an in-flight simulation) or ``"simulated"``.
        self.source = source
        self._future = future

    def done(self) -> bool:
        """True once the result (or a failure) is available."""
        return self._future.done()

    def result(self, timeout: float | None = None) -> RunResult:
        """Block up to *timeout* seconds and return a copy of the result."""
        return copy.deepcopy(self._future.result(timeout))

    def exception(self, timeout: float | None = None) -> BaseException | None:
        """The simulation's exception, if it failed; blocks like ``result``."""
        return self._future.exception(timeout)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done() else "pending"
        return f"JobHandle({self.job.describe()}, {self.source}, {state})"


class ExperimentEngine:
    """Submit :class:`SimulationJob` batches; receive :class:`RunResult` lists."""

    def __init__(
        self,
        executor: Executor | None = None,
        cache: ResultCache | None = None,
        *,
        runner: JobRunner = run_job,
        async_workers: int | None = None,
    ) -> None:
        self.executor = executor if executor is not None else SerialExecutor()
        self.cache = cache
        self.runner = runner
        self.stats = EngineStats()
        #: Wall-clock/latency/utilization accounting across this engine's
        #: batches (observation-only; see :class:`repro.obs.metrics`).
        self.metrics = EngineMetrics()
        #: When set, ``run_all`` logs a progress line on the ``repro.engine``
        #: logger (INFO) at most once per this many seconds.
        self.heartbeat_seconds: float | None = None
        #: When set, every ``run_all`` batch and every asynchronous
        #: ``submit`` simulation appends an accounting record (see
        #: :mod:`repro.obs.ledger`).  Observability-only: nothing here flows
        #: into fingerprints, results or digests.
        self.ledger: LedgerWriter | None = None
        self._engine_session = f"{os.getpid()}.{next(_ENGINE_SESSION_COUNTER)}"
        # One lock guards the cache and stats across run_all and the async
        # serving surface; simulations themselves run outside it.
        self._lock = threading.RLock()
        self._inflight: dict[str, Future] = {}
        self._async_workers = async_workers
        self._async_pool: ThreadPoolExecutor | None = None

    # ------------------------------------------------------------- batch API

    def run(self, job: SimulationJob) -> RunResult:
        """Run one job (through the cache)."""
        return self.run_all([job])[0]

    def run_all(self, jobs: Sequence[SimulationJob]) -> list[RunResult]:
        """Run *jobs*, returning results in submission order.

        Identical jobs (by fingerprint) within the batch are simulated once;
        jobs whose fingerprint is already cached are not simulated at all.
        Fresh results are stored in the cache as each simulation completes,
        so interrupting a long batch preserves the finished prefix on disk.
        """
        jobs = list(jobs)
        results: list[RunResult | None] = [None] * len(jobs)
        pending: dict[str, list[int]] = {}
        served: list[str] = []
        duplicates = 0
        with self._lock:
            self.stats.jobs_submitted += len(jobs)
            for position, job in enumerate(jobs):
                fingerprint = job.fingerprint()
                if fingerprint in pending:
                    pending[fingerprint].append(position)
                    self.stats.batch_duplicates += 1
                    duplicates += 1
                    continue
                cached = self.cache.get(fingerprint) if self.cache is not None else None
                if cached is not None:
                    results[position] = cached
                    self.stats.cache_hits += 1
                    served.append(fingerprint)
                else:
                    pending[fingerprint] = [position]

        unique_jobs = [jobs[positions[0]] for positions in pending.values()]
        stream = self._stream(unique_jobs)
        # Metrics/heartbeat accounting is observation-only: per-result
        # inter-arrival time stands in for job wall-clock (exact under the
        # serial executor), arrival-since-batch-start is the queue latency.
        heartbeat = self.heartbeat_seconds
        batch_start = time.perf_counter()
        last_arrival = batch_start
        next_beat = batch_start + heartbeat if heartbeat is not None else None
        completed = 0
        job_seconds: dict[str, float] = {}
        for (fingerprint, positions), result in zip(pending.items(), stream):
            arrival = time.perf_counter()
            with self._lock:
                self.stats.simulations += 1
                self.metrics.record_job(arrival - last_arrival, arrival - batch_start)
                job_seconds[fingerprint] = arrival - last_arrival
                if self.cache is not None:
                    self.cache.put(fingerprint, result)
            last_arrival = arrival
            completed += 1
            if next_beat is not None and arrival >= next_beat:
                assert heartbeat is not None
                next_beat = arrival + heartbeat
                _LOGGER.info(
                    "progress: %d/%d simulation(s) done, %.1fs elapsed, last %s",
                    completed,
                    len(unique_jobs),
                    arrival - batch_start,
                    jobs[positions[0]].describe(),
                )
            results[positions[0]] = result
            for position in positions[1:]:
                results[position] = copy.deepcopy(result)
        if unique_jobs:
            with self._lock:
                self.metrics.record_batch(
                    time.perf_counter() - batch_start, self.executor.workers
                )
        if self.ledger is not None and jobs:
            with self._lock:
                self.ledger.append(
                    self._ledger_record(
                        "batch",
                        jobs=len(jobs),
                        duplicates=duplicates,
                        cached=sorted(served),
                        simulated=list(pending),
                        job_seconds={
                            fp: round(seconds, 6) for fp, seconds in job_seconds.items()
                        },
                        batch_seconds=round(time.perf_counter() - batch_start, 6),
                    )
                )
        return results  # type: ignore[return-value]

    def _ledger_record(self, kind: str, **payload: object) -> dict[str, object]:
        """One ledger record: the payload plus engine-wide accounting.

        Every record carries the executor mode, shard-independent engine
        session token, the cache's hit/miss/merge counters and the engine's
        cumulative :class:`EngineMetrics` snapshot — enough for
        ``python -m repro.obs ledger summarize`` to rebuild the campaign
        view with no process left alive.  Called with ``self._lock`` held.
        """
        cache_stats = None
        if self.cache is not None:
            stats = self.cache.stats
            cache_stats = {
                "memory_hits": stats.memory_hits,
                "disk_hits": stats.disk_hits,
                "misses": stats.misses,
                "stores": stats.stores,
                "merged_entries": stats.merged_entries,
                "merge_duplicates": stats.merge_duplicates,
            }
        return {
            "record": kind,
            "t": round(wallclock_timestamp(), 3),
            "engine_session": self._engine_session,
            "executor": type(self.executor).__name__.removesuffix("Executor").lower(),
            "workers": self.executor.workers,
            "cache": cache_stats,
            "metrics": self.metrics.to_dict(),
            **payload,
        }

    def _stream(self, jobs: Sequence[SimulationJob]) -> Iterator[RunResult]:
        """Results of *jobs* in order, as they finish."""
        imap = getattr(self.executor, "imap_jobs", None)
        if imap is not None:
            return iter(imap(jobs, self.runner))
        # Third-party executors only required to implement run_jobs: no
        # incremental checkpointing, but identical results.
        return iter(self.executor.run_jobs(jobs, self.runner))

    # ------------------------------------------------------------- async API

    def submit(self, job: SimulationJob) -> JobHandle:
        """Queue *job* on the background executor and return a handle.

        Returns immediately.  A fingerprint already in the cache yields an
        already-completed handle (``source="cache"``); one currently being
        simulated by another client's submission shares that simulation
        (``source="duplicate"``); anything else is scheduled on the
        background pool (``source="simulated"``).
        """
        fingerprint = job.fingerprint()
        with self._lock:
            self.stats.jobs_submitted += 1
            existing = self._inflight.get(fingerprint)
            if existing is not None:
                self.stats.batch_duplicates += 1
                return JobHandle(job, fingerprint, "duplicate", existing)
            cached = self.cache.get(fingerprint) if self.cache is not None else None
            if cached is not None:
                self.stats.cache_hits += 1
                future: Future = Future()
                future.set_result(cached)
                return JobHandle(job, fingerprint, "cache", future)
            future = Future()
            self._inflight[fingerprint] = future
            pool = self._ensure_async_pool()
        pool.submit(self._run_submitted, fingerprint, job, future)
        return JobHandle(job, fingerprint, "simulated", future)

    def poll(self, handle: JobHandle) -> bool:
        """True once *handle*'s simulation has completed (or failed)."""
        return handle.done()

    def result(self, handle: JobHandle, timeout: float | None = None) -> RunResult:
        """Block up to *timeout* seconds for *handle* and return its result."""
        return handle.result(timeout)

    def drain(self) -> None:
        """Block until every in-flight asynchronous submission has finished."""
        while True:
            with self._lock:
                futures = list(self._inflight.values())
            if not futures:
                return
            for future in futures:
                try:
                    future.result()
                except Exception:
                    # The submitting client observes the failure through its
                    # handle; drain only waits for quiescence.
                    pass

    def close(self) -> None:
        """Drain the async surface and shut the background pool down."""
        self.drain()
        with self._lock:
            pool, self._async_pool = self._async_pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def _ensure_async_pool(self) -> ThreadPoolExecutor:
        if self._async_pool is None:
            workers = self._async_workers
            if workers is None:
                workers = max(2, self.executor.workers)
            self._async_pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-engine"
            )
        return self._async_pool

    def _run_submitted(self, fingerprint: str, job: SimulationJob, future: Future) -> None:
        start = time.perf_counter()
        try:
            result = self.executor.run_jobs([job], self.runner)[0]
        except BaseException as error:  # noqa: BLE001 - delivered via the future
            with self._lock:
                self._inflight.pop(fingerprint, None)
            future.set_exception(error)
            return
        elapsed = time.perf_counter() - start
        with self._lock:
            self.stats.simulations += 1
            # An async submission is its own single-job batch: duration and
            # queue latency coincide.
            self.metrics.record_job(elapsed, elapsed)
            self.metrics.record_batch(elapsed, 1)
            if self.cache is not None:
                self.cache.put(fingerprint, result)
            self._inflight.pop(fingerprint, None)
            if self.ledger is not None:
                self.ledger.append(
                    self._ledger_record(
                        "submit",
                        jobs=1,
                        duplicates=0,
                        cached=[],
                        simulated=[fingerprint],
                        job_seconds={fingerprint: round(elapsed, 6)},
                        batch_seconds=round(elapsed, 6),
                    )
                )
        future.set_result(result)
