"""The experiment engine: jobs in, cached deterministic results out.

:class:`ExperimentEngine` composes an executor (placement) with a result
cache (memoisation) and performs the batch bookkeeping both need: duplicate
jobs inside one submission are simulated once, previously seen jobs are
served from the cache, and everything comes back in submission order.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Sequence

from repro.analysis.metrics import RunResult
from repro.engine.cache import ResultCache
from repro.engine.executors import Executor, JobRunner, SerialExecutor
from repro.engine.job import SimulationJob
from repro.engine.runner import run_job


@dataclass(slots=True)
class EngineStats:
    """Work accounting across an engine's lifetime."""

    jobs_submitted: int = 0
    simulations: int = 0
    cache_hits: int = 0
    batch_duplicates: int = 0

    @property
    def jobs_avoided(self) -> int:
        """Submitted jobs that never reached the executor."""
        return self.cache_hits + self.batch_duplicates


class ExperimentEngine:
    """Submit :class:`SimulationJob` batches; receive :class:`RunResult` lists."""

    def __init__(
        self,
        executor: Executor | None = None,
        cache: ResultCache | None = None,
        *,
        runner: JobRunner = run_job,
    ) -> None:
        self.executor = executor if executor is not None else SerialExecutor()
        self.cache = cache
        self.runner = runner
        self.stats = EngineStats()

    def run(self, job: SimulationJob) -> RunResult:
        """Run one job (through the cache)."""
        return self.run_all([job])[0]

    def run_all(self, jobs: Sequence[SimulationJob]) -> list[RunResult]:
        """Run *jobs*, returning results in submission order.

        Identical jobs (by fingerprint) within the batch are simulated once;
        jobs whose fingerprint is already cached are not simulated at all.
        """
        jobs = list(jobs)
        self.stats.jobs_submitted += len(jobs)
        results: list[RunResult | None] = [None] * len(jobs)
        pending: dict[str, list[int]] = {}
        for position, job in enumerate(jobs):
            fingerprint = job.fingerprint()
            if fingerprint in pending:
                pending[fingerprint].append(position)
                self.stats.batch_duplicates += 1
                continue
            cached = self.cache.get(fingerprint) if self.cache is not None else None
            if cached is not None:
                results[position] = cached
                self.stats.cache_hits += 1
            else:
                pending[fingerprint] = [position]

        unique_jobs = [jobs[positions[0]] for positions in pending.values()]
        fresh = self.executor.run_jobs(unique_jobs, self.runner)
        self.stats.simulations += len(unique_jobs)

        for (fingerprint, positions), result in zip(pending.items(), fresh):
            if self.cache is not None:
                self.cache.put(fingerprint, result)
            results[positions[0]] = result
            for position in positions[1:]:
                results[position] = copy.deepcopy(result)
        return results  # type: ignore[return-value]
