"""The distributed campaign fabric: shard a job list, run a shard, merge.

Large campaigns are embarrassingly parallel at the job level: every
:class:`~repro.engine.job.SimulationJob` is content-addressed by its
fingerprint and results are deterministic, so a campaign can be split
across worker processes (or hosts) that share nothing but the job list.
This module provides the three fabric primitives:

* **shard** — :func:`shard_jobs` / :func:`select_shard` deterministically
  partition a deduplicated job list across *N* shards, keyed purely on the
  job fingerprint, so every worker derives the identical partition from the
  identical campaign description with no coordination;
* **work** — :func:`run_shard` runs one shard through a worker's own
  :class:`~repro.engine.ExperimentEngine` against a private disk cache,
  returning a :class:`ShardReport`;
* **merge** — performed by :meth:`repro.engine.cache.ResultCache.merge`
  (CLI: ``python -m repro.engine merge``), which folds the workers' private
  caches into one canonical store.

A merged store is completed and reported by ``python -m repro.scenarios
matrix --resume --cache-dir MERGED``: the resume pass serves every sharded
job from the store and simulates only the small result-dependent tail (the
factored search's combined winners), which cannot be enumerated up front.
See ``docs/OPERATIONS.md`` for the operator workflows.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Sequence

from repro.engine.engine import ExperimentEngine
from repro.engine.job import SimulationJob

__all__ = [
    "ShardReport",
    "ShardSpec",
    "parse_shard",
    "run_shard",
    "select_shard",
    "shard_index",
    "shard_jobs",
]

_SHARD_PATTERN = re.compile(r"^(\d+)/(\d+)$")


@dataclass(frozen=True, slots=True)
class ShardSpec:
    """One worker's slice of a sharded campaign: shard *index* of *count*."""

    index: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("shard count must be at least 1")
        if not 0 <= self.index < self.count:
            raise ValueError(f"shard index {self.index} out of range for {self.count} shard(s)")

    def describe(self) -> str:
        """The ``K/N`` form accepted by :func:`parse_shard`."""
        return f"{self.index}/{self.count}"


def parse_shard(text: str) -> ShardSpec:
    """Parse a ``K/N`` shard argument (``0/2`` = first of two shards)."""
    match = _SHARD_PATTERN.match(text.strip())
    if match is None:
        raise ValueError(f"invalid shard {text!r}: expected K/N with 0 <= K < N, e.g. 0/2")
    return ShardSpec(index=int(match.group(1)), count=int(match.group(2)))


def shard_index(fingerprint: str, shard_count: int) -> int:
    """The shard owning *fingerprint* among *shard_count* shards.

    The key is the job fingerprint itself (a SHA-256 hex digest, already
    uniformly distributed), so the assignment is stable across processes,
    hosts and sessions: every worker computes the same partition from the
    same campaign description.
    """
    if shard_count < 1:
        raise ValueError("shard count must be at least 1")
    return int(fingerprint, 16) % shard_count


def shard_jobs(jobs: Sequence[SimulationJob], shard_count: int) -> list[list[SimulationJob]]:
    """Partition *jobs*, deduplicated by fingerprint, across *shard_count* shards.

    Duplicate fingerprints are dropped after their first occurrence (each
    shard must simulate a fingerprint at most once, and two shards must
    never both own one); within a shard, jobs keep their submission order.
    The union of all shards is exactly the deduplicated job list.
    """
    shards: list[list[SimulationJob]] = [[] for _ in range(shard_count)]
    seen: set[str] = set()
    for job in jobs:
        fingerprint = job.fingerprint()
        if fingerprint in seen:
            continue
        seen.add(fingerprint)
        shards[shard_index(fingerprint, shard_count)].append(job)
    return shards


def select_shard(jobs: Sequence[SimulationJob], shard: ShardSpec) -> list[SimulationJob]:
    """The jobs of *shard* out of the deduplicated *jobs* list."""
    return shard_jobs(jobs, shard.count)[shard.index]


@dataclass(slots=True)
class ShardReport:
    """Accounting for one worker's pass over its shard."""

    shard: ShardSpec
    jobs_planned: int
    jobs_unique: int
    jobs_in_shard: int
    simulations: int
    cache_hits: int
    #: The worker's run-ledger file (see :mod:`repro.obs.ledger`), when the
    #: engine was given one — the durable record an operator merges and
    #: queries after the worker process is gone.
    ledger_path: str | None = None

    def describe(self) -> str:
        """One summary line for worker logs."""
        line = (
            f"shard {self.shard.describe()}: {self.jobs_in_shard} of "
            f"{self.jobs_unique} unique job(s) ({self.jobs_planned} planned), "
            f"{self.simulations} simulation(s), {self.cache_hits} cache hit(s)"
        )
        if self.ledger_path is not None:
            line += f", ledger {self.ledger_path}"
        return line

    def to_dict(self) -> dict:
        """Plain-data form (for ``--json`` worker output)."""
        return {
            "shard_index": self.shard.index,
            "shard_count": self.shard.count,
            "jobs_planned": self.jobs_planned,
            "jobs_unique": self.jobs_unique,
            "jobs_in_shard": self.jobs_in_shard,
            "simulations": self.simulations,
            "cache_hits": self.cache_hits,
            "ledger_path": self.ledger_path,
        }


def run_shard(
    jobs: Sequence[SimulationJob], shard: ShardSpec, engine: ExperimentEngine
) -> ShardReport:
    """Run *shard*'s slice of *jobs* through *engine* and report the work.

    The engine's cache (typically a private disk directory — see
    ``docs/OPERATIONS.md``) receives every result incrementally, so a killed
    worker loses only its in-flight simulation; re-running the same shard
    against the same cache directory finishes the remainder.
    """
    jobs = list(jobs)
    unique: set[str] = set()
    for job in jobs:
        unique.add(job.fingerprint())
    selected = select_shard(jobs, shard)
    before_simulations = engine.stats.simulations
    before_hits = engine.stats.cache_hits
    engine.run_all(selected)
    ledger = engine.ledger
    return ShardReport(
        shard=shard,
        jobs_planned=len(jobs),
        jobs_unique=len(unique),
        jobs_in_shard=len(selected),
        simulations=engine.stats.simulations - before_simulations,
        cache_hits=engine.stats.cache_hits - before_hits,
        ledger_path=str(ledger.path) if ledger is not None else None,
    )
