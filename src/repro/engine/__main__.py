"""Module entry point for ``python -m repro.engine``.

Dispatches to :mod:`repro.engine.cli`, the maintenance CLI for persistent
result-cache stores (``merge`` worker caches into a canonical store,
``inspect`` a store's entry and version census).
"""

from repro.engine.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
