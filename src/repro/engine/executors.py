"""Pluggable job executors for the experiment engine.

Executors only order and place work; they never interpret it.  Both built-in
executors preserve input order and run the same module-level runner, so a
sweep produces bit-identical results whichever executor carries it (the
simulations themselves are deterministic).
"""

from __future__ import annotations

import math
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor as _ProcessPool
from typing import Callable, Iterator, Protocol, Sequence

from repro.analysis.metrics import RunResult
from repro.engine.job import SimulationJob

JobRunner = Callable[[SimulationJob], RunResult]


class Executor(Protocol):
    """Minimal interface the engine requires of an executor."""

    name: str

    @property
    def workers(self) -> int:
        """Degree of parallelism the executor provides."""
        ...

    def run_jobs(
        self, jobs: Sequence[SimulationJob], runner: JobRunner
    ) -> list[RunResult]:
        """Run *jobs* through *runner*, returning results in input order."""
        ...

    def imap_jobs(
        self, jobs: Sequence[SimulationJob], runner: JobRunner
    ) -> Iterator[RunResult]:
        """Run *jobs* through *runner*, yielding results in input order.

        Results become available as individual jobs finish, so the engine
        can persist each one to the result cache immediately — a killed
        batch keeps every completed simulation instead of losing the whole
        submission.
        """
        ...


class SerialExecutor:
    """Run every job in the calling process, one after another."""

    name = "serial"

    @property
    def workers(self) -> int:
        return 1

    def run_jobs(
        self, jobs: Sequence[SimulationJob], runner: JobRunner
    ) -> list[RunResult]:
        return list(self.imap_jobs(jobs, runner))

    def imap_jobs(
        self, jobs: Sequence[SimulationJob], runner: JobRunner
    ) -> Iterator[RunResult]:
        for job in jobs:
            yield runner(job)


def default_worker_count() -> int:
    """Worker count used when none is requested: one per available core."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # platforms without sched_getaffinity
        return max(1, os.cpu_count() or 1)


class ParallelExecutor:
    """Fan jobs out over a :class:`concurrent.futures.ProcessPoolExecutor`.

    Jobs are shipped in chunks (``chunk_size``, default ~4 chunks per worker
    per batch) to amortise pickling overhead.  Batches too small to benefit
    from extra processes fall back to in-process execution.
    """

    name = "parallel"

    def __init__(
        self,
        max_workers: int | None = None,
        *,
        chunk_size: int | None = None,
        start_method: str | None = None,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        self.max_workers = max_workers if max_workers is not None else default_worker_count()
        self.chunk_size = chunk_size
        self._start_method = start_method

    @property
    def workers(self) -> int:
        return self.max_workers

    def _context(self):
        if self._start_method is not None:
            return multiprocessing.get_context(self._start_method)
        methods = multiprocessing.get_all_start_methods()
        # Fork keeps warm-interpreter start-up cost out of the sweep; fall
        # back to the platform default where fork is unavailable.
        return multiprocessing.get_context("fork" if "fork" in methods else None)

    def _chunk_size(self, job_count: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        return max(1, math.ceil(job_count / (self.max_workers * 4)))

    def run_jobs(
        self, jobs: Sequence[SimulationJob], runner: JobRunner
    ) -> list[RunResult]:
        return list(self.imap_jobs(jobs, runner))

    def imap_jobs(
        self, jobs: Sequence[SimulationJob], runner: JobRunner
    ) -> Iterator[RunResult]:
        if self.max_workers == 1 or len(jobs) <= 1:
            yield from SerialExecutor().imap_jobs(jobs, runner)
            return
        workers = min(self.max_workers, len(jobs))
        with _ProcessPool(max_workers=workers, mp_context=self._context()) as pool:
            # pool.map yields completed results in input order as chunks
            # finish, so the consumer can checkpoint progressively.
            yield from pool.map(runner, jobs, chunksize=self._chunk_size(len(jobs)))
