"""Deterministic result cache keyed by job fingerprint.

The cache has two tiers: a process-local in-memory map (always consulted
first) and an optional on-disk directory of JSON files, one per fingerprint,
so repeated sweeps — including across interpreter sessions and experiment
drivers — never re-simulate an identical configuration.  Simulations are
deterministic functions of the job fingerprint, which is what makes caching
sound.

Disk entries are *versioned*: every file records the
:data:`~repro.engine.job.FINGERPRINT_VERSION` it was written under, and both
the load path and :meth:`ResultCache.merge` refuse entries from a different
version with an error naming both versions — a stale cache directory must
fail loudly rather than silently miss (or, worse, collide with) current
fingerprints.  The merge operation is what makes the distributed campaign
fabric work: worker processes fill private cache directories and
:meth:`ResultCache.merge` folds them into one canonical store, byte-for-byte
identical to the store a single process would have produced.

Stored results are returned as deep copies: :class:`RunResult` is mutable,
and callers must never be able to corrupt the cache (or each other) through
a shared instance.
"""

from __future__ import annotations

import copy
import json
import os
import tempfile
import time
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Iterator

from repro.analysis.metrics import RunResult
from repro.engine.job import FINGERPRINT_VERSION


class CacheVersionError(ValueError):
    """A cache entry was written under a different ``FINGERPRINT_VERSION``.

    Raised instead of silently mixing stores: entries from different
    fingerprint versions describe different simulator semantics, so folding
    them into one directory (or serving them to a newer engine) would let a
    stale result masquerade as a current one.
    """


class CacheMergeError(ValueError):
    """A merge source entry is invalid or conflicts with the destination."""


@dataclass(slots=True)
class CacheStats:
    """Hit/miss accounting for one :class:`ResultCache`."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    merged_entries: int = 0
    merge_duplicates: int = 0

    @property
    def hits(self) -> int:
        """Total lookups served without simulation."""
        return self.memory_hits + self.disk_hits

    def describe(self) -> str:
        """One summary line for CLI output."""
        line = (
            f"cache: {self.hits} hit(s) ({self.memory_hits} memory, "
            f"{self.disk_hits} disk), {self.misses} miss(es), "
            f"{self.stores} store(s)"
        )
        if self.merged_entries or self.merge_duplicates:
            line += (
                f", {self.merged_entries} merged entr(ies), "
                f"{self.merge_duplicates} merge duplicate(s)"
            )
        return line


@dataclass(slots=True)
class MergeReport:
    """Outcome of folding one source directory into a canonical store."""

    source: str
    examined: int = 0
    merged: int = 0
    duplicates: int = 0

    def describe(self) -> str:
        """One summary line for CLI output."""
        return (
            f"{self.source}: {self.merged} merged, "
            f"{self.duplicates} duplicate(s), {self.examined} examined"
        )


class ResultCache:
    """Two-tier (memory + optional disk) store of :class:`RunResult` objects."""

    #: Temp files older than this (seconds) are presumed orphaned by a killed
    #: writer and reaped when the cache is constructed.  The age guard keeps a
    #: fresh cache instance from deleting a live concurrent writer's file.
    STALE_TEMP_AGE_SECONDS = 3600.0

    def __init__(self, directory: str | os.PathLike | None = None) -> None:
        self._memory: dict[str, RunResult] = {}
        self._directory = Path(directory) if directory is not None else None
        if self._directory is not None:
            self._directory.mkdir(parents=True, exist_ok=True)
            self._sweep_stale_temp_files(self.STALE_TEMP_AGE_SECONDS)
        self.stats = CacheStats()

    @property
    def directory(self) -> Path | None:
        """On-disk location, or ``None`` for a memory-only cache."""
        return self._directory

    def __len__(self) -> int:
        return len(self._memory)

    def __contains__(self, fingerprint: str) -> bool:
        """True only for entries :meth:`get` would actually serve.

        Membership *validates* disk entries (parse + schema round-trip): a
        truncated or corrupt file must not answer ``in`` with True while
        ``get`` returns a miss.  A validated entry is promoted to the memory
        tier, so the subsequent ``get`` is a memory hit; the hit/miss stats
        count only :meth:`get` lookups.
        """
        if fingerprint in self._memory:
            return True
        return self._load_disk(fingerprint) is not None

    def disk_fingerprints(self) -> list[str]:
        """Sorted fingerprints of every committed disk entry (unvalidated)."""
        if self._directory is None:
            return []
        return sorted(path.stem for path in self._directory.glob("*.json"))

    def _path(self, fingerprint: str) -> Path | None:
        if self._directory is None:
            return None
        return self._directory / f"{fingerprint}.json"

    @staticmethod
    def _check_version(data: dict, source: Path) -> None:
        """Raise :class:`CacheVersionError` unless *data* matches this build.

        Entries written before cache payloads carried a version field (or by
        a build with a different ``FINGERPRINT_VERSION``) are rejected: the
        stored result may encode different simulator semantics than the
        fingerprint the current code would compute.
        """
        stored = data.get("version")
        if stored == FINGERPRINT_VERSION:
            return
        described = (
            "no recorded version (a pre-versioning store)"
            if stored is None
            else f"FINGERPRINT_VERSION {stored!r}"
        )
        raise CacheVersionError(
            f"cache entry {source} was written under {described}, but this "
            f"build is FINGERPRINT_VERSION {FINGERPRINT_VERSION}; refusing "
            f"to mix stores — regenerate the entry or delete the stale "
            f"cache directory"
        )

    def _load_disk(self, fingerprint: str) -> RunResult | None:
        """Parse the disk entry into the memory tier; ``None`` if invalid.

        A syntactically broken file (truncated write, not JSON, missing
        keys) is a miss — it simply re-simulates.  A *well-formed* entry
        recorded under a different ``FINGERPRINT_VERSION`` raises
        :class:`CacheVersionError` instead: that is a configuration error
        (pointing the engine at a stale store), not a transient artefact.
        """
        path = self._path(fingerprint)
        if path is None or not path.exists():
            return None
        try:
            data = json.loads(path.read_text())
        except ValueError:
            # A truncated or garbled cache file is a miss, not an error.
            return None
        if not isinstance(data, dict) or "result" not in data:
            return None
        self._check_version(data, path)
        try:
            result = RunResult.from_dict(data["result"])
        except (ValueError, KeyError, TypeError):
            return None
        self._memory[fingerprint] = result
        return result

    def get(self, fingerprint: str) -> RunResult | None:
        """Return a copy of the cached result for *fingerprint*, if any."""
        result = self._memory.get(fingerprint)
        if result is not None:
            self.stats.memory_hits += 1
            return copy.deepcopy(result)
        result = self._load_disk(fingerprint)
        if result is not None:
            self.stats.disk_hits += 1
            return copy.deepcopy(result)
        return self._miss()

    def _miss(self) -> None:
        self.stats.misses += 1
        return None

    @staticmethod
    def _canonical(result: RunResult) -> RunResult:
        """A deep copy with per-process observability fields reset.

        Fields in :attr:`RunResult.PROCESS_DEPENDENT_FIELDS` reflect how
        warm *this* process happened to be, not what the job computed;
        resetting them makes cached (and persisted) results canonical, so
        two stores covering the same fingerprints are byte-identical no
        matter how the work was partitioned.
        """
        stored = copy.deepcopy(result)
        defaults = {spec.name: spec.default for spec in fields(RunResult)}
        for name in RunResult.PROCESS_DEPENDENT_FIELDS:
            setattr(stored, name, defaults[name])
        return stored

    def put(self, fingerprint: str, result: RunResult) -> None:
        """Store *result* under *fingerprint* (memory, then disk if enabled).

        The stored copy is canonicalised (:meth:`_canonical`): per-process
        observability counters are reset so identical fingerprints always
        persist identical bytes.
        """
        stored = self._canonical(result)
        self._memory[fingerprint] = stored
        self.stats.stores += 1
        path = self._path(fingerprint)
        if path is None:
            return
        payload = {
            "fingerprint": fingerprint,
            "version": FINGERPRINT_VERSION,
            "result": stored.to_dict(),
        }
        self._write_payload(path, json.dumps(payload))

    def _write_payload(self, path: Path, text: str) -> None:
        # Write-then-rename keeps concurrent readers from seeing partial files.
        handle = tempfile.NamedTemporaryFile(
            "w", dir=self._directory, prefix=".tmp-", suffix=".json", delete=False
        )
        try:
            with handle:
                handle.write(text)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except FileNotFoundError:
                # A concurrent clear() in another cache instance may have
                # reaped the temp file already; don't mask the original error.
                pass
            raise

    # ------------------------------------------------------------------ merge

    def _validated_source_entries(self, source: Path) -> Iterator[tuple[Path, str]]:
        """Yield ``(path, text)`` for every valid entry under *source*.

        Every committed entry is fully validated — JSON parse, fingerprint
        consistent with its file name, matching ``FINGERPRINT_VERSION`` and a
        :class:`RunResult` schema round-trip — before anything is written to
        the destination, so a bad source refuses the merge instead of
        half-applying it.
        """
        for path in sorted(source.glob("*.json")):
            text = path.read_text()
            try:
                data = json.loads(text)
            except ValueError as error:
                raise CacheMergeError(
                    f"merge source entry {path} is not valid JSON ({error}); "
                    f"delete the file and re-run the worker that produced it"
                ) from error
            if not isinstance(data, dict) or "result" not in data:
                raise CacheMergeError(
                    f"merge source entry {path} has no result payload; "
                    f"delete the file and re-run the worker that produced it"
                )
            self._check_version(data, path)
            if data.get("fingerprint") != path.stem:
                raise CacheMergeError(
                    f"merge source entry {path} records fingerprint "
                    f"{data.get('fingerprint')!r}, which does not match its "
                    f"file name — the store is corrupt or hand-edited"
                )
            try:
                RunResult.from_dict(data["result"])
            except (ValueError, KeyError, TypeError) as error:
                raise CacheMergeError(
                    f"merge source entry {path} does not deserialise as a "
                    f"RunResult ({error}); delete the file and re-run the "
                    f"worker that produced it"
                ) from error
            yield path, text

    def merge(self, other: str | os.PathLike | "ResultCache") -> MergeReport:
        """Fold another on-disk store into this cache's directory.

        *other* is a cache directory (or a disk-backed :class:`ResultCache`).
        Every source entry is validated first — including the
        ``FINGERPRINT_VERSION`` check, so cross-version mixes are refused
        with :class:`CacheVersionError` — then copied byte-for-byte into this
        cache's directory via the same atomic write-then-rename as
        :meth:`put`.  Entries already present must be byte-identical (the
        simulations are deterministic); a differing duplicate raises
        :class:`CacheMergeError` rather than silently preferring one side.
        """
        if self._directory is None:
            raise ValueError("cannot merge into a memory-only cache")
        source = other.directory if isinstance(other, ResultCache) else Path(other)
        if source is None:
            raise ValueError("cannot merge from a memory-only cache")
        if not source.is_dir():
            raise FileNotFoundError(f"merge source {source} is not a directory")
        if source.resolve() == self._directory.resolve():
            raise ValueError(f"merge source {source} is the destination itself")

        report = MergeReport(source=str(source))
        for path, text in self._validated_source_entries(source):
            report.examined += 1
            destination = self._directory / path.name
            if destination.exists():
                if destination.read_text() == text:
                    report.duplicates += 1
                    continue
                raise CacheMergeError(
                    f"merge conflict on fingerprint {path.stem}: {path} and "
                    f"{destination} hold different bytes for the same "
                    f"fingerprint — the stores were produced by diverging "
                    f"code and must not be mixed"
                )
            self._write_payload(destination, text)
            report.merged += 1
        self.stats.merged_entries += report.merged
        self.stats.merge_duplicates += report.duplicates
        return report

    def _sweep_stale_temp_files(self, max_age_seconds: float | None = None) -> int:
        """Remove orphaned ``.tmp-*`` files left by writers killed mid-`put`.

        With *max_age_seconds* only files at least that old are reaped;
        ``None`` reaps them all.  Returns the number of files removed.
        """
        if self._directory is None:
            return 0
        # repro: allow(det-wallclock) — temp-reaper age guard: compares host-file mtimes against the host clock; nothing simulation-visible flows from it
        cutoff = None if max_age_seconds is None else time.time() - max_age_seconds
        removed = 0
        for path in sorted(self._directory.glob(".tmp-*")):
            try:
                if cutoff is not None and path.stat().st_mtime > cutoff:
                    continue
                path.unlink()
            except OSError:
                continue  # another process won the race; nothing to reap
            removed += 1
        return removed

    def clear(self) -> None:
        """Drop the in-memory tier and reap any orphaned temp files.

        Committed disk entries (``<fingerprint>.json``) are left in place.
        The temp reap here is unconditional (no age guard): call ``clear``
        between runs, not while another process is writing into the same
        directory — a concurrent ``put`` whose temp file is reaped fails
        with the interrupted write's error rather than corrupting anything.
        """
        self._memory.clear()
        self._sweep_stale_temp_files()
