"""Deterministic result cache keyed by job fingerprint.

The cache has two tiers: a process-local in-memory map (always consulted
first) and an optional on-disk directory of JSON files, one per fingerprint,
so repeated sweeps — including across interpreter sessions and experiment
drivers — never re-simulate an identical configuration.  Simulations are
deterministic functions of the job fingerprint, which is what makes caching
sound.

Stored results are returned as deep copies: :class:`RunResult` is mutable,
and callers must never be able to corrupt the cache (or each other) through
a shared instance.
"""

from __future__ import annotations

import copy
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.metrics import RunResult


@dataclass(slots=True)
class CacheStats:
    """Hit/miss accounting for one :class:`ResultCache`."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def hits(self) -> int:
        """Total lookups served without simulation."""
        return self.memory_hits + self.disk_hits


class ResultCache:
    """Two-tier (memory + optional disk) store of :class:`RunResult` objects."""

    def __init__(self, directory: str | os.PathLike | None = None) -> None:
        self._memory: dict[str, RunResult] = {}
        self._directory = Path(directory) if directory is not None else None
        if self._directory is not None:
            self._directory.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()

    @property
    def directory(self) -> Path | None:
        """On-disk location, or ``None`` for a memory-only cache."""
        return self._directory

    def __len__(self) -> int:
        return len(self._memory)

    def __contains__(self, fingerprint: str) -> bool:
        if fingerprint in self._memory:
            return True
        path = self._path(fingerprint)
        return path is not None and path.exists()

    def _path(self, fingerprint: str) -> Path | None:
        if self._directory is None:
            return None
        return self._directory / f"{fingerprint}.json"

    def get(self, fingerprint: str) -> RunResult | None:
        """Return a copy of the cached result for *fingerprint*, if any."""
        result = self._memory.get(fingerprint)
        if result is not None:
            self.stats.memory_hits += 1
            return copy.deepcopy(result)
        path = self._path(fingerprint)
        if path is not None and path.exists():
            try:
                data = json.loads(path.read_text())
                result = RunResult.from_dict(data["result"])
            except (ValueError, KeyError, TypeError):
                # A truncated or stale cache file is a miss, not an error.
                return self._miss()
            self._memory[fingerprint] = result
            self.stats.disk_hits += 1
            return copy.deepcopy(result)
        return self._miss()

    def _miss(self) -> None:
        self.stats.misses += 1
        return None

    def put(self, fingerprint: str, result: RunResult) -> None:
        """Store *result* under *fingerprint* (memory, then disk if enabled)."""
        self._memory[fingerprint] = copy.deepcopy(result)
        self.stats.stores += 1
        path = self._path(fingerprint)
        if path is None:
            return
        payload = {"fingerprint": fingerprint, "result": result.to_dict()}
        # Write-then-rename keeps concurrent readers from seeing partial files.
        handle = tempfile.NamedTemporaryFile(
            "w", dir=self._directory, prefix=".tmp-", suffix=".json", delete=False
        )
        try:
            with handle:
                json.dump(payload, handle)
            os.replace(handle.name, path)
        except BaseException:
            os.unlink(handle.name)
            raise

    def clear(self) -> None:
        """Drop the in-memory tier (disk files are left in place)."""
        self._memory.clear()
