"""Deterministic result cache keyed by job fingerprint.

The cache has two tiers: a process-local in-memory map (always consulted
first) and an optional on-disk directory of JSON files, one per fingerprint,
so repeated sweeps — including across interpreter sessions and experiment
drivers — never re-simulate an identical configuration.  Simulations are
deterministic functions of the job fingerprint, which is what makes caching
sound.

Stored results are returned as deep copies: :class:`RunResult` is mutable,
and callers must never be able to corrupt the cache (or each other) through
a shared instance.
"""

from __future__ import annotations

import copy
import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.metrics import RunResult


@dataclass(slots=True)
class CacheStats:
    """Hit/miss accounting for one :class:`ResultCache`."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def hits(self) -> int:
        """Total lookups served without simulation."""
        return self.memory_hits + self.disk_hits


class ResultCache:
    """Two-tier (memory + optional disk) store of :class:`RunResult` objects."""

    #: Temp files older than this (seconds) are presumed orphaned by a killed
    #: writer and reaped when the cache is constructed.  The age guard keeps a
    #: fresh cache instance from deleting a live concurrent writer's file.
    STALE_TEMP_AGE_SECONDS = 3600.0

    def __init__(self, directory: str | os.PathLike | None = None) -> None:
        self._memory: dict[str, RunResult] = {}
        self._directory = Path(directory) if directory is not None else None
        if self._directory is not None:
            self._directory.mkdir(parents=True, exist_ok=True)
            self._sweep_stale_temp_files(self.STALE_TEMP_AGE_SECONDS)
        self.stats = CacheStats()

    @property
    def directory(self) -> Path | None:
        """On-disk location, or ``None`` for a memory-only cache."""
        return self._directory

    def __len__(self) -> int:
        return len(self._memory)

    def __contains__(self, fingerprint: str) -> bool:
        """True only for entries :meth:`get` would actually serve.

        Membership *validates* disk entries (parse + schema round-trip): a
        truncated or corrupt file must not answer ``in`` with True while
        ``get`` returns a miss.  A validated entry is promoted to the memory
        tier, so the subsequent ``get`` is a memory hit; the hit/miss stats
        count only :meth:`get` lookups.
        """
        if fingerprint in self._memory:
            return True
        return self._load_disk(fingerprint) is not None

    def _path(self, fingerprint: str) -> Path | None:
        if self._directory is None:
            return None
        return self._directory / f"{fingerprint}.json"

    def _load_disk(self, fingerprint: str) -> RunResult | None:
        """Parse the disk entry into the memory tier; ``None`` if invalid."""
        path = self._path(fingerprint)
        if path is None or not path.exists():
            return None
        try:
            data = json.loads(path.read_text())
            result = RunResult.from_dict(data["result"])
        except (ValueError, KeyError, TypeError):
            # A truncated or stale cache file is a miss, not an error.
            return None
        self._memory[fingerprint] = result
        return result

    def get(self, fingerprint: str) -> RunResult | None:
        """Return a copy of the cached result for *fingerprint*, if any."""
        result = self._memory.get(fingerprint)
        if result is not None:
            self.stats.memory_hits += 1
            return copy.deepcopy(result)
        result = self._load_disk(fingerprint)
        if result is not None:
            self.stats.disk_hits += 1
            return copy.deepcopy(result)
        return self._miss()

    def _miss(self) -> None:
        self.stats.misses += 1
        return None

    def put(self, fingerprint: str, result: RunResult) -> None:
        """Store *result* under *fingerprint* (memory, then disk if enabled)."""
        self._memory[fingerprint] = copy.deepcopy(result)
        self.stats.stores += 1
        path = self._path(fingerprint)
        if path is None:
            return
        payload = {"fingerprint": fingerprint, "result": result.to_dict()}
        # Write-then-rename keeps concurrent readers from seeing partial files.
        handle = tempfile.NamedTemporaryFile(
            "w", dir=self._directory, prefix=".tmp-", suffix=".json", delete=False
        )
        try:
            with handle:
                json.dump(payload, handle)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except FileNotFoundError:
                # A concurrent clear() in another cache instance may have
                # reaped the temp file already; don't mask the original error.
                pass
            raise

    def _sweep_stale_temp_files(self, max_age_seconds: float | None = None) -> int:
        """Remove orphaned ``.tmp-*`` files left by writers killed mid-`put`.

        With *max_age_seconds* only files at least that old are reaped;
        ``None`` reaps them all.  Returns the number of files removed.
        """
        if self._directory is None:
            return 0
        cutoff = None if max_age_seconds is None else time.time() - max_age_seconds
        removed = 0
        for path in self._directory.glob(".tmp-*"):
            try:
                if cutoff is not None and path.stat().st_mtime > cutoff:
                    continue
                path.unlink()
            except OSError:
                continue  # another process won the race; nothing to reap
            removed += 1
        return removed

    def clear(self) -> None:
        """Drop the in-memory tier and reap any orphaned temp files.

        Committed disk entries (``<fingerprint>.json``) are left in place.
        The temp reap here is unconditional (no age guard): call ``clear``
        between runs, not while another process is writing into the same
        directory — a concurrent ``put`` whose temp file is reaped fails
        with the interrupted write's error rather than corrupting anything.
        """
        self._memory.clear()
        self._sweep_stale_temp_files()
