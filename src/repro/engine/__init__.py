"""Parallel experiment engine: jobs, executors and the result cache.

The engine decouples *what* to simulate (:class:`SimulationJob`) from *how*
(:class:`SerialExecutor` / :class:`ParallelExecutor`) and *whether it already
ran* (:class:`ResultCache`).  The sweep layer submits jobs through an
:class:`ExperimentEngine` instead of constructing processors inline, which
makes every experiment driver batchable, parallelisable and memoised.

A process-wide default engine backs the convenience ``engine=None`` paths in
:mod:`repro.analysis.sweep`.  It is serial with an in-memory cache unless
overridden programmatically (:func:`set_default_engine`,
:func:`configure_default_engine`) or via environment variables:

``REPRO_ENGINE_WORKERS``
    Worker-process count for the default engine (``0``/``1`` = serial,
    ``auto`` = one per available core).
``REPRO_ENGINE_CACHE_DIR``
    Directory for a persistent on-disk result cache.
``REPRO_ENGINE_CACHE``
    Set to ``0`` to disable result caching entirely.
"""

from __future__ import annotations

import os

from repro.engine.cache import (
    CacheMergeError,
    CacheStats,
    CacheVersionError,
    MergeReport,
    ResultCache,
)
from repro.engine.engine import EngineStats, ExperimentEngine, JobHandle
from repro.engine.executors import (
    Executor,
    ParallelExecutor,
    SerialExecutor,
    default_worker_count,
)
from repro.engine.fabric import (
    ShardReport,
    ShardSpec,
    parse_shard,
    run_shard,
    select_shard,
    shard_index,
    shard_jobs,
)
from repro.engine.job import (
    DEFAULT_TRACE_SEED,
    FINGERPRINT_VERSION,
    SimulationJob,
    SpecKind,
    canonical_payload,
    default_control_params,
    default_warmup,
    make_trace,
)
from repro.engine.runner import run_job, run_jobs
from repro.obs.metrics import EngineMetrics
from repro.obs.options import TraceOptions

__all__ = [
    "CacheMergeError",
    "CacheStats",
    "CacheVersionError",
    "DEFAULT_TRACE_SEED",
    "EngineMetrics",
    "EngineStats",
    "Executor",
    "ExperimentEngine",
    "FINGERPRINT_VERSION",
    "JobHandle",
    "MergeReport",
    "ParallelExecutor",
    "ResultCache",
    "SerialExecutor",
    "ShardReport",
    "ShardSpec",
    "SimulationJob",
    "SpecKind",
    "TraceOptions",
    "canonical_payload",
    "configure_default_engine",
    "default_control_params",
    "default_engine",
    "default_warmup",
    "default_worker_count",
    "make_engine",
    "make_trace",
    "parse_shard",
    "run_job",
    "run_jobs",
    "run_shard",
    "select_shard",
    "set_default_engine",
    "shard_index",
    "shard_jobs",
]

_default_engine: ExperimentEngine | None = None


def make_engine(
    *,
    workers: int | str | None = None,
    cache_dir: str | os.PathLike | None = None,
    use_cache: bool = True,
) -> ExperimentEngine:
    """Build an engine from simple knobs (the CLI/benchmark entry point).

    ``workers`` accepts an int, ``"auto"`` (one worker per available core) or
    ``None``/``0``/``1`` for serial execution.
    """
    if workers == "auto":
        workers = default_worker_count()
    workers = int(workers) if workers is not None else 1
    executor = ParallelExecutor(max_workers=workers) if workers > 1 else SerialExecutor()
    cache = ResultCache(cache_dir) if use_cache else None
    return ExperimentEngine(executor, cache)


def _engine_from_env() -> ExperimentEngine:
    workers: int | str | None = os.environ.get("REPRO_ENGINE_WORKERS") or None
    cache_dir = os.environ.get("REPRO_ENGINE_CACHE_DIR") or None
    use_cache = os.environ.get("REPRO_ENGINE_CACHE", "1") != "0"
    return make_engine(workers=workers, cache_dir=cache_dir, use_cache=use_cache)


def default_engine() -> ExperimentEngine:
    """The process-wide engine used when callers do not pass one."""
    global _default_engine
    if _default_engine is None:
        _default_engine = _engine_from_env()
    return _default_engine


def set_default_engine(engine: ExperimentEngine | None) -> ExperimentEngine | None:
    """Replace the process-wide default engine; returns the previous one."""
    global _default_engine
    previous = _default_engine
    _default_engine = engine
    return previous


def configure_default_engine(
    *,
    workers: int | str | None = None,
    cache_dir: str | os.PathLike | None = None,
    use_cache: bool = True,
) -> ExperimentEngine:
    """Build an engine from knobs and install it as the process default."""
    engine = make_engine(workers=workers, cache_dir=cache_dir, use_cache=use_cache)
    set_default_engine(engine)
    return engine
