"""The campaign driver: scenario set × machine styles through the engine.

A campaign expands every scenario into the paper's three machines — the
best-overall **synchronous** baseline, the searched **Program-Adaptive** MCD
machine and the controller-driven **Phase-Adaptive** MCD machine — as
:class:`~repro.engine.SimulationJob` batches, reusing the engine-batched
Figure 6 driver (:func:`repro.analysis.sweep.compare_workloads`) so the whole
matrix is submitted at once: a parallel executor sees every job, duplicates
are simulated once and a persistent result cache turns a re-run into pure
cache hits.

On top of the speedup and energy columns every comparison already carries,
campaign rows add the *controller-behaviour* columns that make the
adversarial families legible: true reconfiguration counts per structure
(configuration records that merely confirm the current choice are not
counted) and the synchronisation penalties the phase-adaptive run paid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.analysis.metrics import RunResult
from repro.analysis.reporting import format_table
from repro.analysis.sweep import WorkloadComparison, compare_workloads, comparison_jobs
from repro.core.configuration import AdaptiveConfigIndices
from repro.core.controllers.params import AdaptiveControlParams
from repro.engine import (
    DEFAULT_TRACE_SEED,
    ExperimentEngine,
    SimulationJob,
    default_engine,
)
from repro.scenarios.spec import ScenarioSpec

__all__ = [
    "MACHINE_STYLES",
    "CampaignResult",
    "CampaignRow",
    "campaign_jobs",
    "count_reconfigurations",
    "run_campaign",
]

#: The three machine styles every scenario is evaluated under.
MACHINE_STYLES = ("synchronous", "program_adaptive", "phase_adaptive")


def _initial_configuration_index() -> dict[str, int]:
    """Configuration every phase-adaptive structure starts in.

    The phase-adaptive machine boots in the base adaptive configuration —
    ``AdaptiveConfigIndices()`` — so the starting point is derived from those
    defaults rather than restated here (queue records carry the new queue
    *size* as their index).
    """
    base = AdaptiveConfigIndices()
    return {
        "dcache": base.dcache_index,
        "icache": base.icache_index,
        "int-queue": base.int_queue_size,
        "fp-queue": base.fp_queue_size,
    }


def count_reconfigurations(result: RunResult) -> dict[str, int]:
    """Controller-commanded configuration transitions per structure.

    The processor records a configuration decision for the cache structures
    every interval, *including* decisions that keep the current
    configuration; only transitions — a record whose configuration index
    differs from the structure's previous (or initial, base) configuration —
    are counted.  Almost all of these are actual (PLL-relock costing)
    reconfigurations; the one exception is a change commanded while the
    domain is still locking a previous change, which the processor records
    without applying — indistinguishable in the record stream, so the count
    is strictly the controller's commanded transitions (an upper bound on
    relocks paid).
    """
    counts: dict[str, int] = {}
    last_index = _initial_configuration_index()
    for change in result.configuration_changes:
        previous = last_index.get(change.structure)
        if previous is not None and previous != change.index:
            counts[change.structure] = counts.get(change.structure, 0) + 1
        last_index[change.structure] = change.index
    return counts


@dataclass(slots=True)
class CampaignRow:
    """One scenario's three-machine outcome plus controller behaviour."""

    scenario: ScenarioSpec
    comparison: WorkloadComparison

    @property
    def program_improvement(self) -> float:
        """Program-Adaptive speedup over the synchronous baseline."""
        return self.comparison.program_improvement

    @property
    def phase_improvement(self) -> float:
        """Phase-Adaptive speedup over the synchronous baseline."""
        return self.comparison.phase_improvement

    @property
    def reconfigurations(self) -> dict[str, int]:
        """Commanded configuration transitions per structure (phase run)."""
        return count_reconfigurations(self.comparison.phase_adaptive)

    @property
    def cache_reconfigurations(self) -> int:
        """D/L2 plus I-cache reconfigurations of the phase-adaptive run."""
        counts = self.reconfigurations
        return counts.get("dcache", 0) + counts.get("icache", 0)

    @property
    def queue_reconfigurations(self) -> int:
        """Issue-queue resizings of the phase-adaptive run."""
        counts = self.reconfigurations
        return counts.get("int-queue", 0) + counts.get("fp-queue", 0)

    @property
    def sync_penalties(self) -> int:
        """Synchronisation penalties paid by the phase-adaptive run."""
        return self.comparison.phase_adaptive.sync_penalties

    @property
    def sync_transfers(self) -> int:
        """Cross-domain transfers made by the phase-adaptive run."""
        return self.comparison.phase_adaptive.sync_transfers

    def to_dict(self) -> dict[str, Any]:
        """Plain-data summary row (for ``--json`` and downstream tooling)."""
        comparison = self.comparison
        return {
            "scenario": self.scenario.name,
            "family": self.scenario.family,
            "base": self.scenario.base,
            "phases": len(self.scenario.phases),
            "phase_program_length": self.scenario.phase_program_length,
            "program_best_indices": comparison.program_best_indices.describe(),
            "program_improvement": comparison.program_improvement,
            "phase_improvement": comparison.phase_improvement,
            "program_energy_reduction": comparison.program_energy_reduction,
            "phase_energy_reduction": comparison.phase_energy_reduction,
            "phase_edp_improvement": comparison.phase_edp_improvement,
            "phase_ed2p_improvement": comparison.phase_ed2p_improvement,
            "cache_reconfigurations": self.cache_reconfigurations,
            "queue_reconfigurations": self.queue_reconfigurations,
            "sync_transfers": self.sync_transfers,
            "sync_penalties": self.sync_penalties,
        }


@dataclass(slots=True)
class CampaignResult:
    """A finished campaign: one row per scenario plus run accounting."""

    rows: list[CampaignRow]
    parameters: dict[str, Any] = field(default_factory=dict)
    simulations: int = 0
    cache_hits: int = 0
    batch_duplicates: int = 0

    def row_for(self, scenario_name: str) -> CampaignRow:
        """The row of one scenario (KeyError when absent)."""
        for row in self.rows:
            if row.scenario.name == scenario_name:
                return row
        raise KeyError(f"no campaign row for scenario {scenario_name!r}")

    @property
    def mean_program_improvement(self) -> float:
        """Arithmetic-mean Program-Adaptive improvement across scenarios."""
        if not self.rows:
            return 0.0
        return sum(row.program_improvement for row in self.rows) / len(self.rows)

    @property
    def mean_phase_improvement(self) -> float:
        """Arithmetic-mean Phase-Adaptive improvement across scenarios."""
        if not self.rows:
            return 0.0
        return sum(row.phase_improvement for row in self.rows) / len(self.rows)

    def render(self) -> str:
        """The campaign matrix as a plain-text table."""
        table_rows: list[tuple[object, ...]] = []
        for row in self.rows:
            comparison = row.comparison
            table_rows.append(
                (
                    row.scenario.name,
                    row.scenario.family,
                    f"{comparison.program_improvement * 100:+.1f}%",
                    f"{comparison.phase_improvement * 100:+.1f}%",
                    f"{comparison.phase_energy_reduction * 100:+.1f}%",
                    f"{comparison.phase_edp_improvement * 100:+.1f}%",
                    f"{comparison.phase_ed2p_improvement * 100:+.1f}%",
                    f"{row.cache_reconfigurations}c/{row.queue_reconfigurations}q",
                    row.sync_penalties,
                )
            )
        table_rows.append(
            (
                "mean",
                "-",
                f"{self.mean_program_improvement * 100:+.1f}%",
                f"{self.mean_phase_improvement * 100:+.1f}%",
                "-",
                "-",
                "-",
                "-",
                "-",
            )
        )
        return format_table(
            (
                "scenario",
                "family",
                "program",
                "phase",
                "dE phase",
                "dED phase",
                "dED^2 phase",
                "reconf",
                "sync-pen",
            ),
            table_rows,
        )

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form of the whole campaign."""
        return {
            "parameters": dict(self.parameters),
            "simulations": self.simulations,
            "cache_hits": self.cache_hits,
            "batch_duplicates": self.batch_duplicates,
            "machine_styles": list(MACHINE_STYLES),
            "rows": [row.to_dict() for row in self.rows],
        }


def campaign_jobs(
    scenarios: Sequence[ScenarioSpec],
    *,
    search_mode: str = "factored",
    window: int | None = None,
    warmup: int | None = None,
    control: AdaptiveControlParams | None = None,
    trace_seed: int = DEFAULT_TRACE_SEED,
    seed: int = 0,
    control_overrides: Mapping[str, Any] | None = None,
) -> list[SimulationJob]:
    """The statically enumerable job list of a campaign over *scenarios*.

    Exactly the first (and overwhelmingly largest) batch
    :func:`run_campaign` submits — synchronous baseline, Phase-Adaptive run
    and every Program-Adaptive search candidate, per scenario.  The
    distributed fabric shards this list across workers by job fingerprint
    (:func:`repro.engine.fabric.shard_jobs`); the result-dependent tail (the
    factored search's combined winners) is simulated by the resume pass.
    Parameters mirror :func:`run_campaign` so a worker and the final resume
    run always plan the identical job list.
    """
    profiles = [scenario.build_profile() for scenario in scenarios]
    return comparison_jobs(
        profiles,
        search_mode=search_mode,
        window=window,
        warmup=warmup,
        control=control,
        trace_seed=trace_seed,
        seed=seed,
        control_overrides=control_overrides,
    )


def run_campaign(
    scenarios: Sequence[ScenarioSpec],
    *,
    search_mode: str = "factored",
    window: int | None = None,
    warmup: int | None = None,
    control: AdaptiveControlParams | None = None,
    trace_seed: int = DEFAULT_TRACE_SEED,
    seed: int = 0,
    control_overrides: Mapping[str, Any] | None = None,
    engine: ExperimentEngine | None = None,
) -> CampaignResult:
    """Run the scenario × machine-style matrix through the engine.

    Every scenario is materialised as its profile and submitted through
    :func:`~repro.analysis.sweep.compare_workloads`, so the full matrix —
    synchronous baseline, every Program-Adaptive search candidate and the
    Phase-Adaptive run, for every scenario — reaches the engine as one batch.
    ``window``/``warmup`` of ``None`` use each scenario's own defaults;
    passing explicit values (the quick matrix does) scales every scenario
    uniformly.  Engine accounting (fresh simulations vs. cache hits) is
    measured across the call, so a campaign re-run against a warm persistent
    cache reports zero simulations.
    """
    scenarios = list(scenarios)
    names = [scenario.name for scenario in scenarios]
    if len(set(names)) != len(names):
        raise ValueError("campaign scenarios must have unique names")
    eng = engine if engine is not None else default_engine()

    before_simulations = eng.stats.simulations
    before_hits = eng.stats.cache_hits
    before_duplicates = eng.stats.batch_duplicates

    profiles = [scenario.build_profile() for scenario in scenarios]
    comparisons = compare_workloads(
        profiles,
        search_mode=search_mode,
        window=window,
        warmup=warmup,
        control=control,
        trace_seed=trace_seed,
        seed=seed,
        control_overrides=control_overrides,
        engine=eng,
    )

    rows = [
        CampaignRow(scenario=scenario, comparison=comparison)
        for scenario, comparison in zip(scenarios, comparisons)
    ]
    return CampaignResult(
        rows=rows,
        parameters={
            "scenarios": names,
            "search_mode": search_mode,
            "window": window,
            "warmup": warmup,
            "trace_seed": trace_seed,
            "seed": seed,
        },
        simulations=eng.stats.simulations - before_simulations,
        cache_hits=eng.stats.cache_hits - before_hits,
        batch_duplicates=eng.stats.batch_duplicates - before_duplicates,
    )
