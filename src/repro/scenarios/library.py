"""The built-in scenario library.

Four families, ~25 named scenarios:

* **archetype** — steady-state versions of the six parameterised archetypes
  (:mod:`repro.scenarios.archetypes`): one dominant pressure each.
* **adversarial** — phase programs engineered against the phase-adaptive
  controllers: the phase period swept around the adaptation interval,
  demand oscillations sized just inside / outside the hysteresis margins,
  anti-phase cache-vs-queue demand, and bursts shorter than the interval.
* **paper** — phase programs layered on the paper's own benchmark profiles
  (apsi's capacity phases, art's ILP phases, mst's bursts, the gcc/em3d
  steady extremes), derived from :mod:`repro.workloads.suites`.
* **ramp** — gradual transitions (sawtooth and triangle schedules) that
  deny the controllers the abrupt phase boundaries the square waves give.

All adversarial timings are expressed relative to
:data:`CONTROLLER_INTERVAL` — the adaptation interval a
:data:`SCENARIO_WINDOW`-sized run resolves to — so "period at the
interval" stays true to its name when the library and the campaign driver
use the default windows.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.engine import default_control_params
from repro.scenarios.archetypes import archetype_overrides
from repro.scenarios.spec import ScenarioSpec
from repro.workloads.phases import (
    burst_schedule,
    bursty_conflict_phases,
    periodic_data_phases,
    periodic_ilp_phases,
    ramp,
    square_wave,
    triangle,
)

#: Default measured window of library scenarios (the profile default, spelled
#: out because the adversarial timings are derived from it).
SCENARIO_WINDOW = 24_000

#: Adaptation interval a SCENARIO_WINDOW run resolves to (window / 6).
CONTROLLER_INTERVAL = default_control_params(SCENARIO_WINDOW).interval_instructions

FAMILY_ARCHETYPE = "archetype"
FAMILY_ADVERSARIAL = "adversarial"
FAMILY_PAPER = "paper"
FAMILY_RAMP = "ramp"

FAMILIES = (FAMILY_ARCHETYPE, FAMILY_ADVERSARIAL, FAMILY_PAPER, FAMILY_RAMP)


# ---------------------------------------------------------------------------
# Family builders
# ---------------------------------------------------------------------------

#: Base delta shared by the data-capacity oscillation scenarios: a footprint
#: large enough that the hot-region swings below actually change which D/L2
#: configuration wins.
_CAPACITY_BASE: Mapping[str, Any] = {
    "data_footprint_kb": 1024.0,
    "hot_data_kb": 24.0,
    "hot_data_fraction": 0.92,
    "sequential_fraction": 0.5,
}

#: Cache-friendly and capacity-hungry override sets (the two sides of every
#: capacity square wave; mirrors the paper's apsi oscillation).
_CAPACITY_LOW: Mapping[str, Any] = {
    "hot_data_kb": 24.0,
    "hot_data_fraction": 0.95,
    "sequential_fraction": 0.6,
}
_CAPACITY_HIGH: Mapping[str, Any] = {
    "hot_data_kb": 640.0,
    "hot_data_fraction": 0.85,
    "sequential_fraction": 0.35,
}


def _archetype_scenarios() -> list[ScenarioSpec]:
    described = {
        "pointer_chasing": "Serial pointer chasing over a large linked working set.",
        "streaming": "Sequential streaming sweeps with a cold-capacity footprint.",
        "compute_dense": "FP-dense compute with long independent chains, tiny data.",
        "branchy": "Short blocks dense with hard data-dependent branches.",
        "icache_thrashing": "Instruction footprint far beyond the minimal I-cache.",
        "mixed": "A moderate blend of every pressure (typical application).",
    }
    return [
        ScenarioSpec(
            name=f"arch-{kind.replace('_', '-')}",
            family=FAMILY_ARCHETYPE,
            description=description,
            overrides=archetype_overrides(kind),
            simulation_window=SCENARIO_WINDOW,
        )
        for kind, description in described.items()
    ]


def _adversarial_scenarios() -> list[ScenarioSpec]:
    interval = CONTROLLER_INTERVAL
    scenarios: list[ScenarioSpec] = []

    # Phase period swept around the adaptation interval.  At half the
    # interval every sample averages both phases (the controller should hold
    # still); at twice the interval every single interval sees a different
    # phase (maximal confusion); at four times it can track, but only by
    # paying a PLL relock every other interval.
    for label, period in (
        ("half", interval // 2),
        ("1x", interval),
        ("2x", 2 * interval),
        ("4x", 4 * interval),
    ):
        scenarios.append(
            ScenarioSpec(
                name=f"adv-period-{label}-interval",
                family=FAMILY_ADVERSARIAL,
                description=(
                    f"Data-capacity square wave, full period {period} instructions "
                    f"({label} adaptation interval)."
                ),
                overrides=_CAPACITY_BASE,
                phases=square_wave(_CAPACITY_LOW, _CAPACITY_HIGH, period=period),
                simulation_window=SCENARIO_WINDOW,
            )
        )

    # Oscillations sized against the hysteresis margins: the inside variant's
    # demand swing is too small to justify a (relock-costing) change, the
    # outside variant's clearly is not — a controller with working hysteresis
    # holds still on the first and tracks the second.
    scenarios.append(
        ScenarioSpec(
            name="adv-hysteresis-inside-cache",
            family=FAMILY_ADVERSARIAL,
            description="Capacity flutter just inside the cache hysteresis margin.",
            overrides=_CAPACITY_BASE,
            phases=square_wave(
                {"hot_data_kb": 24.0},
                {"hot_data_kb": 30.0},
                period=2 * interval,
            ),
            simulation_window=SCENARIO_WINDOW,
        )
    )
    scenarios.append(
        ScenarioSpec(
            name="adv-hysteresis-outside-cache",
            family=FAMILY_ADVERSARIAL,
            description="Capacity swing clearly beyond the cache hysteresis margin.",
            overrides=_CAPACITY_BASE,
            phases=square_wave(
                {"hot_data_kb": 24.0},
                {"hot_data_kb": 128.0},
                period=2 * interval,
            ),
            simulation_window=SCENARIO_WINDOW,
        )
    )
    # The queue scenarios ride on art's memory-bound base: deeper queues only
    # pay off with long-latency work in flight, and the queue controller needs
    # three consecutive agreeing intervals before it resizes — so each phase
    # holds for three intervals.
    scenarios.append(
        ScenarioSpec(
            name="adv-hysteresis-inside-queue",
            family=FAMILY_ADVERSARIAL,
            description="ILP flutter too small to beat the queue hysteresis.",
            base="art",
            phases=square_wave(
                {"mean_dependence_distance": 8.0},
                {"mean_dependence_distance": 10.0},
                period=6 * interval,
            ),
            simulation_window=SCENARIO_WINDOW,
        )
    )
    scenarios.append(
        ScenarioSpec(
            name="adv-hysteresis-outside-queue",
            family=FAMILY_ADVERSARIAL,
            description="ILP swing the queue controller must track through its sizes.",
            base="art",
            phases=square_wave(
                {"mean_dependence_distance": 4.0, "far_dependence_fraction": 0.2},
                {"mean_dependence_distance": 45.0, "far_dependence_fraction": 0.2},
                period=6 * interval,
            ),
            simulation_window=SCENARIO_WINDOW,
        )
    )

    # Anti-phase cache vs. queue demand: capacity peaks exactly when ILP
    # bottoms out, so no single configuration serves both domains and the two
    # controllers are pushed in opposite directions every phase.
    scenarios.append(
        ScenarioSpec(
            name="adv-anti-phase-cache-queue",
            family=FAMILY_ADVERSARIAL,
            description="Capacity demand and ILP strictly out of phase.",
            overrides=_CAPACITY_BASE,
            phases=square_wave(
                {**_CAPACITY_LOW, "mean_dependence_distance": 40.0},
                {**_CAPACITY_HIGH, "mean_dependence_distance": 4.0},
                period=6 * interval,
            ),
            simulation_window=SCENARIO_WINDOW,
        )
    )
    scenarios.append(
        ScenarioSpec(
            name="adv-in-phase-cache-queue",
            family=FAMILY_ADVERSARIAL,
            description="Capacity demand and ILP rising together (control pair).",
            overrides=_CAPACITY_BASE,
            phases=square_wave(
                {**_CAPACITY_LOW, "mean_dependence_distance": 4.0},
                {**_CAPACITY_HIGH, "mean_dependence_distance": 40.0},
                period=6 * interval,
            ),
            simulation_window=SCENARIO_WINDOW,
        )
    )

    # A burst shorter than the interval: the mst pathology, parameterised.
    scenarios.append(
        ScenarioSpec(
            name="adv-burst-sub-interval",
            family=FAMILY_ADVERSARIAL,
            description="Conflict bursts one quarter of the adaptation interval long.",
            overrides=_CAPACITY_BASE,
            phases=burst_schedule(
                {"hot_data_kb": 24.0, "hot_data_fraction": 0.9},
                {"hot_data_kb": 96.0, "hot_data_fraction": 0.75, "sequential_fraction": 0.2},
                quiet_length=3 * interval,
                burst_length=max(1, interval // 4),
            ),
            simulation_window=SCENARIO_WINDOW,
        )
    )
    return scenarios


def _paper_scenarios() -> list[ScenarioSpec]:
    phase_length = 3 * CONTROLLER_INTERVAL // 2
    return [
        ScenarioSpec(
            name="paper-apsi-capacity",
            family=FAMILY_PAPER,
            description="apsi's periodic data-capacity phases at campaign pacing.",
            base="apsi",
            phases=periodic_data_phases(phase_length=phase_length),
            simulation_window=SCENARIO_WINDOW,
        ),
        ScenarioSpec(
            name="paper-art-ilp",
            family=FAMILY_PAPER,
            description="art's four-size ILP cycle at campaign pacing.",
            base="art",
            phases=periodic_ilp_phases(phase_length=phase_length),
            simulation_window=SCENARIO_WINDOW,
        ),
        ScenarioSpec(
            name="paper-mst-bursty",
            family=FAMILY_PAPER,
            description="mst's short conflict bursts between long quiet stretches.",
            base="mst",
            phases=bursty_conflict_phases(),
            simulation_window=SCENARIO_WINDOW,
        ),
        ScenarioSpec(
            name="paper-gcc-icache",
            family=FAMILY_PAPER,
            description="gcc's steady instruction-footprint pressure.",
            base="gcc",
            simulation_window=SCENARIO_WINDOW,
        ),
        ScenarioSpec(
            name="paper-em3d-membound",
            family=FAMILY_PAPER,
            description="em3d's steady memory-bound capacity pressure.",
            base="em3d",
            simulation_window=SCENARIO_WINDOW,
        ),
    ]


def _ramp_scenarios() -> list[ScenarioSpec]:
    interval = CONTROLLER_INTERVAL
    return [
        ScenarioSpec(
            name="ramp-capacity-sawtooth",
            family=FAMILY_RAMP,
            description="Hot working set growing gradually, then resetting abruptly.",
            overrides=_CAPACITY_BASE,
            phases=ramp(
                {"hot_data_kb": 16.0, "hot_data_fraction": 0.95},
                {"hot_data_kb": 512.0, "hot_data_fraction": 0.85},
                steps=6,
                total_length=4 * interval,
            ),
            simulation_window=SCENARIO_WINDOW,
        ),
        ScenarioSpec(
            name="ramp-ilp-triangle",
            family=FAMILY_RAMP,
            description="Exploitable ILP rising and falling gradually (art base).",
            base="art",
            phases=triangle(
                {"mean_dependence_distance": 4.0},
                {"mean_dependence_distance": 40.0},
                steps=4,
                period=8 * interval,
            ),
            simulation_window=SCENARIO_WINDOW,
        ),
        ScenarioSpec(
            name="ramp-branch-entropy",
            family=FAMILY_RAMP,
            description="Branch predictability degrading gradually, then resetting.",
            overrides={
                "cond_branch_density": 0.10,
                "data_footprint_kb": 128.0,
                "hot_data_kb": 32.0,
            },
            phases=ramp(
                {"predictable_branch_fraction": 0.95, "hard_branch_bias": 0.60},
                {"predictable_branch_fraction": 0.55, "hard_branch_bias": 0.52},
                steps=4,
                total_length=4 * interval,
            ),
            simulation_window=SCENARIO_WINDOW,
        ),
        ScenarioSpec(
            name="ramp-memory-mix-triangle",
            family=FAMILY_RAMP,
            description="Memory intensity swelling and receding gradually.",
            overrides={"data_footprint_kb": 512.0, "hot_data_kb": 128.0},
            phases=triangle(
                {"load_fraction": 0.12, "store_fraction": 0.05},
                {"load_fraction": 0.32, "store_fraction": 0.14},
                steps=3,
                period=4 * interval,
            ),
            simulation_window=SCENARIO_WINDOW,
        ),
    ]


def _build_library() -> dict[str, ScenarioSpec]:
    library: dict[str, ScenarioSpec] = {}
    for scenario in (
        *_archetype_scenarios(),
        *_adversarial_scenarios(),
        *_paper_scenarios(),
        *_ramp_scenarios(),
    ):
        if scenario.name in library:
            raise ValueError(f"duplicate scenario name {scenario.name!r}")
        library[scenario.name] = scenario
    return library


#: All built-in scenarios keyed by name (insertion order = family order).
SCENARIOS: Mapping[str, ScenarioSpec] = _build_library()

#: The 16-scenario subset the quick campaign matrix runs: every adversarial
#: scenario plus representative archetype / paper / ramp members.
QUICK_MATRIX_SCENARIOS: tuple[str, ...] = (
    "arch-pointer-chasing",
    "arch-icache-thrashing",
    "adv-period-half-interval",
    "adv-period-1x-interval",
    "adv-period-2x-interval",
    "adv-period-4x-interval",
    "adv-hysteresis-inside-cache",
    "adv-hysteresis-outside-cache",
    "adv-hysteresis-inside-queue",
    "adv-hysteresis-outside-queue",
    "adv-anti-phase-cache-queue",
    "adv-in-phase-cache-queue",
    "adv-burst-sub-interval",
    "paper-apsi-capacity",
    "paper-art-ilp",
    "ramp-capacity-sawtooth",
)


def scenario_names() -> tuple[str, ...]:
    """Names of every built-in scenario, in library order."""
    return tuple(SCENARIOS)


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a built-in scenario by name."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known scenarios: {', '.join(sorted(SCENARIOS))}"
        ) from None


def scenarios_in_family(family: str) -> tuple[ScenarioSpec, ...]:
    """Every built-in scenario of *family*, in library order."""
    if family not in FAMILIES:
        raise KeyError(f"unknown scenario family {family!r}; known: {FAMILIES}")
    return tuple(s for s in SCENARIOS.values() if s.family == family)
