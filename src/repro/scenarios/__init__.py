"""Scenario campaigns: declarative workloads, stress generators, matrices.

The scenario subsystem turns the simulator into a general evaluation
platform.  It has three layers:

* :mod:`repro.scenarios.spec` — :class:`ScenarioSpec`, the declarative,
  validated, JSON-round-trippable description of one workload scenario
  (base profile + delta + phase program);
* :mod:`repro.scenarios.archetypes` and :mod:`repro.scenarios.library` —
  parameterised archetype builders and the built-in library of named
  scenarios, including the controller-adversarial stress families;
* :mod:`repro.scenarios.campaign` — the engine-batched campaign driver that
  expands a scenario set across the three machine styles and renders the
  matrix report (``python -m repro.scenarios`` is the CLI).
"""

from repro.scenarios.archetypes import ARCHETYPES, archetype_overrides
from repro.scenarios.campaign import (
    MACHINE_STYLES,
    CampaignResult,
    CampaignRow,
    campaign_jobs,
    count_reconfigurations,
    run_campaign,
)
from repro.scenarios.library import (
    CONTROLLER_INTERVAL,
    FAMILIES,
    QUICK_MATRIX_SCENARIOS,
    SCENARIO_WINDOW,
    SCENARIOS,
    get_scenario,
    scenario_names,
    scenarios_in_family,
)
from repro.scenarios.spec import SCENARIO_SUITE, ScenarioSpec

__all__ = [
    "ARCHETYPES",
    "CONTROLLER_INTERVAL",
    "CampaignResult",
    "CampaignRow",
    "FAMILIES",
    "MACHINE_STYLES",
    "QUICK_MATRIX_SCENARIOS",
    "SCENARIOS",
    "SCENARIO_SUITE",
    "SCENARIO_WINDOW",
    "ScenarioSpec",
    "archetype_overrides",
    "campaign_jobs",
    "count_reconfigurations",
    "get_scenario",
    "run_campaign",
    "scenario_names",
    "scenarios_in_family",
]
