"""Declarative scenario specifications.

A :class:`ScenarioSpec` names one synthetic workload shape: a base profile
(either a benchmark from :mod:`repro.workloads.suites` or the neutral
scenario default), a profile delta applied on top of it, and a phase program
built from :class:`~repro.workloads.characteristics.PhaseSpec` sequences.
Specs are plain data — dict/JSON round-trippable, comparable by content — and
*validated at construction*: building one immediately materialises its
:class:`~repro.workloads.characteristics.WorkloadProfile` and runs
:meth:`~repro.workloads.characteristics.WorkloadProfile.validate`, so a
scenario whose phase overrides push a parameter out of range fails loudly at
definition time, not mid-campaign.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from types import MappingProxyType
from typing import Any, Mapping

from repro.workloads.characteristics import PhaseSpec, WorkloadProfile

#: Suite name stamped on every scenario-built profile.
SCENARIO_SUITE = "Scenario"

#: Profile fields a scenario delta may not set directly: identity and the
#: phase program belong to the spec itself.
_RESERVED_OVERRIDE_FIELDS = frozenset(
    {"name", "suite", "description", "phases", "simulation_window"}
)

#: The neutral starting point for scenarios that name no benchmark base: the
#: profile defaults, under a stable name so trace caching keys behave.
_DEFAULT_BASE = WorkloadProfile(name="scenario-base", suite=SCENARIO_SUITE)


@dataclass(frozen=True, slots=True)
class ScenarioSpec:
    """One named, validated workload scenario.

    Parameters
    ----------
    name:
        Unique scenario name (also the built profile's workload name, so it
        keys trace caching and appears in result records).
    family:
        Grouping label (``"archetype"``, ``"adversarial"``, ``"paper"``,
        ``"ramp"``, or any user-defined family).
    description:
        One-line human description, carried onto the built profile.
    base:
        Name of a benchmark workload to derive from (any
        :func:`repro.workloads.get_workload` name), or ``None`` for the
        neutral default profile.
    overrides:
        Profile delta applied on top of the base — any
        :class:`WorkloadProfile` field except the reserved identity/phase
        fields.
    phases:
        The phase program.  Build with the schedule builders in
        :mod:`repro.workloads.phases` (``square_wave``/``ramp``/``triangle``/
        ``burst_schedule``) or write :class:`PhaseSpec` tuples directly.
    simulation_window:
        Default measured window of the built profile (``None`` keeps the
        base profile's).
    """

    name: str
    family: str
    description: str = ""
    base: str | None = None
    overrides: Mapping[str, Any] = field(default_factory=dict)
    phases: tuple[PhaseSpec, ...] = ()
    simulation_window: int | None = None

    def __post_init__(self) -> None:
        if not self.name or not self.name.strip():
            raise ValueError("scenario name must be non-empty")
        if not self.family or not self.family.strip():
            raise ValueError(f"scenario {self.name!r}: family must be non-empty")
        reserved = set(self.overrides) & _RESERVED_OVERRIDE_FIELDS
        if reserved:
            raise ValueError(
                f"scenario {self.name!r}: overrides may not set {sorted(reserved)}; "
                "identity, phases and the window are spec-level fields"
            )
        object.__setattr__(self, "overrides", MappingProxyType(dict(self.overrides)))
        object.__setattr__(
            self,
            "phases",
            tuple(
                phase if isinstance(phase, PhaseSpec) else PhaseSpec.from_dict(phase)
                for phase in self.phases
            ),
        )
        # Materialise and validate eagerly: a bad delta or an out-of-range
        # effective phase parameter is a definition error.
        self.build_profile()

    def __reduce__(self):
        # MappingProxyType is not picklable; rebuild from plain values so
        # specs can cross process boundaries like profiles do.
        return (
            ScenarioSpec,
            (
                self.name,
                self.family,
                self.description,
                self.base,
                dict(self.overrides),
                self.phases,
                self.simulation_window,
            ),
        )

    # ------------------------------------------------------------ building

    def build_profile(self) -> WorkloadProfile:
        """Materialise the scenario as a validated :class:`WorkloadProfile`."""
        # Imported here: suites -> phases -> characteristics is the package's
        # natural order, and spec-level imports would pull the full 32-profile
        # table into every consumer of the dataclass alone.
        from repro.workloads.suites import get_workload

        base = get_workload(self.base) if self.base is not None else _DEFAULT_BASE
        overrides: dict[str, Any] = dict(self.overrides)
        overrides["name"] = self.name
        overrides["suite"] = SCENARIO_SUITE
        overrides["description"] = self.description
        overrides["phases"] = self.phases
        if self.simulation_window is not None:
            overrides["simulation_window"] = self.simulation_window
        return base.with_overrides(**overrides).validate()

    @property
    def phase_program_length(self) -> int:
        """Instructions in one full cycle of the phase program (0 = steady)."""
        return sum(phase.length for phase in self.phases)

    # ------------------------------------------------------------ round trip

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form (stable key order) for JSON and fingerprints."""
        return {
            "name": self.name,
            "family": self.family,
            "description": self.description,
            "base": self.base,
            "overrides": {key: self.overrides[key] for key in sorted(self.overrides)},
            "phases": [phase.to_dict() for phase in self.phases],
            "simulation_window": self.simulation_window,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output (unknown keys rejected)."""
        known = {spec.name for spec in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown ScenarioSpec fields: {sorted(unknown)}")
        payload = dict(data)
        payload["phases"] = tuple(
            PhaseSpec.from_dict(phase) for phase in payload.get("phases", ())
        )
        payload.setdefault("overrides", {})
        return cls(**payload)

    def to_json(self) -> str:
        """Canonical JSON form of the spec."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    def describe(self) -> str:
        """Short single-line label for tables and logs."""
        shape = f"{len(self.phases)} phases" if self.phases else "steady"
        origin = f"base={self.base}" if self.base else "default base"
        return f"{self.name} [{self.family}] ({origin}, {shape})"
