"""``python -m repro.scenarios`` — browse the library and run campaigns.

Examples::

    python -m repro.scenarios list                      # every scenario
    python -m repro.scenarios list --family adversarial
    python -m repro.scenarios describe adv-period-1x-interval
    python -m repro.scenarios run paper-apsi-capacity --window 6000
    python -m repro.scenarios matrix --quick --workers auto
    python -m repro.scenarios matrix --family adversarial --cache-dir .cache

``matrix --quick`` runs the 16-scenario quick subset at CI-sized windows;
with ``--cache-dir`` a second invocation is served entirely from the result
cache (the summary line reports ``0 simulations``).  ``--json`` switches any
subcommand's output to machine-readable JSON.

The matrix is also the driver of the distributed campaign fabric
(:mod:`repro.engine.fabric`)::

    # two shard workers (separate processes or hosts), private caches,
    # shared run-ledger directory
    python -m repro.scenarios matrix --quick --shard 0/2 --cache-dir shard0 --ledger ledgers
    python -m repro.scenarios matrix --quick --shard 1/2 --cache-dir shard1 --ledger ledgers
    # fold the worker stores into one canonical store
    python -m repro.engine merge merged shard0 shard1
    # complete the result-dependent tail and render the matrix
    python -m repro.scenarios matrix --quick --resume --cache-dir merged
    # fuse and render the campaign's run ledgers
    python -m repro.obs ledger summarize ledgers
    python -m repro.obs report ledgers --store merged

``--ledger DIR`` appends durable per-batch accounting records (job
fingerprints, per-job wall-clock, cache counters, engine metrics) into a
per-worker ``*.ledger.jsonl`` file; ``--metrics-out PATH`` writes the final
engine-metrics snapshot as a Prometheus textfile (or ``.json``) for
scraping.  Both are observability-only and leave every result digest
bit-identical.

``--shard K/N`` simulates only the fingerprints owned by shard *K* of *N*
into the worker's private cache and prints shard accounting instead of the
matrix; ``--resume`` reports how much of the planned job list is already
cached, then simulates only the remainder (a warm store reports
``0 simulations``).  See ``docs/OPERATIONS.md`` for the full workflows.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.analysis.reporting import format_table
from repro.engine import (
    CacheVersionError,
    ExperimentEngine,
    ShardSpec,
    make_engine,
    parse_shard,
    run_shard,
)
from repro.obs.logging import add_logging_arguments, configure_logging, get_logger
from repro.scenarios.campaign import CampaignResult, campaign_jobs, run_campaign
from repro.scenarios.library import (
    FAMILIES,
    QUICK_MATRIX_SCENARIOS,
    SCENARIOS,
    get_scenario,
)
from repro.scenarios.spec import ScenarioSpec

#: CI-sized windows for the quick campaign matrix (chosen so the 16-scenario
#: matrix finishes in about a minute on one worker).
QUICK_WINDOW = 1_200
QUICK_WARMUP = 2_000


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.scenarios`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="Browse workload scenarios and run campaign matrices.",
    )
    add_logging_arguments(parser)
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list the scenario library")
    list_parser.add_argument("--family", choices=FAMILIES, default=None)
    list_parser.add_argument("--json", action="store_true", dest="as_json")

    describe_parser = subparsers.add_parser("describe", help="show one scenario")
    describe_parser.add_argument("name")
    describe_parser.add_argument("--json", action="store_true", dest="as_json")

    def add_run_options(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--window", type=int, default=None, help="measured window")
        sub.add_argument("--warmup", type=int, default=None, help="warm-up instructions")
        sub.add_argument(
            "--search-mode",
            choices=("factored", "exhaustive"),
            default="factored",
            help="Program-Adaptive search mode (default factored)",
        )
        sub.add_argument(
            "--workers",
            default="1",
            help='worker processes ("auto" = one per core; default 1)',
        )
        sub.add_argument(
            "--cache-dir",
            default=None,
            help="persistent on-disk result cache directory",
        )
        sub.add_argument(
            "--heartbeat",
            nargs="?",
            type=float,
            const=30.0,
            default=None,
            metavar="SECONDS",
            help="log an engine progress line at most every SECONDS seconds "
            "(default 30 when the flag is given without a value)",
        )
        sub.add_argument(
            "--ledger",
            default=None,
            metavar="DIR",
            help="append per-batch run-ledger records into DIR "
            "(one *.ledger.jsonl per worker; see python -m repro.obs ledger)",
        )
        sub.add_argument(
            "--metrics-out",
            default=None,
            metavar="PATH",
            help="write the final engine-metrics snapshot to PATH "
            "(.json = JSON, anything else = Prometheus textfile format)",
        )
        sub.add_argument("--json", action="store_true", dest="as_json")

    run_parser = subparsers.add_parser("run", help="run one scenario's comparison")
    run_parser.add_argument("name")
    add_run_options(run_parser)

    matrix_parser = subparsers.add_parser(
        "matrix", help="run the scenario x machine-style campaign matrix"
    )
    matrix_parser.add_argument(
        "--scenarios",
        nargs="+",
        default=None,
        help="explicit scenario names (default: the whole library)",
    )
    matrix_parser.add_argument(
        "--family",
        choices=FAMILIES,
        default=None,
        help="restrict the matrix to one family",
    )
    matrix_parser.add_argument(
        "--quick",
        action="store_true",
        help=f"16-scenario subset at CI-sized windows "
        f"(window {QUICK_WINDOW}, warmup {QUICK_WARMUP})",
    )
    matrix_parser.add_argument(
        "--shard",
        default=None,
        metavar="K/N",
        help="worker mode: simulate only shard K of N into the private "
        "--cache-dir and print shard accounting instead of the matrix",
    )
    matrix_parser.add_argument(
        "--resume",
        action="store_true",
        help="report how much of the planned job list the --cache-dir "
        "already holds, then simulate only the remainder",
    )
    add_run_options(matrix_parser)
    return parser


def _parse_args(argv: Sequence[str] | None) -> argparse.Namespace:
    return build_parser().parse_args(argv)


def _scenario_table(scenarios: Sequence[ScenarioSpec]) -> str:
    rows = []
    for scenario in scenarios:
        shape = f"{len(scenario.phases)}" if scenario.phases else "steady"
        rows.append(
            (
                scenario.name,
                scenario.family,
                scenario.base or "-",
                shape,
                scenario.phase_program_length or "-",
                scenario.description,
            )
        )
    return format_table(
        ("scenario", "family", "base", "phases", "period", "description"), rows
    )


def _print_campaign(
    result: CampaignResult, *, as_json: bool, engine: ExperimentEngine | None = None
) -> None:
    if as_json:
        # Machine-readable mode stays pure JSON (consumers parse stdout
        # wholesale); cache/metrics accounting is a text-mode extra.
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
        return
    print(
        f"Campaign over {len(result.rows)} scenario(s) x 3 machine styles "
        f"({result.simulations} simulations, {result.cache_hits} cache hits, "
        f"{result.batch_duplicates} batch duplicates)"
    )
    print()
    print(result.render())
    if engine is not None:
        print()
        if engine.cache is not None:
            print(engine.cache.stats.describe())
        for line in engine.metrics.summary_lines():
            print(line)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _parse_args(argv)
    configure_logging(args)

    if args.command == "list":
        scenarios = [
            scenario
            for scenario in SCENARIOS.values()
            if args.family is None or scenario.family == args.family
        ]
        if args.as_json:
            print(json.dumps([s.to_dict() for s in scenarios], indent=2))
        else:
            print(_scenario_table(scenarios))
        return 0

    if args.command == "describe":
        try:
            scenario = get_scenario(args.name)
        except KeyError as error:
            print(f"error: {error.args[0]}", file=sys.stderr)
            return 2
        if args.as_json:
            print(json.dumps(scenario.to_dict(), indent=2))
            return 0
        profile = scenario.build_profile()
        print(scenario.describe())
        if scenario.description:
            print(f"  {scenario.description}")
        print(f"  window: {profile.simulation_window} instructions")
        if scenario.overrides:
            print("  profile delta:")
            for key in sorted(scenario.overrides):
                print(f"    {key} = {scenario.overrides[key]!r}")
        if scenario.phases:
            print(f"  phase program ({scenario.phase_program_length} instructions/cycle):")
            for index, phase in enumerate(scenario.phases):
                overrides = ", ".join(
                    f"{key}={phase.overrides[key]:g}" for key in sorted(phase.overrides)
                )
                print(f"    [{index}] {phase.length} instructions: {overrides}")
        return 0

    shard = getattr(args, "shard", None)
    resume = getattr(args, "resume", False)
    if shard is not None and resume:
        print(
            "error: --shard and --resume are mutually exclusive (workers "
            "resume implicitly when re-run against their private cache)",
            file=sys.stderr,
        )
        return 2
    if (shard is not None or resume) and args.cache_dir is None:
        print("error: --shard/--resume require --cache-dir", file=sys.stderr)
        return 2
    shard_spec = None
    if shard is not None:
        try:
            shard_spec = parse_shard(shard)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2

    # run / matrix share the engine and campaign plumbing.
    engine = make_engine(workers=args.workers, cache_dir=args.cache_dir)
    heartbeat = getattr(args, "heartbeat", None)
    if heartbeat is not None:
        if heartbeat <= 0:
            print("error: --heartbeat must be positive", file=sys.stderr)
            return 2
        engine.heartbeat_seconds = heartbeat
        # The progress line logs at INFO on repro.engine; the flag implies
        # the user wants to see it regardless of the -v/-q level.
        get_logger("repro.engine").setLevel("INFO")

    if args.ledger is not None:
        from repro.obs.ledger import open_ledger

        engine.ledger = open_ledger(
            args.ledger,
            label=args.command if args.command == "matrix" else f"run-{args.name}",
            shard=shard,
        )
    try:
        return _run_or_matrix(args, engine, shard_spec)
    finally:
        if engine.ledger is not None:
            engine.ledger.close()
        if args.metrics_out is not None:
            from repro.obs.export import write_metrics_snapshot

            labels = {"command": args.command}
            if shard is not None:
                labels["shard"] = shard
            path = write_metrics_snapshot(args.metrics_out, engine.metrics, labels=labels)
            if not args.as_json:
                print(f"wrote metrics snapshot to {path}")


def _run_or_matrix(
    args: argparse.Namespace, engine: ExperimentEngine, shard_spec: ShardSpec | None
) -> int:
    """The shared run/matrix body (scenario selection, shard/resume/campaign)."""
    resume = getattr(args, "resume", False)
    if args.command == "run":
        try:
            scenarios = [get_scenario(args.name)]
        except KeyError as error:
            print(f"error: {error.args[0]}", file=sys.stderr)
            return 2
    else:
        if args.scenarios is not None:
            try:
                scenarios = [get_scenario(name) for name in args.scenarios]
            except KeyError as error:
                print(f"error: {error.args[0]}", file=sys.stderr)
                return 2
        elif args.quick:
            scenarios = [get_scenario(name) for name in QUICK_MATRIX_SCENARIOS]
        else:
            scenarios = list(SCENARIOS.values())
        if args.family is not None:
            scenarios = [s for s in scenarios if s.family == args.family]
        if not scenarios:
            print("error: no scenarios selected", file=sys.stderr)
            return 2

    window, warmup = args.window, args.warmup
    if getattr(args, "quick", False):
        window = window if window is not None else QUICK_WINDOW
        warmup = warmup if warmup is not None else QUICK_WARMUP

    if shard_spec is not None:
        # Worker mode: simulate this shard's slice of the planned job list
        # into the private cache; the matrix itself is rendered later by the
        # post-merge resume pass, which sees every shard's results.
        jobs = campaign_jobs(scenarios, search_mode=args.search_mode, window=window, warmup=warmup)
        report = run_shard(jobs, shard_spec, engine)
        if args.as_json:
            print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        else:
            print(report.describe())
        return 0

    if resume:
        jobs = campaign_jobs(scenarios, search_mode=args.search_mode, window=window, warmup=warmup)
        fingerprints = {job.fingerprint() for job in jobs}
        try:
            cached = sum(1 for fp in fingerprints if fp in engine.cache)
        except CacheVersionError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        print(
            f"resume: {cached} of {len(fingerprints)} planned job(s) already "
            f"in {args.cache_dir}; simulating the remainder"
        )

    result = run_campaign(
        scenarios,
        search_mode=args.search_mode,
        window=window,
        warmup=warmup,
        engine=engine,
    )
    _print_campaign(result, as_json=args.as_json, engine=engine)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
