"""Parameterised workload archetypes.

Each archetype is a named, tunable profile delta capturing one canonical
program behaviour — the axes along which the paper's 32 applications differ.
They are the raw material of the scenario library: an archetype gives a
scenario its steady-state character, the phase program (from
:mod:`repro.workloads.phases`) gives it its dynamics.

Every builder returns a plain override dict for
:class:`~repro.scenarios.spec.ScenarioSpec`'s ``overrides`` field, so
archetypes compose with any base profile and remain JSON-representable.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping


def pointer_chasing(
    *, footprint_kb: float = 768.0, hot_kb: float = 192.0
) -> dict[str, Any]:
    """Linked-structure traversal: random accesses, short dependence chains.

    Serial pointer loads over a working set larger than the minimal D-cache —
    the Olden signature (``treeadd``/``health``): little ILP for the queues,
    heavy capacity demand for the D/L2 controller.
    """
    return {
        "load_fraction": 0.30,
        "store_fraction": 0.08,
        "data_footprint_kb": footprint_kb,
        "hot_data_kb": hot_kb,
        "hot_data_fraction": 0.80,
        "sequential_fraction": 0.15,
        "mean_dependence_distance": 3.5,
        "far_dependence_fraction": 0.15,
    }


def streaming(
    *, footprint_kb: float = 1024.0, hot_kb: float = 32.0
) -> dict[str, Any]:
    """Sequential sweeps over a large array with little reuse.

    High spatial locality but a cold-capacity footprint no cache level holds,
    so bigger configurations buy little — the shape that should keep the
    phase-adaptive machine in its smallest, fastest configurations.
    """
    return {
        "load_fraction": 0.30,
        "store_fraction": 0.14,
        "data_footprint_kb": footprint_kb,
        "hot_data_kb": hot_kb,
        "hot_data_fraction": 0.30,
        "sequential_fraction": 0.95,
        "mean_dependence_distance": 14.0,
        "far_dependence_fraction": 0.30,
    }


def compute_dense(*, fp_fraction: float = 0.55) -> dict[str, Any]:
    """FP-heavy kernels with long independent chains and a tiny data set.

    The ILP is there for a deep FP queue to harvest; memory barely matters —
    pressure lands on the issue-queue controller alone.
    """
    return {
        "load_fraction": 0.14,
        "store_fraction": 0.05,
        "fp_fraction": fp_fraction,
        "data_footprint_kb": 48.0,
        "hot_data_kb": 16.0,
        "mean_dependence_distance": 22.0,
        "far_dependence_fraction": 0.30,
    }


def branchy(
    *, density: float = 0.16, predictable_fraction: float = 0.55
) -> dict[str, Any]:
    """Short blocks dense with hard-to-predict, data-dependent branches.

    Misprediction recovery dominates; front-end stalls cap the benefit of
    any structural upsizing, stressing the controllers' cost attribution.
    """
    return {
        "cond_branch_density": density,
        "predictable_branch_fraction": predictable_fraction,
        "hard_branch_bias": 0.52,
        "block_size": 6,
        "data_footprint_kb": 96.0,
        "hot_data_kb": 24.0,
        "mean_dependence_distance": 6.0,
    }


def icache_thrashing(
    *, code_kb: float = 96.0, window_kb: float = 56.0
) -> dict[str, Any]:
    """Instruction footprint far beyond the minimal I-cache.

    The gcc/vortex shape: a sliding inner window larger than the 16 KB base
    I-cache forces refill misses, so the I-cache controller must trade
    frequency for capacity.
    """
    return {
        "code_footprint_kb": code_kb,
        "inner_window_kb": window_kb,
        "inner_iterations": 8,
        "data_footprint_kb": 64.0,
        "hot_data_kb": 16.0,
        "mean_dependence_distance": 8.0,
    }


def mixed(*, fp_fraction: float = 0.2) -> dict[str, Any]:
    """A moderate blend of all pressures — the 'typical application' shape."""
    return {
        "load_fraction": 0.26,
        "store_fraction": 0.11,
        "fp_fraction": fp_fraction,
        "cond_branch_density": 0.08,
        "predictable_branch_fraction": 0.85,
        "code_footprint_kb": 24.0,
        "inner_window_kb": 12.0,
        "data_footprint_kb": 256.0,
        "hot_data_kb": 48.0,
        "hot_data_fraction": 0.88,
        "sequential_fraction": 0.5,
        "mean_dependence_distance": 9.0,
    }


#: Archetype registry: name -> builder returning an override dict.
ARCHETYPES: Mapping[str, Callable[..., dict[str, Any]]] = {
    "pointer_chasing": pointer_chasing,
    "streaming": streaming,
    "compute_dense": compute_dense,
    "branchy": branchy,
    "icache_thrashing": icache_thrashing,
    "mixed": mixed,
}


def archetype_overrides(kind: str, **params: Any) -> dict[str, Any]:
    """Build the override dict of archetype *kind* with *params* applied."""
    try:
        builder = ARCHETYPES[kind]
    except KeyError:
        raise ValueError(
            f"unknown archetype {kind!r}; known archetypes: {sorted(ARCHETYPES)}"
        ) from None
    return builder(**params)
