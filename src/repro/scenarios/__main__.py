"""Module entry point for ``python -m repro.scenarios``.

Dispatches to :mod:`repro.scenarios.cli`: browse the scenario library
(``list``/``describe``), run one scenario's three-machine comparison
(``run``), or drive the campaign matrix (``matrix``) — including the
distributed fabric's ``--shard K/N`` worker mode and ``--resume``.
"""

from repro.scenarios.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
