"""Module entry point for ``python -m repro.scenarios``."""

from repro.scenarios.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
