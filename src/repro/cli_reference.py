"""``python -m repro.cli_reference`` — generate the CLI reference document.

Renders ``docs/CLI.md`` from the *live* argument parsers of every
``python -m repro.*`` entrypoint, so the reference cannot drift from the
code: ``tests/test_cli_reference.py`` (run by the CI docs job) regenerates
the document and fails when the committed copy is stale.

The renderer walks each parser's actions directly instead of calling
``ArgumentParser.format_help()`` — help-text layout varies across Python
versions (wrapping, usage line style), while the action inventory itself
(option strings, metavars, choices, defaults, help sentences) is identical,
which keeps the generated document byte-stable across the CI matrix.

Examples::

    python -m repro.cli_reference            # print the reference to stdout
    python -m repro.cli_reference --check    # exit 1 when docs/CLI.md is stale
    python -m repro.cli_reference --write    # rewrite docs/CLI.md in place
"""

from __future__ import annotations

import argparse
import importlib
import sys
from pathlib import Path
from typing import Sequence

__all__ = [
    "PARSER_BUILDERS",
    "build_parser",
    "default_output_path",
    "load_parsers",
    "main",
    "render_reference",
]

#: Every documented ``python -m`` entrypoint, mapped to the dotted path
#: (``module:attribute``) of its zero-argument parser builder.  New CLIs
#: must register here; the reference renders them in sorted module order.
PARSER_BUILDERS: dict[str, str] = {
    "repro.analysis.hardware_cost": "repro.analysis.hardware_cost:build_parser",
    "repro.analysis.sensitivity": "repro.analysis.sensitivity:build_parser",
    "repro.bench": "repro.bench.cli:build_parser",
    "repro.checks": "repro.checks.cli:build_parser",
    "repro.cli_reference": "repro.cli_reference:build_parser",
    "repro.engine": "repro.engine.cli:build_parser",
    "repro.obs": "repro.obs.cli:build_parser",
    "repro.scenarios": "repro.scenarios.cli:build_parser",
}

_HEADER = """\
# Command-line reference

Every `python -m repro.*` entrypoint, generated from the live argument
parsers by `python -m repro.cli_reference --write`.  **Do not edit by
hand** — `tests/test_cli_reference.py` (run by the CI docs job) regenerates
this document and fails when the committed copy is stale.
"""


def default_output_path() -> Path:
    """The committed location of the reference: ``<repo>/docs/CLI.md``."""
    return Path(__file__).resolve().parents[2] / "docs" / "CLI.md"


def load_parsers() -> list[argparse.ArgumentParser]:
    """Build every registered parser, in sorted entrypoint order."""
    parsers = []
    for module_name in sorted(PARSER_BUILDERS):
        target = PARSER_BUILDERS[module_name]
        module_path, _, attribute = target.partition(":")
        builder = getattr(importlib.import_module(module_path), attribute)
        parsers.append(builder())
    return parsers


def _metavar(action: argparse.Action) -> str:
    if action.metavar is not None:
        return str(action.metavar)
    if action.choices is not None:
        return "{" + ",".join(str(choice) for choice in action.choices) + "}"
    if action.option_strings:
        return action.dest.upper()
    return action.dest


def _format_args(action: argparse.Action) -> str:
    """The argument part of an invocation (``" K/N"``, ``" [X ...]"``...)."""
    metavar = _metavar(action)
    nargs = action.nargs
    if nargs == 0:
        return ""
    if nargs is None or nargs == 1:
        return f" {metavar}"
    if nargs == argparse.OPTIONAL:
        return f" [{metavar}]"
    if nargs == argparse.ZERO_OR_MORE:
        return f" [{metavar} ...]"
    if nargs == argparse.ONE_OR_MORE:
        return f" {metavar} [{metavar} ...]"
    if isinstance(nargs, int):
        return " " + " ".join([metavar] * nargs)
    return f" {metavar}"


def _invocation(action: argparse.Action) -> str:
    if not action.option_strings:
        return _format_args(action).strip()
    return ", ".join(action.option_strings) + _format_args(action)


def _describe(action: argparse.Action) -> str:
    """One bullet line for *action*: invocation, help, qualifiers."""
    parts = [f"`{_invocation(action)}`"]
    notes = []
    if type(action).__name__ == "_AppendAction":
        notes.append("repeatable")
    help_text = " ".join((action.help or "").split())
    default = action.default
    if (
        action.option_strings
        and action.nargs != 0
        and default not in (None, False, argparse.SUPPRESS)
        and "default" not in help_text.lower()
    ):
        notes.append(f"default: `{default!r}`")
    if notes:
        parts.append(f"({'; '.join(notes)})")
    if help_text:
        parts.append(f"— {help_text}")
    return "- " + " ".join(parts)


def _render_parser(parser: argparse.ArgumentParser, level: int) -> list[str]:
    lines = [f"{'#' * level} `{parser.prog}`", ""]
    if parser.description:
        lines += [" ".join(parser.description.split()), ""]

    subparser_actions = [
        action
        for action in parser._actions
        if isinstance(action, argparse._SubParsersAction)
    ]
    positionals = [
        action
        for action in parser._actions
        if not action.option_strings
        and not isinstance(action, argparse._SubParsersAction)
    ]
    optionals = [
        action
        for action in parser._actions
        if action.option_strings and action.dest != "help"
    ]

    if positionals:
        lines += ["**Arguments**", ""]
        lines += [_describe(action) for action in positionals]
        lines.append("")
    if optionals:
        lines += ["**Options**", ""]
        lines += [_describe(action) for action in optionals]
        lines.append("")
    for action in subparser_actions:
        names = list(action.choices)
        lines += [
            "**Subcommands:** " + ", ".join(f"`{name}`" for name in names),
            "",
        ]
        for name in names:
            lines += _render_parser(action.choices[name], level + 1)
    return lines


def render_reference() -> str:
    """The full ``docs/CLI.md`` text, rendered from the live parsers."""
    lines = [_HEADER]
    for parser in load_parsers():
        lines += _render_parser(parser, 2)
    text = "\n".join(lines)
    while "\n\n\n" in text:
        text = text.replace("\n\n\n", "\n\n")
    return text.rstrip("\n") + "\n"


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.cli_reference`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli_reference",
        description="Generate docs/CLI.md from the live argument parsers.",
    )
    parser.add_argument("--write", action="store_true", help="rewrite docs/CLI.md in place")
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 when the committed docs/CLI.md is stale",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="target file (default: <repo>/docs/CLI.md)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    target = args.output if args.output is not None else default_output_path()
    text = render_reference()

    if args.check:
        committed = target.read_text(encoding="utf-8") if target.exists() else None
        if committed == text:
            print(f"{target} is up to date")
            return 0
        print(
            f"error: {target} is stale; regenerate it with "
            "`python -m repro.cli_reference --write`",
            file=sys.stderr,
        )
        return 1
    if args.write:
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(text, encoding="utf-8")
        print(f"wrote {target}")
        return 0
    print(text, end="")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
