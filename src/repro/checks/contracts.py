"""Serialization-contract check: the engine's data plane, verified live.

Everything threaded through :class:`SimulationJob`, the process-pool
executors and the persistent :class:`ResultCache` must uphold a contract the
rest of the fabric assumes silently:

* **frozen dataclass** where the value participates in fingerprints (a
  mutable job could change identity after being cached);
* **fingerprintable** — ``canonical_payload`` must accept it and produce
  JSON-stable data;
* **pickle round-trip** — executors ship jobs and results across process
  boundaries;
* **dict round-trip** — the disk cache persists via ``to_dict`` and must
  rebuild an *equal* object via ``from_dict`` (losslessness is what makes
  sharded stores mergeable byte-for-byte).

This rule verifies all of it by import-and-introspect on representative
instances rather than by convention: each contract below names the type, the
obligations it carries, and a cheap example factory exercising non-default
state (mappings, nested dataclasses, observation counters).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, is_dataclass
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.checks.findings import Finding
from repro.checks.registry import Rule, register
from repro.checks.source import repo_root

__all__ = ["Contract", "SERIALIZATION_CONTRACT", "contract_registry", "check_contracts"]

SERIALIZATION_CONTRACT = "serialization-contract"


@dataclass(frozen=True, slots=True)
class Contract:
    """Obligations one engine data-plane type must uphold."""

    name: str
    load: Callable[[], type]
    example: Callable[[], Any]
    frozen: bool = True
    fingerprintable: bool = False
    pickle_round_trip: bool = True
    dict_round_trip: bool = False


def _job_types() -> dict[str, Any]:
    # One import site for every contract example; lazy so that importing
    # repro.checks never drags the simulator packages in.
    from repro.analysis.metrics import ConfigurationChange, RunResult
    from repro.core.configuration import AdaptiveConfigIndices, MachineSpec
    from repro.core.controllers.params import AdaptiveControlParams
    from repro.engine.job import SimulationJob
    from repro.scenarios.spec import ScenarioSpec
    from repro.workloads.characteristics import PhaseSpec, WorkloadProfile
    from repro.workloads.suites import get_workload

    return dict(locals())


def _example_profile() -> Any:
    types = _job_types()
    profile = types["get_workload"]("gcc")
    return profile


def _example_phased_profile() -> Any:
    types = _job_types()
    apsi = types["get_workload"]("apsi")
    return apsi


def contract_registry() -> list[Contract]:
    """Every contracted type; extend this list when the data plane grows."""
    types = _job_types()

    def example_job() -> Any:
        return types["SimulationJob"](
            profile=_example_profile(),
            window=2_000,
            warmup=1_000,
            phase_adaptive=True,
            control_overrides={"cache_hysteresis": 0.1},
            jitter_fraction=0.05,
        )

    def example_result() -> Any:
        return types["RunResult"](
            workload="gcc",
            machine="phase_adaptive",
            style="mcd_adaptive",
            committed_instructions=1_000,
            execution_time_ps=123_456,
            domain_cycles={"front_end": 10, "integer": 12},
            final_frequencies_ghz={"front_end": 1.0},
            cache_access_profile={"l1d": {"1": 3, "4": 2}},
            configuration_changes=[
                types["ConfigurationChange"](
                    committed_instructions=500,
                    time_ps=1_000,
                    domain="integer",
                    structure="int_queue",
                    configuration="iq32",
                    index=1,
                )
            ],
            compiled_trace_cache_hits=7,
        )

    return [
        Contract(
            name="repro.engine.job.SimulationJob",
            load=lambda: types["SimulationJob"],
            example=example_job,
            fingerprintable=True,
        ),
        Contract(
            name="repro.workloads.characteristics.WorkloadProfile",
            load=lambda: types["WorkloadProfile"],
            example=_example_phased_profile,
            fingerprintable=True,
            dict_round_trip=True,
        ),
        Contract(
            name="repro.workloads.characteristics.PhaseSpec",
            load=lambda: types["PhaseSpec"],
            example=lambda: types["PhaseSpec"](
                length=4_000, overrides={"load_fraction": 0.4}
            ),
            fingerprintable=True,
            dict_round_trip=True,
        ),
        Contract(
            name="repro.core.configuration.AdaptiveConfigIndices",
            load=lambda: types["AdaptiveConfigIndices"],
            example=lambda: types["AdaptiveConfigIndices"](1, 2, 32, 64),
            fingerprintable=True,
        ),
        Contract(
            name="repro.core.configuration.MachineSpec",
            load=lambda: types["MachineSpec"],
            example=lambda: types["SimulationJob"](
                profile=_example_profile()
            ).build_spec(),
            fingerprintable=True,
        ),
        Contract(
            name="repro.core.controllers.params.AdaptiveControlParams",
            load=lambda: types["AdaptiveControlParams"],
            example=lambda: types["AdaptiveControlParams"](
                interval_instructions=2_500
            ),
            fingerprintable=True,
        ),
        Contract(
            name="repro.analysis.metrics.ConfigurationChange",
            load=lambda: types["ConfigurationChange"],
            example=lambda: types["ConfigurationChange"](
                committed_instructions=100,
                time_ps=42,
                domain="load_store",
                structure="dcache",
                configuration="dc1",
                index=1,
            ),
            dict_round_trip=True,
        ),
        Contract(
            # The one deliberately mutable type: the processor fills it in
            # incrementally.  Its contract is lossless persistence, not
            # immutability.
            name="repro.analysis.metrics.RunResult",
            load=lambda: types["RunResult"],
            example=example_result,
            frozen=False,
            dict_round_trip=True,
        ),
        Contract(
            name="repro.scenarios.spec.ScenarioSpec",
            load=lambda: types["ScenarioSpec"],
            example=lambda: types["ScenarioSpec"](
                name="checks-example",
                family="checks",
                description="serialization-contract fixture",
                base="gcc",
                overrides={"load_fraction": 0.31},
                phases=(types["PhaseSpec"](length=3_000),),
            ),
            dict_round_trip=True,
        ),
    ]


def _anchor(cls: type) -> tuple[str, int]:
    """Repo-relative file and line of *cls*'s definition."""
    import inspect

    try:
        path = Path(inspect.getsourcefile(cls) or "")
        line = inspect.getsourcelines(cls)[1]
        relative = path.resolve().relative_to(repo_root().resolve()).as_posix()
        return relative, line
    except (OSError, TypeError, ValueError):
        return cls.__module__.replace(".", "/") + ".py", 0


def check_contracts(contracts: list[Contract] | None = None) -> Iterator[Finding]:
    """Verify every contract; findings anchor at the offending class."""
    from repro.engine.job import canonical_payload

    if contracts is None:
        contracts = contract_registry()

    for contract in contracts:
        cls = contract.load()
        path, line = _anchor(cls)

        def flag(message: str) -> Finding:
            return Finding(
                rule=SERIALIZATION_CONTRACT,
                path=path,
                line=line,
                message=f"{contract.name}: {message}",
            )

        if not is_dataclass(cls):
            yield flag("must be a dataclass (engine data-plane type)")
            continue
        params = getattr(cls, "__dataclass_params__", None)
        if contract.frozen and not (params is not None and params.frozen):
            yield flag(
                "must be declared @dataclass(frozen=True): it participates in "
                "fingerprints/caches and must not mutate after construction"
            )

        try:
            example = contract.example()
        except Exception as error:  # noqa: BLE001 - report, don't crash the run
            yield flag(f"example factory failed: {error!r}")
            continue

        if contract.fingerprintable:
            try:
                import json

                json.dumps(canonical_payload(example), sort_keys=True)
            except (TypeError, ValueError) as error:
                yield flag(
                    f"canonical_payload cannot fingerprint an instance ({error}); "
                    "every field must reduce to JSON-stable plain data"
                )

        if contract.pickle_round_trip:
            try:
                clone = pickle.loads(pickle.dumps(example))
            except Exception as error:  # noqa: BLE001
                yield flag(
                    f"pickle round-trip failed ({error!r}); executors ship this "
                    "type across process boundaries"
                )
            else:
                if clone != example:
                    yield flag(
                        "pickle round-trip is lossy (clone != original); "
                        "check __reduce__/__eq__"
                    )

        if contract.dict_round_trip:
            to_dict = getattr(cls, "to_dict", None)
            from_dict = getattr(cls, "from_dict", None)
            if to_dict is None or from_dict is None:
                yield flag(
                    "must define to_dict() and from_dict() (persisted by the "
                    "result cache / scenario files)"
                )
            else:
                try:
                    import json

                    data = example.to_dict()
                    rebuilt = cls.from_dict(json.loads(json.dumps(data)))
                except Exception as error:  # noqa: BLE001
                    yield flag(f"to_dict/from_dict round-trip raised {error!r}")
                else:
                    if rebuilt != example:
                        yield flag(
                            "to_dict/from_dict round-trip is lossy through JSON "
                            "(rebuilt != original); persistent stores would "
                            "diverge from live results"
                        )


def _check_project(root: Path) -> Iterator[Finding]:
    yield from check_contracts()


register(
    Rule(
        rule_id=SERIALIZATION_CONTRACT,
        description=(
            "engine data-plane types must be frozen dataclasses with lossless "
            "pickle and to_dict/from_dict round-trips (import-and-introspect)"
        ),
        check_project=_check_project,
    )
)
