"""``python -m repro.checks`` — run the project-invariant static analyzer.

Examples::

    python -m repro.checks                     # full rule set over src/repro
    python -m repro.checks --json              # machine-readable findings
    python -m repro.checks --rule det-wallclock src/repro/engine
    python -m repro.checks --list-rules        # every rule id + description
    python -m repro.checks --update-snapshots  # after a FINGERPRINT_VERSION bump

Exit status: 0 when no finding survives suppression, 1 on findings, 2 when
``--update-snapshots`` is refused (a schema change without the matching
``FINGERPRINT_VERSION`` bump — bump first, then re-run).
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Sequence

from repro.checks.registry import all_rules
from repro.checks.runner import run_checks
from repro.checks.schema_guard import SnapshotError

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.checks`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.checks",
        description=(
            "Static analysis of the repo's reproducibility invariants: "
            "determinism lint, fingerprint-schema guard, digest-purity audit "
            "and serialization contracts."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories for the source rules (default: src/repro)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="RULE-ID",
        help="run only this rule (repeatable; default: every rule)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit the report as JSON instead of text",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list every rule id with its description and exit",
    )
    parser.add_argument(
        "--update-snapshots",
        action="store_true",
        help=(
            "re-record the committed schema snapshots (refused when the "
            "schema changed without a FINGERPRINT_VERSION bump)"
        ),
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)

    if args.list_rules:
        rules = all_rules()
        width = max(len(rule_id) for rule_id in rules)
        for rule_id in sorted(rules):
            rule = rules[rule_id]
            print(f"{rule_id:<{width}}  [{rule.kind}] {rule.description}")
        return 0

    if args.update_snapshots:
        for rule_id in sorted(all_rules()):
            rule = all_rules()[rule_id]
            if rule.update_snapshot is None:
                continue
            try:
                print(rule.update_snapshot())
            except SnapshotError as error:
                print(f"error: {error}")
                return 2

    try:
        report = run_checks(
            paths=args.paths or None,
            rule_ids=args.rules,
        )
    except KeyError as error:
        print(f"error: {error.args[0]}")
        return 2

    if args.as_json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
