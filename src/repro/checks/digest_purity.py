"""Digest-purity audit: every ``RunResult`` field is deliberately classified.

``result_digest`` hashes the frozen pre-energy field set; ``energy_digest``
hashes *everything else* except the explicitly excluded fast-path
observability counters.  That complement rule is what lets observation-only
fields ride along without moving pinned timing digests — and it is also a
trap: a new counter added without thought lands in the energy digest by
default, and if its value depends on how the run was simulated (cache warm
vs. cold, process partitioning) it silently forks digests between hosts.

The committed classification (``src/repro/checks/snapshots/digest_fields.json``)
is therefore hand-maintained, not generated: adding a ``RunResult`` field
forces the author to say which class it belongs to —

* ``timing`` — hashed by ``result_digest`` (the frozen pre-energy set; this
  set must never grow),
* ``energy`` — hashed by ``energy_digest`` (deterministic activity counts),
* ``excluded`` — hashed by neither, ``compare=False`` (how the run was
  simulated, not what the machine did),
* ``process-dependent`` — excluded *and* reset by the result cache before
  persisting (``RunResult.PROCESS_DEPENDENT_FIELDS``).

The rule then cross-checks the classification against the live dataclass:
membership of the digest field tuples, ``compare=`` flags and the
process-dependent reset list must all agree with the recorded class.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any, Iterator

from repro.checks.findings import Finding
from repro.checks.registry import Rule, register
from repro.checks.source import repo_root

__all__ = [
    "CLASSIFICATION_PATH",
    "DIGEST_PURITY",
    "VALID_CLASSES",
    "check_classification",
    "load_classification",
]

DIGEST_PURITY = "digest-purity"

CLASSIFICATION_PATH = Path(__file__).resolve().parent / "snapshots" / "digest_fields.json"

VALID_CLASSES = ("timing", "energy", "excluded", "process-dependent")


def load_classification(path: Path | None = None) -> dict[str, str] | None:
    """The committed field classification, or ``None`` when missing."""
    path = path if path is not None else CLASSIFICATION_PATH
    if not path.exists():
        return None
    data = json.loads(path.read_text(encoding="utf-8"))
    return dict(data.get("fields", {}))


def _result_anchor() -> tuple[str, int]:
    """Repo-relative path and line of the ``RunResult`` class definition."""
    metrics_path = repo_root() / "src" / "repro" / "analysis" / "metrics.py"
    try:
        text = metrics_path.read_text(encoding="utf-8")
        for lineno, line in enumerate(text.splitlines(), 1):
            if re.match(r"class RunResult\b", line):
                return "src/repro/analysis/metrics.py", lineno
    except OSError:
        pass
    return "src/repro/analysis/metrics.py", 0


def check_classification(
    classification: dict[str, str] | None = None,
) -> Iterator[Finding]:
    """Audit the classification against the live ``RunResult`` dataclass."""
    from dataclasses import fields

    from repro.analysis.digests import (
        FAST_PATH_OBSERVABILITY_FIELDS,
        TIMING_DIGEST_FIELDS,
    )
    from repro.analysis.metrics import RunResult

    if classification is None:
        classification = load_classification()
    path, line = _result_anchor()

    if classification is None:
        yield Finding(
            rule=DIGEST_PURITY,
            path=path,
            line=line,
            message=(
                "no committed digest-field classification "
                "(src/repro/checks/snapshots/digest_fields.json is missing)"
            ),
        )
        return

    declared = {spec.name: spec for spec in fields(RunResult)}

    for name, klass in sorted(classification.items()):
        if klass not in VALID_CLASSES:
            yield Finding(
                rule=DIGEST_PURITY,
                path=path,
                line=line,
                message=(
                    f"digest_fields.json classifies {name!r} as {klass!r}; "
                    f"valid classes are {', '.join(VALID_CLASSES)}"
                ),
            )
        if name not in declared:
            yield Finding(
                rule=DIGEST_PURITY,
                path=path,
                line=line,
                message=(
                    f"digest_fields.json classifies {name!r}, which is not a "
                    "RunResult field; remove the stale entry"
                ),
            )

    for name, spec in declared.items():
        klass = classification.get(name)
        if klass is None:
            yield Finding(
                rule=DIGEST_PURITY,
                path=path,
                line=line,
                message=(
                    f"new RunResult field {name!r} is not classified; add it to "
                    "src/repro/checks/snapshots/digest_fields.json as timing/"
                    "energy/excluded/process-dependent (and bump "
                    "FINGERPRINT_VERSION — the schema guard will insist)"
                ),
            )
            continue
        in_timing = name in TIMING_DIGEST_FIELDS
        in_excluded = name in FAST_PATH_OBSERVABILITY_FIELDS
        process_dependent = name in RunResult.PROCESS_DEPENDENT_FIELDS
        compares = spec.compare

        if klass == "timing":
            if not in_timing:
                yield Finding(
                    rule=DIGEST_PURITY,
                    path=path,
                    line=line,
                    message=(
                        f"{name!r} is classified 'timing' but is missing from "
                        "TIMING_DIGEST_FIELDS — the timing digest set is frozen "
                        "and must never grow; reclassify the field"
                    ),
                )
        elif in_timing:
            yield Finding(
                rule=DIGEST_PURITY,
                path=path,
                line=line,
                message=(
                    f"{name!r} is in TIMING_DIGEST_FIELDS but classified "
                    f"{klass!r}; the classes must agree"
                ),
            )

        if klass in ("excluded", "process-dependent"):
            if not in_excluded:
                yield Finding(
                    rule=DIGEST_PURITY,
                    path=path,
                    line=line,
                    message=(
                        f"{name!r} is classified {klass!r} but is hashed by the "
                        "energy digest; add it to FAST_PATH_OBSERVABILITY_FIELDS "
                        "or it will fork digests across simulation modes"
                    ),
                )
            if compares:
                yield Finding(
                    rule=DIGEST_PURITY,
                    path=path,
                    line=line,
                    message=(
                        f"{name!r} is classified {klass!r} but participates in "
                        "RunResult equality; declare it with "
                        "field(..., compare=False)"
                    ),
                )
        else:
            if in_excluded:
                yield Finding(
                    rule=DIGEST_PURITY,
                    path=path,
                    line=line,
                    message=(
                        f"{name!r} is in FAST_PATH_OBSERVABILITY_FIELDS but "
                        f"classified {klass!r}; the classes must agree"
                    ),
                )
            if not compares:
                yield Finding(
                    rule=DIGEST_PURITY,
                    path=path,
                    line=line,
                    message=(
                        f"{name!r} is compare=False but classified {klass!r}; "
                        "digest-hashed fields must participate in equality"
                    ),
                )

        if klass == "process-dependent" and not process_dependent:
            yield Finding(
                rule=DIGEST_PURITY,
                path=path,
                line=line,
                message=(
                    f"{name!r} is classified 'process-dependent' but is missing "
                    "from RunResult.PROCESS_DEPENDENT_FIELDS, so the result "
                    "cache will not canonicalise it and merged stores can "
                    "disagree byte-for-byte"
                ),
            )
        if process_dependent and klass != "process-dependent":
            yield Finding(
                rule=DIGEST_PURITY,
                path=path,
                line=line,
                message=(
                    f"{name!r} is in RunResult.PROCESS_DEPENDENT_FIELDS but "
                    f"classified {klass!r}; the classes must agree"
                ),
            )


def _check_project(root: Path) -> Iterator[Finding]:
    yield from check_classification()


register(
    Rule(
        rule_id=DIGEST_PURITY,
        description=(
            "every RunResult field must be explicitly classified as timing/"
            "energy/excluded/process-dependent, consistent with the digest sets"
        ),
        check_project=_check_project,
    )
)
