"""Determinism lint: the AST rules behind the repo's bit-identical gates.

Every golden digest, fingerprint and mergeable cache store rests on the
simulator being a pure function of its inputs.  These rules flag the ways
that property has broken (or nearly broken) in this repo's history:

* ``det-global-random`` — module-level ``random.*`` calls share one global,
  ambiently seeded RNG; runs stop being a function of the job.
* ``det-unseeded-random`` — ``random.Random()`` without an explicit seed
  draws its state from OS entropy (``SystemRandom`` always does).
* ``det-builtin-hash`` — builtin ``hash()`` on strings/bytes is salted per
  process (PYTHONHASHSEED), the exact bug PR 2 fixed in the trace and
  jitter RNG seeding; use ``zlib.crc32`` or ``hashlib`` instead.
* ``det-wallclock`` — ``time.time()``, ``datetime.now()``, ``os.urandom``
  and friends inject the host's clock or entropy into the run.
* ``det-unordered-iter`` — iterating a ``set`` / ``glob`` / ``os.listdir``
  result leaks arbitrary ordering into whatever the loop builds; anything
  that flows into digests, fingerprints, cache writes or rendered reports
  must iterate ``sorted(...)``.

The lint is deliberately scope-coarse: it flags every occurrence under the
scanned tree and relies on reasoned inline
``# repro: allow(<rule>) — <why this one is safe>`` suppressions for the
(rare, reviewed) sites where the pattern is harmless.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.checks.findings import Finding
from repro.checks.registry import Rule, register
from repro.checks.source import SourceFile

__all__ = [
    "DET_BUILTIN_HASH",
    "DET_GLOBAL_RANDOM",
    "DET_UNORDERED_ITER",
    "DET_UNSEEDED_RANDOM",
    "DET_WALLCLOCK",
]

DET_GLOBAL_RANDOM = "det-global-random"
DET_UNSEEDED_RANDOM = "det-unseeded-random"
DET_BUILTIN_HASH = "det-builtin-hash"
DET_WALLCLOCK = "det-wallclock"
DET_UNORDERED_ITER = "det-unordered-iter"

#: Module-level functions of :mod:`random` that use the shared global RNG.
_GLOBAL_RANDOM_FNS = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gammavariate",
        "gauss",
        "getrandbits",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)

#: Dotted call targets that read the host clock or OS entropy.
_WALLCLOCK_CALLS = frozenset(
    {
        "datetime.date.today",
        "datetime.datetime.now",
        "datetime.datetime.today",
        "datetime.datetime.utcnow",
        "os.urandom",
        "secrets.randbits",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "time.time",
        "time.time_ns",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)

#: ``x.<method>()`` calls whose result order depends on the filesystem.
_FS_ORDER_METHODS = frozenset({"glob", "iglob", "iterdir", "rglob"})

#: Dotted call targets whose result order depends on the filesystem.
_FS_ORDER_CALLS = frozenset({"glob.glob", "glob.iglob", "os.listdir", "os.scandir"})

#: Builtins that consume an iterable without exposing its order.
_ORDER_INSENSITIVE_CONSUMERS = frozenset(
    {"all", "any", "frozenset", "len", "max", "min", "set", "sorted", "sum"}
)


class _DeterminismVisitor(ast.NodeVisitor):
    """One pass over a module, accumulating findings."""

    def __init__(self, source: SourceFile) -> None:
        self.source = source
        self.findings: list[Finding] = []
        #: local alias -> real module name, for ``import x``/``import x as y``.
        self.module_aliases: dict[str, str] = {}
        #: local name -> dotted origin, for ``from x import y [as z]``.
        self.from_imports: dict[str, str] = {}
        #: module-level names bound to an unordered expression.
        self.unordered_names: set[str] = set()
        #: comprehension iterables exempted by an order-insensitive consumer.
        self._exempt: set[int] = set()

    # ------------------------------------------------------------- helpers

    def _flag(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                rule=rule,
                path=self.source.relative,
                line=getattr(node, "lineno", 0),
                message=message,
            )
        )

    def _dotted(self, node: ast.expr) -> str | None:
        """Resolve a call target to its dotted import path, if statically known."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = node.id
        if base in self.module_aliases:
            parts.append(self.module_aliases[base])
        elif base in self.from_imports:
            parts.append(self.from_imports[base])
        else:
            parts.append(base)
        return ".".join(reversed(parts))

    def _is_unordered(self, node: ast.expr) -> bool:
        """Does *node* evaluate to an arbitrarily ordered iterable?"""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name) and node.id in self.unordered_names:
            return True
        if isinstance(node, ast.Call):
            dotted = self._dotted(node.func)
            if dotted in {"set", "frozenset"} or dotted in _FS_ORDER_CALLS:
                return True
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _FS_ORDER_METHODS
            ):
                return True
        return False

    def _unordered_label(self, node: ast.expr) -> str:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "a set"
        if isinstance(node, ast.Name):
            return f"{node.id} (bound to an unordered value at module level)"
        if isinstance(node, ast.Call):
            dotted = self._dotted(node.func)
            if dotted in {"set", "frozenset"}:
                return f"{dotted}(...)"
            if dotted in _FS_ORDER_CALLS:
                return f"{dotted}(...)"
            if isinstance(node.func, ast.Attribute):
                return f".{node.func.attr}(...)"
        return "an unordered iterable"

    def _check_iteration(self, iterable: ast.expr, site: ast.AST) -> None:
        if id(iterable) in self._exempt:
            return
        if self._is_unordered(iterable):
            self._flag(
                DET_UNORDERED_ITER,
                site,
                f"iteration over {self._unordered_label(iterable)} has no "
                "deterministic order; wrap it in sorted(...) before anything "
                "ordering-visible (digests, fingerprints, cache writes, reports)",
            )

    # ------------------------------------------------------------- imports

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.module_aliases[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            for alias in node.names:
                self.from_imports[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
        self.generic_visit(node)

    # ----------------------------------------------------------- bindings

    def visit_Assign(self, node: ast.Assign) -> None:
        # Track module-level NAME = <unordered expr> so later `for x in NAME`
        # is caught; one level of indirection is enough for this codebase.
        if node.col_offset == 0 and self._is_unordered(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.unordered_names.add(target.id)
        self.generic_visit(node)

    # -------------------------------------------------------------- calls

    def visit_Call(self, node: ast.Call) -> None:
        dotted = self._dotted(node.func)

        if dotted is not None:
            module, _, attribute = dotted.rpartition(".")
            if module == "random" and attribute in _GLOBAL_RANDOM_FNS:
                self._flag(
                    DET_GLOBAL_RANDOM,
                    node,
                    f"random.{attribute}() uses the shared, ambiently seeded "
                    "global RNG; construct random.Random(seed) from job state "
                    "instead",
                )
            elif dotted == "random.SystemRandom":
                self._flag(
                    DET_UNSEEDED_RANDOM,
                    node,
                    "random.SystemRandom draws from OS entropy and can never "
                    "be reproduced; use random.Random(seed)",
                )
            elif dotted == "random.Random" and not node.args:
                self._flag(
                    DET_UNSEEDED_RANDOM,
                    node,
                    "random.Random() without an explicit seed argument is "
                    "seeded from OS entropy; derive the seed from job state",
                )
            elif dotted in _WALLCLOCK_CALLS:
                self._flag(
                    DET_WALLCLOCK,
                    node,
                    f"{dotted}() injects the host clock/entropy into the run; "
                    "results must be a pure function of the job",
                )
            elif dotted == "hash":
                self._flag(
                    DET_BUILTIN_HASH,
                    node,
                    "builtin hash() is salted per process for str/bytes "
                    "(PYTHONHASHSEED); use zlib.crc32 or hashlib for anything "
                    "that feeds seeding, fingerprints or digests",
                )

        # Comprehension arguments of order-insensitive consumers are exempt
        # from the unordered-iteration rule: sorted(f(x) for x in some_set)
        # re-establishes an order, and min/sum/any/... never expose one.
        if dotted in _ORDER_INSENSITIVE_CONSUMERS:
            for argument in node.args:
                if isinstance(argument, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
                    for generator in argument.generators:
                        self._exempt.add(id(generator.iter))
                else:
                    self._exempt.add(id(argument))
        self.generic_visit(node)

    # ---------------------------------------------------------- iteration

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter, node)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iteration(node.iter, node)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iteration(node.iter, node.iter)
        self.generic_visit(node)


def _check_determinism(source: SourceFile) -> Iterator[Finding]:
    visitor = _DeterminismVisitor(source)
    visitor.visit(source.tree)
    yield from visitor.findings


def _source_rule(rule_id: str, description: str) -> None:
    # All five determinism rules share one visitor pass; each registered rule
    # filters the shared findings so `--rule det-wallclock` behaves as named.
    def check(source: SourceFile, rule_id: str = rule_id) -> Iterator[Finding]:
        for finding in _check_determinism(source):
            if finding.rule == rule_id:
                yield finding

    register(Rule(rule_id=rule_id, description=description, check_source=check))


_source_rule(
    DET_GLOBAL_RANDOM,
    "module-level random.* calls use the shared global RNG",
)
_source_rule(
    DET_UNSEEDED_RANDOM,
    "random.Random()/SystemRandom without an explicit seed is OS-entropy seeded",
)
_source_rule(
    DET_BUILTIN_HASH,
    "builtin hash() is per-process salted; never seed/fingerprint/digest with it",
)
_source_rule(
    DET_WALLCLOCK,
    "time.time()/datetime.now()/os.urandom inject host clock or entropy",
)
_source_rule(
    DET_UNORDERED_ITER,
    "iteration over set/glob/listdir results has no deterministic order",
)
