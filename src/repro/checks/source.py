"""Source loading for the static checks: files, ASTs and comment tokens."""

from __future__ import annotations

import ast
import io
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

__all__ = ["SourceFile", "iter_python_files", "repo_root"]


def repo_root() -> Path:
    """The repository root (``src/repro/checks/`` is three levels below it)."""
    return Path(__file__).resolve().parents[3]


@dataclass(slots=True)
class SourceFile:
    """One parsed python file: text, AST and per-line comments."""

    path: Path
    relative: str
    text: str
    tree: ast.Module
    #: 1-based line number -> comment text (including the leading ``#``).
    comments: dict[int, str] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path, root: Path | None = None) -> "SourceFile":
        """Parse *path*; raises ``SyntaxError`` on unparsable source."""
        root = root if root is not None else repo_root()
        text = path.read_text(encoding="utf-8")
        try:
            relative = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            relative = path.as_posix()
        tree = ast.parse(text, filename=str(path))
        comments: dict[int, str] = {}
        try:
            for token in tokenize.generate_tokens(io.StringIO(text).readline):
                if token.type == tokenize.COMMENT:
                    comments[token.start[0]] = token.string
        except tokenize.TokenError:
            # ast.parse accepted the file, so a tokenizer hiccup only costs
            # comment (suppression) visibility, never the findings themselves.
            pass
        return cls(path=path, relative=relative, text=text, tree=tree, comments=comments)

    def line(self, lineno: int) -> str:
        """The 1-based source line, or ``""`` out of range."""
        lines = self.text.splitlines()
        if 1 <= lineno <= len(lines):
            return lines[lineno - 1]
        return ""


def iter_python_files(paths: list[Path]) -> Iterator[Path]:
    """Every ``*.py`` file under *paths* (files pass through), sorted.

    Sorted traversal keeps the report order and the suppression bookkeeping
    deterministic — the same property the determinism lint enforces on the
    tree it scans.
    """
    seen: list[Path] = []
    for path in paths:
        if path.is_dir():
            seen.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            seen.append(path)
    yield from sorted(set(seen))
