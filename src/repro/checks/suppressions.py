"""Inline suppressions: ``# repro: allow(<rule-id>) — <reason>``.

A finding is suppressed when a well-formed allow comment naming its rule sits
on the finding's own line or on the line directly above it (a standalone
comment line).  The reason is mandatory — an allow without one is itself a
finding — and every allow must actually suppress something: stale allows
surface as ``checks-unused-suppression`` so the baseline cannot silently rot.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable

from repro.checks.findings import Finding
from repro.checks.source import SourceFile

__all__ = [
    "MALFORMED_SUPPRESSION",
    "UNUSED_SUPPRESSION",
    "Suppression",
    "apply_suppressions",
    "collect_suppressions",
]

#: Meta-rule ids (registered in :mod:`repro.checks.registry`).  Findings from
#: these rules are never themselves suppressible: an allow comment must not
#: be able to excuse its own malformedness.
MALFORMED_SUPPRESSION = "checks-malformed-suppression"
UNUSED_SUPPRESSION = "checks-unused-suppression"

_ALLOW_MARKER = re.compile(r"#\s*repro:\s*allow\b")
_ALLOW_COMMENT = re.compile(
    r"#\s*repro:\s*allow\(\s*(?P<rules>[a-z0-9-]+(?:\s*,\s*[a-z0-9-]+)*)\s*\)"
    r"\s*(?:—|--|-)\s*(?P<reason>\S.*)$"
)


@dataclass(slots=True)
class Suppression:
    """One parsed allow comment."""

    path: str
    line: int
    rules: tuple[str, ...]
    reason: str
    used: bool = False


def collect_suppressions(
    source: SourceFile, known_rules: Iterable[str]
) -> tuple[list[Suppression], list[Finding]]:
    """Parse every allow comment in *source*.

    Returns the well-formed suppressions plus findings for malformed ones
    (missing reason, unparsable syntax, or an unknown rule id).
    """
    known = set(known_rules)
    suppressions: list[Suppression] = []
    findings: list[Finding] = []
    for lineno in sorted(source.comments):
        comment = source.comments[lineno]
        if not _ALLOW_MARKER.search(comment):
            continue
        match = _ALLOW_COMMENT.search(comment)
        if not match:
            findings.append(
                Finding(
                    rule=MALFORMED_SUPPRESSION,
                    path=source.relative,
                    line=lineno,
                    message=(
                        "malformed allow comment; use "
                        "'# repro: allow(<rule-id>) — <reason>' "
                        "(the reason is mandatory)"
                    ),
                )
            )
            continue
        rules = tuple(part.strip() for part in match.group("rules").split(","))
        unknown = [rule for rule in rules if rule not in known]
        if unknown:
            findings.append(
                Finding(
                    rule=MALFORMED_SUPPRESSION,
                    path=source.relative,
                    line=lineno,
                    message=(
                        f"allow comment names unknown rule(s) {', '.join(unknown)}; "
                        "see `python -m repro.checks --list-rules`"
                    ),
                )
            )
            continue
        suppressions.append(
            Suppression(
                path=source.relative,
                line=lineno,
                rules=rules,
                reason=match.group("reason").strip(),
            )
        )
    return suppressions, findings


def apply_suppressions(
    findings: list[Finding],
    suppressions: list[Suppression],
    active_rules: set[str] | None = None,
) -> tuple[list[Finding], int]:
    """Drop findings covered by an allow comment; flag stale allows.

    Returns the surviving findings (including one ``checks-unused-suppression``
    per allow that matched nothing) and the number of findings suppressed.
    *active_rules* limits the staleness check to allows whose rules all ran
    this invocation — a ``--rule`` subset must not flag allows it never gave
    a chance to match.
    """
    by_site: dict[tuple[str, int], list[Suppression]] = {}
    for suppression in suppressions:
        # An allow covers its own line and the line below it (standalone
        # comment directly above the flagged statement).
        by_site.setdefault((suppression.path, suppression.line), []).append(suppression)
        by_site.setdefault((suppression.path, suppression.line + 1), []).append(suppression)

    kept: list[Finding] = []
    suppressed = 0
    for finding in findings:
        matched = False
        for suppression in by_site.get((finding.path, finding.line), []):
            if finding.rule in suppression.rules:
                suppression.used = True
                matched = True
        if matched:
            suppressed += 1
        else:
            kept.append(finding)

    for suppression in suppressions:
        if active_rules is not None and not set(suppression.rules) <= active_rules:
            continue
        if not suppression.used:
            kept.append(
                Finding(
                    rule=UNUSED_SUPPRESSION,
                    path=suppression.path,
                    line=suppression.line,
                    message=(
                        f"allow({', '.join(suppression.rules)}) suppresses nothing "
                        "on this or the next line; delete the stale comment"
                    ),
                )
            )
    return kept, suppressed
