"""The rule registry: every check rule, by stable id.

Two rule shapes exist.  *Source* rules get one parsed file at a time and
report per-line findings (the determinism lint).  *Project* rules ignore the
scanned files and audit the imported package itself — snapshots, digest
partitions, serialization contracts — via import-and-introspect.

Rule modules are imported lazily by :func:`all_rules` so that loading
``repro.checks`` never drags in the simulator packages; a rule only imports
``repro.engine``/``repro.analysis`` when it actually runs.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator

from repro.checks.findings import Finding
from repro.checks.source import SourceFile
from repro.checks.suppressions import MALFORMED_SUPPRESSION, UNUSED_SUPPRESSION

__all__ = ["Rule", "all_rules", "register", "rule_ids"]

#: Modules that register rules on import, in registration order.
_RULE_MODULES = (
    "repro.checks.determinism",
    "repro.checks.schema_guard",
    "repro.checks.digest_purity",
    "repro.checks.contracts",
)


@dataclass(frozen=True, slots=True)
class Rule:
    """One registered check rule.

    Exactly one of ``check_source`` / ``check_project`` is set; meta rules
    (produced by the suppression machinery itself) set neither.
    """

    rule_id: str
    description: str
    check_source: Callable[[SourceFile], Iterator[Finding]] | None = None
    check_project: Callable[[Path], Iterator[Finding]] | None = None
    #: Project rules that maintain a committed snapshot expose an updater
    #: (``--update-snapshots``); it returns a human-readable status line and
    #: raises :class:`~repro.checks.schema_guard.SnapshotError` on refusal.
    update_snapshot: Callable[[], str] | None = None

    @property
    def kind(self) -> str:
        if self.check_source is not None:
            return "source"
        if self.check_project is not None:
            return "project"
        return "meta"


_REGISTRY: dict[str, Rule] = {
    "checks-parse-error": Rule(
        rule_id="checks-parse-error",
        description="a scanned file failed to parse; the lint cannot vouch for it",
    ),
    MALFORMED_SUPPRESSION: Rule(
        rule_id=MALFORMED_SUPPRESSION,
        description=(
            "an inline '# repro: allow(...)' comment is unparsable, lacks the "
            "mandatory reason, or names an unknown rule"
        ),
    ),
    UNUSED_SUPPRESSION: Rule(
        rule_id=UNUSED_SUPPRESSION,
        description="an inline allow comment suppresses no finding and must be deleted",
    ),
}


def register(rule: Rule) -> Rule:
    """Add *rule* to the registry (module import time); ids must be unique."""
    if rule.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.rule_id!r}")
    _REGISTRY[rule.rule_id] = rule
    return rule


def all_rules() -> dict[str, Rule]:
    """Every registered rule by id, importing the rule modules on first use."""
    for module in _RULE_MODULES:
        importlib.import_module(module)
    return dict(_REGISTRY)


def rule_ids() -> list[str]:
    """Sorted ids of every rule, meta rules included."""
    return sorted(all_rules())


def resolve(selected: Iterable[str] | None) -> list[Rule]:
    """The rules to run: all of them, or the ``--rule`` subset (validated)."""
    rules = all_rules()
    if selected is None:
        chosen = list(rules)
    else:
        unknown = sorted(set(selected) - set(rules))
        if unknown:
            raise KeyError(
                f"unknown rule id(s): {', '.join(unknown)}; "
                "see `python -m repro.checks --list-rules`"
            )
        chosen = list(dict.fromkeys(selected))
    return [rules[rule_id] for rule_id in sorted(chosen)]
