"""``python -m repro.checks`` — see :mod:`repro.checks.cli`."""

from repro.checks.cli import main

raise SystemExit(main())
