"""Running the rule set over a tree and folding in suppressions."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from repro.checks.findings import Finding
from repro.checks.registry import Rule, resolve
from repro.checks.registry import rule_ids as registered_rule_ids
from repro.checks.source import SourceFile, iter_python_files, repo_root
from repro.checks.suppressions import (
    apply_suppressions,
    collect_suppressions,
)

__all__ = ["CheckReport", "default_paths", "run_checks"]


@dataclass(slots=True)
class CheckReport:
    """Outcome of one ``repro.checks`` run."""

    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    rules_run: list[str] = field(default_factory=list)
    suppressed: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form for ``--json`` output."""
        return {
            "ok": self.ok,
            "files_scanned": self.files_scanned,
            "rules_run": list(self.rules_run),
            "suppressed": self.suppressed,
            "findings": [finding.to_dict() for finding in self.findings],
        }

    def render(self) -> str:
        """Human-readable report: one line per finding plus a summary."""
        lines = [finding.render() for finding in self.findings]
        status = "FAIL" if self.findings else "OK"
        lines.append(
            f"{status}: {len(self.findings)} finding(s) "
            f"({self.files_scanned} file(s) scanned, "
            f"{len(self.rules_run)} rule(s), "
            f"{self.suppressed} suppression(s) honoured)"
        )
        return "\n".join(lines)


def default_paths() -> list[Path]:
    """The tree the determinism lint guards by default: ``src/repro``."""
    return [repo_root() / "src" / "repro"]


def run_checks(
    paths: Iterable[Path] | None = None,
    rule_ids: Iterable[str] | None = None,
) -> CheckReport:
    """Run the selected rules (default: all) over *paths* (default: src/repro).

    Source rules scan every ``*.py`` file under the paths; project rules run
    once against the repository.  Suppression comments are honoured for
    source-rule findings only — project rules guard package-level invariants
    with no meaningful suppression site, so their findings always surface.
    """
    rules: list[Rule] = resolve(None if rule_ids is None else list(rule_ids))
    source_rules = [rule for rule in rules if rule.check_source is not None]
    project_rules = [rule for rule in rules if rule.check_project is not None]
    # Allow comments are validated against *every* registered rule: a subset
    # run must not misread a legitimate allow for an unselected rule as
    # naming an unknown one.
    known_ids = registered_rule_ids()
    active_ids = {rule.rule_id for rule in rules}

    report = CheckReport(rules_run=[rule.rule_id for rule in rules])
    raw_findings: list[Finding] = []
    suppressions = []

    scan_paths = list(paths) if paths is not None else default_paths()
    if source_rules:
        for file_path in iter_python_files(scan_paths):
            try:
                source = SourceFile.load(file_path)
            except (SyntaxError, UnicodeDecodeError) as error:
                raw_findings.append(
                    Finding(
                        rule="checks-parse-error",
                        path=str(file_path),
                        line=getattr(error, "lineno", 0) or 0,
                        message=f"cannot parse file: {error}",
                    )
                )
                continue
            report.files_scanned += 1
            file_suppressions, malformed = collect_suppressions(source, known_ids)
            suppressions.extend(file_suppressions)
            raw_findings.extend(malformed)
            for rule in source_rules:
                raw_findings.extend(rule.check_source(source))

    kept, suppressed = apply_suppressions(raw_findings, suppressions, active_ids)
    report.suppressed = suppressed

    root = repo_root()
    for rule in project_rules:
        kept.extend(rule.check_project(root))

    report.findings = sorted(kept, key=Finding.sort_key)
    return report
