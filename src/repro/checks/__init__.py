"""Project-invariant static analysis (``python -m repro.checks``).

Every optimisation PR in this repo is gated on bit-identical golden digests,
and the distributed fabric merges result stores produced on different hosts.
The invariants that make that safe — no unseeded or salted randomness, a
``FINGERPRINT_VERSION`` bump on every schema change, process-dependent
counters excluded from digests, frozen/round-trippable data-plane types —
used to live in reviewers' heads.  This subsystem enforces them mechanically:

* rule framework — registry (:mod:`repro.checks.registry`), per-finding
  source locations (:mod:`repro.checks.findings`), reasoned inline
  ``# repro: allow(<rule-id>) — <reason>`` suppressions
  (:mod:`repro.checks.suppressions`) and committed snapshots under
  ``src/repro/checks/snapshots/``;
* determinism lint (:mod:`repro.checks.determinism`) — AST rules against
  global/unseeded RNGs, builtin ``hash()``, wall-clock reads and unordered
  ``set``/``glob`` iteration;
* fingerprint-schema guard (:mod:`repro.checks.schema_guard`) — the live
  ``SimulationJob``/``RunResult`` schema versus a snapshot keyed by
  ``FINGERPRINT_VERSION``;
* digest-purity audit (:mod:`repro.checks.digest_purity`) — every
  ``RunResult`` field explicitly classified into the digest partition;
* serialization contracts (:mod:`repro.checks.contracts`) — the engine's
  data-plane types verified frozen and losslessly round-trippable by
  import-and-introspect.

The CI ``checks`` job runs ``python -m repro.checks`` and fails on any
unsuppressed finding or stale snapshot.
"""

from repro.checks.findings import Finding
from repro.checks.registry import Rule, all_rules, rule_ids
from repro.checks.runner import CheckReport, run_checks
from repro.checks.schema_guard import SnapshotError

__all__ = [
    "CheckReport",
    "Finding",
    "Rule",
    "SnapshotError",
    "all_rules",
    "rule_ids",
    "run_checks",
]
