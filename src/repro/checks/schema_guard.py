"""Fingerprint-schema guard: no schema change without a version bump.

``FINGERPRINT_VERSION`` is the protocol number of every persistent result
store: workers refuse to merge stores recorded under another version, and a
forgotten bump silently poisons merged caches with results computed under a
different schema.  The repo has bumped it four times by hand (2→3→4→5), each
time because a reviewer remembered; this rule remembers instead.

The committed snapshot (``src/repro/checks/snapshots/fingerprint_schema.json``)
records, keyed by the version that produced it, everything fingerprint- or
store-relevant that is introspectable: :class:`SimulationJob`'s field set and
payload key structure, :class:`RunResult`'s field set,
``PROCESS_DEPENDENT_FIELDS`` and the timing-digest field partition.  The rule
fails when the live schema differs from the snapshot under the *same*
version (change without bump) or when the version moved without the snapshot
(bump without ``--update-snapshots``).  ``--update-snapshots`` itself refuses
to record a schema change that was not accompanied by a bump, so the
invariant cannot be clicked away.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any, Iterator

from repro.checks.findings import Finding
from repro.checks.registry import Rule, register
from repro.checks.source import repo_root

__all__ = [
    "SCHEMA_GUARD",
    "SNAPSHOT_PATH",
    "SnapshotError",
    "current_schema",
    "load_snapshot",
    "update_snapshot",
]

SCHEMA_GUARD = "schema-guard"

SNAPSHOT_PATH = Path(__file__).resolve().parent / "snapshots" / "fingerprint_schema.json"

#: Schema sections and what a drift in each one means.
_SECTIONS = {
    "simulation_job_fields": "SimulationJob dataclass fields (all fingerprinted)",
    "payload_keys": "top-level fingerprint payload keys",
    "run_keys": "fingerprint payload 'run' sub-keys",
    "run_result_fields": "RunResult dataclass fields (cached result schema)",
    "process_dependent_fields": "RunResult.PROCESS_DEPENDENT_FIELDS",
    "timing_digest_fields": "TIMING_DIGEST_FIELDS (golden timing digest set)",
}


class SnapshotError(RuntimeError):
    """``--update-snapshots`` refused: the change needs a version bump first."""


def current_schema() -> dict[str, Any]:
    """Introspect the live fingerprint/store schema.

    Imports the simulator packages lazily (this module must be importable
    without them) and builds one real fingerprint payload so the guarded key
    structure is exactly what :meth:`SimulationJob.payload` emits, not a
    parallel description that could drift.
    """
    from dataclasses import fields

    from repro.analysis.digests import TIMING_DIGEST_FIELDS
    from repro.analysis.metrics import RunResult
    from repro.engine.job import FINGERPRINT_VERSION, SimulationJob
    from repro.workloads import get_workload

    job = SimulationJob(profile=get_workload("gcc"), window=1_000, warmup=500)
    payload = job.payload()
    return {
        "fingerprint_version": FINGERPRINT_VERSION,
        "simulation_job_fields": sorted(spec.name for spec in fields(SimulationJob)),
        "payload_keys": sorted(payload),
        "run_keys": sorted(payload["run"]),
        "run_result_fields": sorted(spec.name for spec in fields(RunResult)),
        "process_dependent_fields": sorted(RunResult.PROCESS_DEPENDENT_FIELDS),
        "timing_digest_fields": sorted(TIMING_DIGEST_FIELDS),
    }


def load_snapshot(path: Path | None = None) -> dict[str, Any] | None:
    """The committed snapshot, or ``None`` when it has never been recorded."""
    path = path if path is not None else SNAPSHOT_PATH
    if not path.exists():
        return None
    return json.loads(path.read_text(encoding="utf-8"))


def _version_anchor() -> tuple[str, int]:
    """Repo-relative path and line of the ``FINGERPRINT_VERSION`` definition."""
    job_path = repo_root() / "src" / "repro" / "engine" / "job.py"
    try:
        for lineno, line in enumerate(job_path.read_text(encoding="utf-8").splitlines(), 1):
            if re.match(r"FINGERPRINT_VERSION\s*=", line):
                return "src/repro/engine/job.py", lineno
    except OSError:
        pass
    return "src/repro/engine/job.py", 0


def _diff_sections(
    snapshot: dict[str, Any], current: dict[str, Any]
) -> list[tuple[str, list[str], list[str]]]:
    """Per-section (name, added, removed) for every drifted section."""
    drifted = []
    for section in _SECTIONS:
        recorded = set(snapshot.get(section, []))
        live = set(current.get(section, []))
        if recorded != live:
            drifted.append(
                (section, sorted(live - recorded), sorted(recorded - live))
            )
    return drifted


def _describe_drift(drift: list[tuple[str, list[str], list[str]]]) -> str:
    parts = []
    for section, added, removed in drift:
        changes = []
        if added:
            changes.append(f"added {', '.join(added)}")
        if removed:
            changes.append(f"removed {', '.join(removed)}")
        parts.append(f"{section}: {'; '.join(changes)}")
    return " | ".join(parts)


def check_schema(
    current: dict[str, Any] | None = None,
    snapshot: dict[str, Any] | None = None,
    *,
    snapshot_path: Path | None = None,
) -> Iterator[Finding]:
    """Compare the live schema against the committed snapshot.

    *current* and *snapshot* are injectable for the test fixtures; the
    defaults introspect the package and read the committed file.
    """
    current = current if current is not None else current_schema()
    if snapshot is None:
        snapshot = load_snapshot(snapshot_path)
    path, line = _version_anchor()

    if snapshot is None:
        yield Finding(
            rule=SCHEMA_GUARD,
            path=path,
            line=line,
            message=(
                "no committed fingerprint-schema snapshot; record one with "
                "`python -m repro.checks --update-snapshots`"
            ),
        )
        return

    drift = _diff_sections(snapshot, current)
    recorded_version = snapshot.get("fingerprint_version")
    live_version = current["fingerprint_version"]

    if live_version == recorded_version and drift:
        yield Finding(
            rule=SCHEMA_GUARD,
            path=path,
            line=line,
            message=(
                "fingerprint/store schema changed without a FINGERPRINT_VERSION "
                f"bump (still {live_version}): {_describe_drift(drift)} — bump "
                "the version, then run `python -m repro.checks --update-snapshots`"
            ),
        )
    elif live_version != recorded_version:
        yield Finding(
            rule=SCHEMA_GUARD,
            path=path,
            line=line,
            message=(
                f"FINGERPRINT_VERSION is {live_version} but the committed schema "
                f"snapshot records {recorded_version}; regenerate it with "
                "`python -m repro.checks --update-snapshots` and commit the result"
            ),
        )


def update_snapshot(
    current: dict[str, Any] | None = None,
    snapshot_path: Path | None = None,
) -> str:
    """Rewrite the snapshot for the live schema.

    Refuses (``SnapshotError``) when the schema drifted under an unchanged
    version — the bump must come first, otherwise updating the snapshot
    would *be* the silent poisoning this rule exists to stop.
    """
    current = current if current is not None else current_schema()
    path = snapshot_path if snapshot_path is not None else SNAPSHOT_PATH
    snapshot = load_snapshot(path)
    if snapshot is not None:
        drift = _diff_sections(snapshot, current)
        if drift and current["fingerprint_version"] == snapshot.get("fingerprint_version"):
            raise SnapshotError(
                "refusing to update the fingerprint-schema snapshot: the schema "
                f"changed ({_describe_drift(drift)}) but FINGERPRINT_VERSION is "
                f"still {current['fingerprint_version']}; bump it in "
                "src/repro/engine/job.py first"
            )
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(current, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return (
        f"recorded fingerprint-schema snapshot for version "
        f"{current['fingerprint_version']} at {path}"
    )


def _check_project(root: Path) -> Iterator[Finding]:
    yield from check_schema()


register(
    Rule(
        rule_id=SCHEMA_GUARD,
        description=(
            "SimulationJob/RunResult schema must not change without a "
            "FINGERPRINT_VERSION bump (committed snapshot comparison)"
        ),
        check_project=_check_project,
        update_snapshot=update_snapshot,
    )
)
