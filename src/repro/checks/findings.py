"""Findings: what a check rule reports, with a stable order and JSON form."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["Finding"]


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation, anchored to a source location.

    ``path`` is repo-relative (posix separators) so finding output and the
    JSON report are byte-identical across machines; ``line`` is 1-based and
    0 when the finding has no meaningful line (a missing snapshot, say).
    """

    rule: str
    path: str
    line: int
    message: str

    def sort_key(self) -> tuple[str, int, str, str]:
        """Deterministic report order: by file, then line, then rule."""
        return (self.path, self.line, self.rule, self.message)

    def render(self) -> str:
        """One-line human-readable form (``path:line: [rule] message``)."""
        location = f"{self.path}:{self.line}" if self.line else self.path
        return f"{location}: [{self.rule}] {self.message}"

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form for ``python -m repro.checks --json``."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }
