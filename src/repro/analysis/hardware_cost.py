"""Hardware-cost model for the adaptive control circuitry (Table 4).

The paper estimates the dedicated hardware needed by the phase-adaptive cache
controller at roughly 4 650 equivalent gates per adaptable cache (or cache
pair) — about 10 K gates in total for the two controllers — plus a few
hundred bits of timestamp storage for the ILP tracker.  This module rebuilds
that estimate from the same component inventory so the benchmark harness can
regenerate Table 4.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.registers import TOTAL_LOGICAL_REGS

#: Equivalent-gate costs per bit for the primitive circuits used in Table 4,
#: following Zimmermann's component estimates cited by the paper.
GATES_PER_BIT = {
    "half_adder": 3,
    "full_adder": 7,
    "d_flip_flop": 4,
    "multiplier_cell": 1,
    "comparator": 6,
}


@dataclass(frozen=True, slots=True)
class HardwareComponent:
    """One row of Table 4."""

    name: str
    count: int
    width_bits: int
    gates_per_bit: int
    formula: str

    @property
    def equivalent_gates(self) -> int:
        """Total equivalent gates for all instances of the component."""
        return self.count * self.width_bits * self.gates_per_bit


def phase_adaptive_cache_hardware() -> tuple[HardwareComponent, ...]:
    """The component inventory of one phase-adaptive cache controller.

    Matches Table 4 of the paper: 24 counters and 11 adders sized for 15-bit
    interval counts, two bit-serial 8x28 multipliers producing 36-bit
    partial results, a final 36-bit adder, a result register and a
    comparator.
    """
    return (
        HardwareComponent(
            name="MRU and hit counters (15-bit)",
            count=24,
            width_bits=15,
            gates_per_bit=GATES_PER_BIT["half_adder"] + GATES_PER_BIT["d_flip_flop"],
            formula="3n (half-adder) + 4n (D flip-flop)",
        ),
        HardwareComponent(
            name="Adders (15-bit)",
            count=11,
            width_bits=15,
            gates_per_bit=GATES_PER_BIT["full_adder"],
            formula="7n (full-adder)",
        ),
        HardwareComponent(
            name="8x28-bit multipliers (36-bit result)",
            count=2,
            width_bits=36,
            gates_per_bit=GATES_PER_BIT["multiplier_cell"] + GATES_PER_BIT["d_flip_flop"],
            formula="1n (multiplier) + 4n (D flip-flop)",
        ),
        HardwareComponent(
            name="Final adder (36-bit)",
            count=1,
            width_bits=36,
            gates_per_bit=GATES_PER_BIT["full_adder"],
            formula="7n (full-adder)",
        ),
        HardwareComponent(
            name="Result register (36-bit)",
            count=1,
            width_bits=36,
            gates_per_bit=GATES_PER_BIT["d_flip_flop"],
            formula="4n (D flip-flop)",
        ),
        HardwareComponent(
            name="Comparator (36-bit)",
            count=1,
            width_bits=36,
            gates_per_bit=GATES_PER_BIT["comparator"],
            formula="6n (comparator)",
        ),
    )


def total_equivalent_gates(components: tuple[HardwareComponent, ...] | None = None) -> int:
    """Total equivalent gates of one controller (Table 4 bottom line)."""
    if components is None:
        components = phase_adaptive_cache_hardware()
    return sum(component.equivalent_gates for component in components)


def ilp_tracker_storage_bits(queue_size: int) -> int:
    """Timestamp storage required by the ILP tracker for one queue size.

    Four bits per logical register for the 16-entry tracker, five for 32 and
    six for 48/64 (Section 3.2), over the 64 logical registers.
    """
    bits_per_register = {16: 4, 32: 5, 48: 6, 64: 6}
    try:
        width = bits_per_register[queue_size]
    except KeyError as exc:
        raise ValueError(f"unsupported queue size {queue_size}") from exc
    return width * TOTAL_LOGICAL_REGS


# ---------------------------------------------------------------------------
# CLI: ``python -m repro.analysis.hardware_cost`` renders Table 4.
# ---------------------------------------------------------------------------


def render_table4() -> str:
    """The Table 4 gate-count table plus the ILP-tracker storage summary."""
    from repro.analysis.reporting import format_table

    components = phase_adaptive_cache_hardware()
    rows: list[tuple[object, ...]] = [
        (
            component.name,
            component.count,
            component.width_bits,
            component.formula,
            component.equivalent_gates,
        )
        for component in components
    ]
    rows.append(("total (one controller)", "", "", "", total_equivalent_gates(components)))
    rows.append(("total (both controllers)", "", "", "", 2 * total_equivalent_gates(components)))
    table = format_table(("component", "count", "bits", "formula", "equiv. gates"), rows)
    tracker_lines = [
        f"ILP tracker storage ({size}-entry queue): "
        f"{ilp_tracker_storage_bits(size)} bits"
        for size in (16, 32, 48, 64)
    ]
    return "\n".join(
        ["Table 4 — phase-adaptive cache controller hardware cost", "", table, ""]
        + tracker_lines
    )


def build_parser() -> "argparse.ArgumentParser":
    """The ``python -m repro.analysis.hardware_cost`` argument parser."""
    import argparse

    return argparse.ArgumentParser(
        prog="python -m repro.analysis.hardware_cost",
        description="Render the adaptive-control hardware-cost table (Table 4).",
    )


def main(argv: object = None) -> int:
    """CLI entry point; prints Table 4 and returns the exit code."""
    build_parser().parse_args(argv)
    print(render_table4())
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the CLI smoke test
    raise SystemExit(main())
