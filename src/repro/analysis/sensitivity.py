"""Timing-uncertainty sensitivity analysis.

The paper's MCD results rest on its timing-uncertainty model — clock jitter
at every domain PLL and the 30 % arbitration window at domain crossings —
and on the control parameters of the phase-adaptive hardware (adaptation
interval, hysteresis).  This module sweeps those knobs over a workload set
and reports how the Figure 6 improvements move relative to the jitter-free
rows.

The driver is engine-batched: it first runs the ordinary jitter-free Figure 6
comparison (which fixes the Program-Adaptive winner per workload), then
submits *every* grid point for *every* workload to the
:class:`~repro.engine.ExperimentEngine` as one batch, so a parallel executor
sees the whole sensitivity surface at once and the result cache de-duplicates
points that coincide with the baseline (e.g. a controller-knob value for the
Program-Adaptive machine, which has no controllers).

Each grid point varies exactly one knob from its default (one-at-a-time
sensitivity, as the paper reports it):

* ``jitter_fraction`` — peak-to-peak clock jitter per domain period;
* ``sync_window_fraction`` — the unsafe capture window at domain crossings;
* ``interval_scale`` — the phase-adaptive adaptation interval, as a multiple
  of the window-scaled default;
* ``cache_hysteresis`` / ``queue_hysteresis`` — the controllers' change
  margins.

The timing-uncertainty knobs apply to the MCD machines only; the fully
synchronous baseline runs a single global clock with inter-domain
synchronisation disabled, so every improvement — baseline and grid point —
is measured against the same jitter-free synchronous row.

Run as a module for the CLI::

    PYTHONPATH=src python -m repro.analysis.sensitivity --workloads gcc em3d --quick
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.analysis.reporting import format_table
from repro.analysis.sweep import (
    WorkloadComparison,
    _phase_adaptive_job,
    _program_adaptive_job,
    _resolve_engine,
    compare_workloads,
)
from repro.core.controllers.params import AdaptiveControlParams
from repro.energy import energy_reduction
from repro.engine import (
    DEFAULT_TRACE_SEED,
    ExperimentEngine,
    SimulationJob,
    default_control_params,
    make_engine,
)
from repro.obs.logging import add_logging_arguments, configure_logging
from repro.workloads.characteristics import WorkloadProfile

__all__ = [
    "AXES",
    "FULL_GRIDS",
    "QUICK_GRIDS",
    "QUICK_WARMUP",
    "QUICK_WINDOW",
    "SensitivityAxis",
    "SensitivityPoint",
    "SensitivityReport",
    "WorkloadSensitivity",
    "sensitivity_sweep",
    "main",
]

#: Axis names, as they appear in reports and point records.
AXIS_JITTER = "jitter_fraction"
AXIS_SYNC_WINDOW = "sync_window_fraction"
AXIS_INTERVAL = "interval_scale"
AXIS_CACHE_HYSTERESIS = "cache_hysteresis"
AXIS_QUEUE_HYSTERESIS = "queue_hysteresis"

AXES = (
    AXIS_JITTER,
    AXIS_SYNC_WINDOW,
    AXIS_INTERVAL,
    AXIS_CACHE_HYSTERESIS,
    AXIS_QUEUE_HYSTERESIS,
)

#: Default grids.  Baseline values (jitter 0, window 0.3, scale 1.0 and the
#: AdaptiveControlParams hysteresis defaults) are implicit — the baseline row
#: carries them — so the grids list only the perturbed values.
DEFAULT_JITTER_FRACTIONS = (0.02, 0.05, 0.10)
DEFAULT_SYNC_WINDOW_FRACTIONS = (0.15, 0.45)
DEFAULT_INTERVAL_SCALES = (0.5, 2.0)
DEFAULT_CACHE_HYSTERESIS = (0.0, 0.16)
DEFAULT_QUEUE_HYSTERESIS = (0.15, 0.45)

#: The full grids as ``sensitivity_sweep`` keyword arguments.
FULL_GRIDS: Mapping[str, tuple[float, ...]] = {
    "jitter_fractions": DEFAULT_JITTER_FRACTIONS,
    "sync_window_fractions": DEFAULT_SYNC_WINDOW_FRACTIONS,
    "interval_scales": DEFAULT_INTERVAL_SCALES,
    "cache_hysteresis_values": DEFAULT_CACHE_HYSTERESIS,
    "queue_hysteresis_values": DEFAULT_QUEUE_HYSTERESIS,
}

#: CI-sized parameterisation, shared by the CLI ``--quick`` flag, the example
#: script and the bench suite so they cannot drift apart: one value per axis
#: plus small windows.
QUICK_GRIDS: Mapping[str, tuple[float, ...]] = {
    "jitter_fractions": (0.05,),
    "sync_window_fractions": (0.45,),
    "interval_scales": (0.5,),
    "cache_hysteresis_values": (0.0,),
    "queue_hysteresis_values": (0.15,),
}
QUICK_WINDOW = 1_500
QUICK_WARMUP = 2_500


@dataclass(slots=True)
class SensitivityAxis:
    """One knob and the values it sweeps over."""

    name: str
    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if self.name not in AXES:
            raise ValueError(f"unknown sensitivity axis {self.name!r}; known: {AXES}")


@dataclass(slots=True)
class WorkloadSensitivity:
    """One (grid point, workload) cell: improvements and their deltas.

    The energy columns measure each MCD machine's energy reduction against
    the same jitter-free synchronous row the timing improvements use.
    """

    workload: str
    program_improvement: float
    phase_improvement: float
    program_delta: float
    phase_delta: float
    program_energy_reduction: float = 0.0
    phase_energy_reduction: float = 0.0


@dataclass(slots=True)
class SensitivityPoint:
    """One grid point: a single knob moved off its default."""

    axis: str
    value: float
    per_workload: list[WorkloadSensitivity] = field(default_factory=list)

    def _mean(self, attribute: str) -> float:
        if not self.per_workload:
            return 0.0
        return sum(getattr(cell, attribute) for cell in self.per_workload) / len(
            self.per_workload
        )

    @property
    def program_improvement(self) -> float:
        """Mean Program-Adaptive improvement over the synchronous baseline."""
        return self._mean("program_improvement")

    @property
    def phase_improvement(self) -> float:
        """Mean Phase-Adaptive improvement over the synchronous baseline."""
        return self._mean("phase_improvement")

    @property
    def program_delta(self) -> float:
        """Mean change versus the jitter-free Program-Adaptive improvement."""
        return self._mean("program_delta")

    @property
    def phase_delta(self) -> float:
        """Mean change versus the jitter-free Phase-Adaptive improvement."""
        return self._mean("phase_delta")

    @property
    def program_energy_reduction(self) -> float:
        """Mean Program-Adaptive energy reduction vs. the synchronous row."""
        return self._mean("program_energy_reduction")

    @property
    def phase_energy_reduction(self) -> float:
        """Mean Phase-Adaptive energy reduction vs. the synchronous row."""
        return self._mean("phase_energy_reduction")


@dataclass(slots=True)
class SensitivityReport:
    """The full sensitivity surface over a workload set."""

    workloads: list[str]
    baseline: list[WorkloadComparison]
    points: list[SensitivityPoint]

    @property
    def baseline_program_improvement(self) -> float:
        """Mean jitter-free Program-Adaptive improvement (the Figure 6 bar)."""
        if not self.baseline:
            return 0.0
        return sum(row.program_improvement for row in self.baseline) / len(self.baseline)

    @property
    def baseline_phase_improvement(self) -> float:
        """Mean jitter-free Phase-Adaptive improvement (the Figure 6 bar)."""
        if not self.baseline:
            return 0.0
        return sum(row.phase_improvement for row in self.baseline) / len(self.baseline)

    def points_for(self, axis: str) -> list[SensitivityPoint]:
        """The grid points of one axis, in sweep order."""
        return [point for point in self.points if point.axis == axis]

    @property
    def baseline_program_energy_reduction(self) -> float:
        """Mean jitter-free Program-Adaptive energy reduction."""
        if not self.baseline:
            return 0.0
        return sum(row.program_energy_reduction for row in self.baseline) / len(
            self.baseline
        )

    @property
    def baseline_phase_energy_reduction(self) -> float:
        """Mean jitter-free Phase-Adaptive energy reduction."""
        if not self.baseline:
            return 0.0
        return sum(row.phase_energy_reduction for row in self.baseline) / len(
            self.baseline
        )

    def render(self) -> str:
        """Plain-text summary table (means across the workload set)."""
        rows: list[tuple[object, ...]] = [
            (
                "baseline",
                "-",
                f"{self.baseline_program_improvement * 100:+.1f}%",
                f"{self.baseline_phase_improvement * 100:+.1f}%",
                "-",
                "-",
                f"{self.baseline_program_energy_reduction * 100:+.1f}%",
                f"{self.baseline_phase_energy_reduction * 100:+.1f}%",
            )
        ]
        for point in self.points:
            rows.append(
                (
                    point.axis,
                    f"{point.value:g}",
                    f"{point.program_improvement * 100:+.1f}%",
                    f"{point.phase_improvement * 100:+.1f}%",
                    f"{point.program_delta * 100:+.2f}pp",
                    f"{point.phase_delta * 100:+.2f}pp",
                    f"{point.program_energy_reduction * 100:+.1f}%",
                    f"{point.phase_energy_reduction * 100:+.1f}%",
                )
            )
        return format_table(
            (
                "axis",
                "value",
                "program",
                "phase",
                "d-program",
                "d-phase",
                "E-program",
                "E-phase",
            ),
            rows,
        )


def _point_job_kwargs(
    axis: str, value: float
) -> tuple[dict[str, Any], dict[str, Any]]:
    """(program-job kwargs, phase-job kwargs) realising one grid point.

    Timing-uncertainty knobs apply to both MCD machines; controller knobs
    only exist on the phase-adaptive machine, so the Program-Adaptive job for
    those points is identical to the baseline's and is served from the
    engine's result cache rather than re-simulated.
    """
    if axis == AXIS_JITTER:
        knob: dict[str, Any] = {"jitter_fraction": value}
        return knob, dict(knob)
    if axis == AXIS_SYNC_WINDOW:
        knob = {"sync_window_fraction": value}
        return knob, dict(knob)
    if axis == AXIS_CACHE_HYSTERESIS:
        return {}, {"control_overrides": {"cache_hysteresis": value}}
    if axis == AXIS_QUEUE_HYSTERESIS:
        return {}, {"control_overrides": {"queue_hysteresis": value}}
    if axis == AXIS_INTERVAL:
        # Resolved per profile below: the default interval is window-scaled.
        return {}, {"_interval_scale": value}
    raise ValueError(f"unknown sensitivity axis {axis!r}")


def _scaled_interval(
    scale: float,
    profile: WorkloadProfile,
    window: int | None,
    control: AdaptiveControlParams | None,
) -> int:
    """The adaptation interval at *scale* times a profile's default."""
    if control is not None:
        base = control.interval_instructions
    else:
        resolved_window = window if window is not None else profile.simulation_window
        base = default_control_params(resolved_window).interval_instructions
    return max(100, int(round(base * scale)))


def sensitivity_sweep(
    profiles: Sequence[WorkloadProfile],
    *,
    jitter_fractions: Sequence[float] = DEFAULT_JITTER_FRACTIONS,
    sync_window_fractions: Sequence[float] = DEFAULT_SYNC_WINDOW_FRACTIONS,
    interval_scales: Sequence[float] = DEFAULT_INTERVAL_SCALES,
    cache_hysteresis_values: Sequence[float] = DEFAULT_CACHE_HYSTERESIS,
    queue_hysteresis_values: Sequence[float] = DEFAULT_QUEUE_HYSTERESIS,
    search_mode: str = "factored",
    window: int | None = None,
    warmup: int | None = None,
    control: AdaptiveControlParams | None = None,
    trace_seed: int = DEFAULT_TRACE_SEED,
    seed: int = 0,
    engine: ExperimentEngine | None = None,
) -> SensitivityReport:
    """Sweep the timing-uncertainty and controller knobs over *profiles*.

    Runs the jitter-free Figure 6 comparison first (fixing each workload's
    Program-Adaptive winner), then evaluates every grid point against those
    rows: the Program-Adaptive machine re-runs at the *same* winning indices
    under the knob, and the Phase-Adaptive machine re-runs with its
    controllers under the knob.  Improvements are always measured against the
    jitter-free synchronous baseline row, so each point's ``*_delta`` is the
    movement of the Figure 6 result attributable to that knob alone.

    Pass empty sequences to drop an axis.  All grid jobs are submitted as a
    single engine batch.
    """
    eng = _resolve_engine(engine)
    profiles = list(profiles)
    baseline = compare_workloads(
        profiles,
        search_mode=search_mode,
        window=window,
        warmup=warmup,
        control=control,
        trace_seed=trace_seed,
        seed=seed,
        engine=eng,
    )

    axes = (
        SensitivityAxis(AXIS_JITTER, tuple(jitter_fractions)),
        SensitivityAxis(AXIS_SYNC_WINDOW, tuple(sync_window_fractions)),
        SensitivityAxis(AXIS_INTERVAL, tuple(interval_scales)),
        SensitivityAxis(AXIS_CACHE_HYSTERESIS, tuple(cache_hysteresis_values)),
        SensitivityAxis(AXIS_QUEUE_HYSTERESIS, tuple(queue_hysteresis_values)),
    )

    points = [
        SensitivityPoint(axis=axis.name, value=value)
        for axis in axes
        for value in axis.values
    ]

    jobs: list[SimulationJob] = []
    for point in points:
        program_kwargs, phase_kwargs = _point_job_kwargs(point.axis, point.value)
        for profile, row in zip(profiles, baseline):
            resolved_phase_kwargs = dict(phase_kwargs)
            scale = resolved_phase_kwargs.pop("_interval_scale", None)
            if scale is not None:
                resolved_phase_kwargs["control_overrides"] = {
                    "interval_instructions": _scaled_interval(
                        scale, profile, window, control
                    )
                }
            jobs.append(
                _program_adaptive_job(
                    profile,
                    row.program_best_indices,
                    window=window,
                    warmup=warmup,
                    trace_seed=trace_seed,
                    seed=seed,
                    **program_kwargs,
                )
            )
            jobs.append(
                _phase_adaptive_job(
                    profile,
                    window=window,
                    warmup=warmup,
                    control=control,
                    trace_seed=trace_seed,
                    seed=seed,
                    **resolved_phase_kwargs,
                )
            )
    results = eng.run_all(jobs)

    cursor = 0
    for point in points:
        for profile, row in zip(profiles, baseline):
            program_result = results[cursor]
            phase_result = results[cursor + 1]
            cursor += 2
            program_improvement = program_result.improvement_over(row.synchronous)
            phase_improvement = phase_result.improvement_over(row.synchronous)
            point.per_workload.append(
                WorkloadSensitivity(
                    workload=profile.name,
                    program_improvement=program_improvement,
                    phase_improvement=phase_improvement,
                    program_delta=program_improvement - row.program_improvement,
                    phase_delta=phase_improvement - row.phase_improvement,
                    # The baseline row's report is memoised on the row, so
                    # the grid only prices each fresh MCD result once.
                    program_energy_reduction=energy_reduction(
                        row.energy_report_for("synchronous"), program_result
                    ),
                    phase_energy_reduction=energy_reduction(
                        row.energy_report_for("synchronous"), phase_result
                    ),
                )
            )

    return SensitivityReport(
        workloads=[profile.name for profile in profiles],
        baseline=baseline,
        points=points,
    )


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

#: Workloads used when the CLI is given none: an instruction-bound code, a
#: memory-bound code and a strongly phased application.
DEFAULT_CLI_WORKLOADS = ("gcc", "em3d", "apsi")


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.analysis.sensitivity`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.sensitivity",
        description="Sweep the timing-uncertainty knobs and report Figure 6 deltas.",
    )
    add_logging_arguments(parser)
    parser.add_argument(
        "--workloads",
        nargs="+",
        default=list(DEFAULT_CLI_WORKLOADS),
        help=f"workload names (default: {' '.join(DEFAULT_CLI_WORKLOADS)})",
    )
    parser.add_argument(
        "--jitter",
        nargs="*",
        type=float,
        default=None,
        help=f"jitter-fraction grid (default: {DEFAULT_JITTER_FRACTIONS})",
    )
    parser.add_argument(
        "--sync-window",
        nargs="*",
        type=float,
        default=None,
        help=f"sync-window-fraction grid (default: {DEFAULT_SYNC_WINDOW_FRACTIONS})",
    )
    parser.add_argument(
        "--interval-scale",
        nargs="*",
        type=float,
        default=None,
        help=f"adaptation-interval scale grid (default: {DEFAULT_INTERVAL_SCALES})",
    )
    parser.add_argument(
        "--cache-hysteresis",
        nargs="*",
        type=float,
        default=None,
        help=f"cache-hysteresis grid (default: {DEFAULT_CACHE_HYSTERESIS})",
    )
    parser.add_argument(
        "--queue-hysteresis",
        nargs="*",
        type=float,
        default=None,
        help=f"queue-hysteresis grid (default: {DEFAULT_QUEUE_HYSTERESIS})",
    )
    parser.add_argument("--window", type=int, default=None, help="measured window")
    parser.add_argument("--warmup", type=int, default=None, help="warm-up instructions")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small windows and a reduced grid (CI-sized)",
    )
    parser.add_argument(
        "--workers",
        default="1",
        help='worker processes ("auto" = one per core; default 1)',
    )
    parser.add_argument(
        "--cache-dir", default=None, help="persistent on-disk result cache directory"
    )
    return parser


def _parse_args(argv: Sequence[str] | None) -> argparse.Namespace:
    return build_parser().parse_args(argv)


def _grid(
    explicit: Sequence[float] | None, fallback: Sequence[float]
) -> Sequence[float]:
    return explicit if explicit is not None else fallback


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    from repro.workloads import get_workload

    args = _parse_args(argv)
    configure_logging(args)
    profiles = [get_workload(name) for name in args.workloads]
    engine = make_engine(workers=args.workers, cache_dir=args.cache_dir)

    window, warmup = args.window, args.warmup
    defaults = QUICK_GRIDS if args.quick else FULL_GRIDS
    if args.quick:
        window = window if window is not None else QUICK_WINDOW
        warmup = warmup if warmup is not None else QUICK_WARMUP
    grids: Mapping[str, Sequence[float]] = {
        "jitter_fractions": _grid(args.jitter, defaults["jitter_fractions"]),
        "sync_window_fractions": _grid(
            args.sync_window, defaults["sync_window_fractions"]
        ),
        "interval_scales": _grid(args.interval_scale, defaults["interval_scales"]),
        "cache_hysteresis_values": _grid(
            args.cache_hysteresis, defaults["cache_hysteresis_values"]
        ),
        "queue_hysteresis_values": _grid(
            args.queue_hysteresis, defaults["queue_hysteresis_values"]
        ),
    }

    report = sensitivity_sweep(
        profiles, window=window, warmup=warmup, engine=engine, **grids
    )
    print(
        f"Sensitivity over {', '.join(report.workloads)} "
        f"({len(report.points)} grid points; "
        f"{engine.stats.simulations} simulations, "
        f"{engine.stats.cache_hits} cache hits)"
    )
    print()
    print(report.render())
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the CLI smoke job
    raise SystemExit(main())
