"""Stable digests of a :class:`~repro.analysis.metrics.RunResult`.

Every optimisation PR is gated on these digests staying bit-identical, so
their field partition is a *contract*, not a convention:

* :data:`TIMING_DIGEST_FIELDS` — the pre-energy schema.  ``result_digest``
  hashes exactly this serialisation, so adding observation-only activity
  fields can never move a pinned timing digest — only a change to simulated
  behaviour can.
* :data:`FAST_PATH_OBSERVABILITY_FIELDS` — counters describing how a run
  was *simulated* (fast-forward, horizon scheduling, compiled-trace reuse),
  not what the machine did.  Excluded from both digests and from result
  equality.
* Everything else — activity counters and structural sizes hashed by
  ``energy_digest`` together with the derived energy report.

The partition is enforced mechanically by ``python -m repro.checks`` (the
``digest-purity`` rule audits it against the committed classification in
``src/repro/checks/snapshots/digest_fields.json``), which is why the
definitions live here in the package rather than in the test helpers that
originally grew them; ``tests/golden_digests.py`` re-exports these names
and pins the recorded golden values.
"""

from __future__ import annotations

import hashlib
import json

from repro.analysis.metrics import RunResult

__all__ = [
    "FAST_PATH_OBSERVABILITY_FIELDS",
    "TIMING_DIGEST_FIELDS",
    "energy_digest",
    "result_digest",
]

#: The RunResult fields that existed before the energy-accounting subsystem.
#: Timing digests hash exactly this serialisation, so adding new
#: (observation-only) activity fields can never move a pinned timing digest —
#: only a change to simulated *behaviour* can.
TIMING_DIGEST_FIELDS = (
    "workload",
    "machine",
    "style",
    "committed_instructions",
    "execution_time_ps",
    "domain_cycles",
    "final_frequencies_ghz",
    "branch_predictions",
    "branch_mispredictions",
    "icache_accesses",
    "icache_b_hits",
    "icache_misses",
    "loads",
    "stores",
    "l1d_hits_a",
    "l1d_hits_b",
    "l1d_misses",
    "l2_hits_a",
    "l2_hits_b",
    "l2_misses",
    "memory_accesses",
    "loads_forwarded",
    "sync_transfers",
    "sync_penalties",
    "fetch_stall_cycles",
    "branch_stall_cycles",
    "int_queue_average_occupancy",
    "fp_queue_average_occupancy",
    "configuration_changes",
)

#: Observation-only counters describing how a run was *simulated* (compiled
#: trace columns, horizon scheduling, fast-forward), not what the machine
#: did.  They vary with the fast-path knobs while the simulated behaviour is
#: bit-identical, so they are excluded from the energy digest exactly as the
#: timing fields are (and were never part of the timing digest).
FAST_PATH_OBSERVABILITY_FIELDS = frozenset(
    {
        "fast_forward_invocations",
        "fast_forward_cycles",
        "steady_stretches_skipped",
        "horizon_skipped_edges",
        "compiled_trace_cache_hits",
    }
)


def result_digest(result: RunResult) -> str:
    """Stable sha256 of a RunResult's timing content.

    Hashes the serialisation of :data:`TIMING_DIGEST_FIELDS` — byte-identical
    to the full ``to_dict`` serialisation of the pre-energy schema, so every
    digest recorded before the energy subsystem remains directly comparable.
    """
    data = result.to_dict()
    payload = json.dumps(
        {name: data[name] for name in TIMING_DIGEST_FIELDS},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def energy_digest(result: RunResult) -> str:
    """Stable sha256 of a run's activity counters and energy breakdown.

    Covers the activity/structure fields of the ``RunResult`` *and* the
    derived :class:`~repro.energy.EnergyReport`, so both the counters and
    the energy model's arithmetic are pinned.
    """
    # Imported here: repro.energy itself imports repro.analysis, so a
    # module-level import would tie the two package imports into a cycle.
    from repro.energy import energy_report

    data = result.to_dict()
    activity = {
        name: value
        for name, value in data.items()
        if name not in TIMING_DIGEST_FIELDS
        and name not in FAST_PATH_OBSERVABILITY_FIELDS
    }
    payload = json.dumps(
        {"activity": activity, "energy": energy_report(result).to_dict()},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
