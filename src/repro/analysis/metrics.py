"""Run records and derived performance metrics."""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields
from typing import Any, ClassVar, Iterable, Mapping

from repro.clocks.time import Picoseconds


@dataclass(frozen=True, slots=True)
class ConfigurationChange:
    """One adaptation event recorded during a phase-adaptive run."""

    committed_instructions: int
    time_ps: Picoseconds
    domain: str
    structure: str
    configuration: str
    index: int

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form for the result cache's JSON files."""
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ConfigurationChange":
        """Rebuild an adaptation event from :meth:`to_dict` output."""
        return cls(**data)


@dataclass(slots=True)
class RunResult:
    """Everything measured during one simulation run.

    Every field carries a digest classification — ``timing`` (hashed by
    ``result_digest``; frozen set), ``energy`` (hashed by ``energy_digest``),
    ``excluded`` or ``process-dependent`` — recorded in
    ``src/repro/checks/snapshots/digest_fields.json``.  Adding a field
    without classifying it there (and bumping ``FINGERPRINT_VERSION``) fails
    ``python -m repro.checks``: an unclassified counter would land in the
    energy digest by default and, if its value depends on how the run was
    simulated, silently fork digests between hosts.
    """

    workload: str
    machine: str
    style: str
    committed_instructions: int
    execution_time_ps: Picoseconds
    domain_cycles: dict[str, int] = field(default_factory=dict)
    final_frequencies_ghz: dict[str, float] = field(default_factory=dict)

    branch_predictions: int = 0
    branch_mispredictions: int = 0

    icache_accesses: int = 0
    icache_b_hits: int = 0
    icache_misses: int = 0

    loads: int = 0
    stores: int = 0
    l1d_hits_a: int = 0
    l1d_hits_b: int = 0
    l1d_misses: int = 0
    l2_hits_a: int = 0
    l2_hits_b: int = 0
    l2_misses: int = 0
    memory_accesses: int = 0
    loads_forwarded: int = 0

    sync_transfers: int = 0
    sync_penalties: int = 0

    fetch_stall_cycles: int = 0
    branch_stall_cycles: int = 0

    int_queue_average_occupancy: float = 0.0
    fp_queue_average_occupancy: float = 0.0

    configuration_changes: list[ConfigurationChange] = field(default_factory=list)

    # Activity counters and structural sizes consumed by the energy model
    # (:mod:`repro.energy`).  All default so run records serialised before
    # these fields existed still deserialise; the accounting behind them is
    # observation-only, so they never influence simulated timing.
    phase_adaptive: bool = False
    fetched: int = 0
    rob_dispatches: int = 0
    int_queue_dispatches: int = 0
    fp_queue_dispatches: int = 0
    int_queue_issues: int = 0
    fp_queue_issues: int = 0
    int_queue_occupancy_cycles: int = 0
    fp_queue_occupancy_cycles: int = 0
    int_queue_operand_reads: int = 0
    fp_queue_operand_reads: int = 0
    int_regfile_writes: int = 0
    fp_regfile_writes: int = 0
    int_alu_ops: int = 0
    int_complex_ops: int = 0
    fp_alu_ops: int = 0
    fp_complex_ops: int = 0
    lsq_allocations: int = 0
    #: Physical geometry per cache ("l1i"/"l1d"/"l2" -> size_kb,
    #: associativity, sub_banks, block_bytes), as priced by the energy model.
    cache_geometries: dict[str, dict[str, int]] = field(default_factory=dict)
    #: Probe-width histogram per cache: ways activated (as a string key, for
    #: lossless JSON round-trips) -> probe count.
    cache_access_profile: dict[str, dict[str, int]] = field(default_factory=dict)
    #: Leakage-relevant entry counts of the non-cache storage structures.
    structure_entries: dict[str, int] = field(default_factory=dict)
    predictor_size_kb: float = 0.0

    # Simulator fast-path observability (how the run was *simulated*, not
    # what the machine did): quiescent-phase fast-forward activity, idle
    # edges bulk-skipped by event-horizon scheduling, and fetches served
    # from pre-compiled trace columns.  Defaulted so old-schema JSON still
    # deserialises, excluded from equality (``compare=False``) so a run is
    # the same result however it was accelerated, and excluded from both
    # result digests.
    fast_forward_invocations: int = field(default=0, compare=False)
    fast_forward_cycles: int = field(default=0, compare=False)
    steady_stretches_skipped: int = field(default=0, compare=False)
    horizon_skipped_edges: int = field(default=0, compare=False)
    compiled_trace_cache_hits: int = field(default=0, compare=False)

    #: Observability fields whose values depend on *per-process* state (the
    #: trace-compilation cache is warm for the second job on a trace, cold
    #: for the first) rather than on the job alone.  The result cache resets
    #: them to their defaults when persisting, so on-disk stores are
    #: byte-identical however the job list was partitioned across processes
    #: — the property the distributed fabric's merge/verify workflow rests
    #: on.
    PROCESS_DEPENDENT_FIELDS: ClassVar[tuple[str, ...]] = (
        "compiled_trace_cache_hits",
    )

    # ------------------------------------------------------------ derived

    @property
    def execution_time_us(self) -> float:
        """Execution time in microseconds."""
        return self.execution_time_ps / 1e6

    @property
    def execution_time_ns(self) -> float:
        """Execution time in nanoseconds."""
        return self.execution_time_ps / 1e3

    @property
    def instructions_per_second(self) -> float:
        """Committed instructions per second of simulated time."""
        if self.execution_time_ps <= 0:
            return 0.0
        return self.committed_instructions / (self.execution_time_ps * 1e-12)

    @property
    def front_end_ipc(self) -> float:
        """Committed instructions per front-end cycle."""
        cycles = self.domain_cycles.get("front_end", 0)
        if not cycles:
            return 0.0
        return self.committed_instructions / cycles

    @property
    def branch_misprediction_rate(self) -> float:
        """Mispredictions per executed branch."""
        if not self.branch_predictions:
            return 0.0
        return self.branch_mispredictions / self.branch_predictions

    @property
    def l1d_miss_rate(self) -> float:
        """L1-D misses per data access."""
        accesses = self.loads + self.stores
        if not accesses:
            return 0.0
        return self.l1d_misses / accesses

    @property
    def icache_miss_rate(self) -> float:
        """L1-I misses per instruction-cache access."""
        if not self.icache_accesses:
            return 0.0
        return self.icache_misses / self.icache_accesses

    def improvement_over(self, baseline: "RunResult") -> float:
        """Run-time improvement relative to *baseline* (positive = faster).

        Defined, as in the paper's Figure 6, as the relative reduction in run
        time expressed as a speedup: ``baseline_time / this_time - 1``.
        """
        return relative_improvement(baseline, self)

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form of the run, losslessly JSON-serialisable.

        Used by the experiment engine's on-disk result cache; round-trips
        through :meth:`from_dict` to an equal :class:`RunResult`.
        """
        data: dict[str, Any] = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if spec.name == "configuration_changes":
                value = [change.to_dict() for change in value]
            elif isinstance(value, dict):
                value = {
                    key: dict(item) if isinstance(item, dict) else item
                    for key, item in value.items()
                }
            data[spec.name] = value
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunResult":
        """Rebuild a run record from :meth:`to_dict` output."""
        payload = dict(data)
        payload["configuration_changes"] = [
            ConfigurationChange.from_dict(change)
            for change in payload.get("configuration_changes", [])
        ]
        return cls(**payload)

    def summary(self) -> str:
        """Readable multi-line summary of the run."""
        lines = [
            f"workload={self.workload} machine={self.machine}",
            f"  committed={self.committed_instructions} "
            f"time={self.execution_time_us:.3f}us ipc={self.front_end_ipc:.2f}",
            f"  branches: {self.branch_predictions} "
            f"(mispredict rate {self.branch_misprediction_rate:.3f})",
            f"  L1D miss rate {self.l1d_miss_rate:.3f}, "
            f"I-cache miss rate {self.icache_miss_rate:.3f}, "
            f"memory accesses {self.memory_accesses}",
            f"  adaptations: {len(self.configuration_changes)}",
        ]
        return "\n".join(lines)


def relative_improvement(baseline: RunResult, candidate: RunResult) -> float:
    """Performance improvement of *candidate* over *baseline*.

    Uses run-time ratio minus one, which is how the paper reports the
    Program-Adaptive and Phase-Adaptive gains in Figure 6.
    """
    if candidate.execution_time_ps <= 0:
        raise ValueError("candidate run has non-positive execution time")
    if baseline.committed_instructions != candidate.committed_instructions:
        # Normalise to time per instruction when the windows differ slightly
        # (e.g. a finite trace ended early).
        baseline_tpi = baseline.execution_time_ps / max(1, baseline.committed_instructions)
        candidate_tpi = candidate.execution_time_ps / max(1, candidate.committed_instructions)
        return baseline_tpi / candidate_tpi - 1.0
    return baseline.execution_time_ps / candidate.execution_time_ps - 1.0


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of ``1 + value`` minus one (for averaging improvements)."""
    values = list(values)
    if not values:
        return 0.0
    product = 0.0
    for value in values:
        if value <= -1.0:
            raise ValueError("improvement values must be greater than -100%")
        product += math.log1p(value)
    return math.expm1(product / len(values))
