"""Design-space exploration and the Figure 6 experiment drivers.

The paper evaluates three machines per application:

* the best-overall **fully synchronous** processor, found by sweeping 1 024
  configurations across the whole suite;
* the **Program-Adaptive** MCD machine, where the best of the 256 adaptive
  configurations is chosen per application by exhaustive offline search; and
* the **Phase-Adaptive** MCD machine, which starts from the base (smallest /
  fastest) configuration and lets the hardware controllers adapt at run time.

This module provides runners for each, plus both *exhaustive* and *factored*
search modes.  The factored mode sweeps one structure at a time around the
base configuration and then combines the per-structure winners; in this
model the structures live in different clock domains and interact only
weakly, so the factored search finds the same winner at a small fraction of
the cost.  The exhaustive mode is retained for fidelity and for the
benchmark harness's slow path.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Mapping, Sequence

from repro.analysis.metrics import RunResult, geometric_mean, relative_improvement
from repro.core.configuration import (
    AdaptiveConfigIndices,
    MachineSpec,
    adaptive_configuration_space,
    adaptive_mcd_spec,
    best_overall_synchronous_spec,
    synchronous_configuration_space,
    synchronous_spec,
)
from repro.core.controllers.params import AdaptiveControlParams
from repro.core.processor import MCDProcessor
from repro.timing.tables import (
    ADAPTIVE_DCACHE_CONFIGS,
    ADAPTIVE_ICACHE_CONFIGS,
    ISSUE_QUEUE_SIZES,
    OPTIMAL_DCACHE_CONFIGS,
    OPTIMIZED_ICACHE_CONFIGS,
)
from repro.workloads.characteristics import WorkloadProfile
from repro.workloads.generator import SyntheticTraceGenerator

#: Default trace seed so every machine sees the identical dynamic instruction
#: stream for a given workload.
DEFAULT_TRACE_SEED = 1234


@dataclass(slots=True)
class SweepResult:
    """Outcome of a per-workload configuration search."""

    workload: str
    best_indices: AdaptiveConfigIndices
    best_result: RunResult
    evaluated: dict[str, RunResult] = field(default_factory=dict)

    @property
    def configurations_evaluated(self) -> int:
        """Number of simulated configurations."""
        return len(self.evaluated)


@dataclass(slots=True)
class WorkloadComparison:
    """One row of the Figure 6 experiment."""

    workload: str
    synchronous: RunResult
    program_adaptive: RunResult
    phase_adaptive: RunResult
    program_best_indices: AdaptiveConfigIndices

    @property
    def program_improvement(self) -> float:
        """Program-Adaptive improvement over the synchronous baseline."""
        return relative_improvement(self.synchronous, self.program_adaptive)

    @property
    def phase_improvement(self) -> float:
        """Phase-Adaptive improvement over the synchronous baseline."""
        return relative_improvement(self.synchronous, self.phase_adaptive)


# ---------------------------------------------------------------------------
# Run helpers
# ---------------------------------------------------------------------------


def default_warmup(profile: WorkloadProfile, window: int | None = None) -> int:
    """A warm-up length long enough to populate the caches for *profile*.

    Scales with the hot data footprint (so the measured window starts from a
    warm hierarchy, standing in for the paper's fast-forward windows) and is
    bounded so sweeps stay tractable.
    """
    window = window if window is not None else profile.simulation_window
    memory_fraction = max(0.05, profile.load_fraction + profile.store_fraction)
    hot_lines = profile.hot_data_kb * 1024 / 64
    cold_lines = max(0.0, (profile.data_footprint_kb - profile.hot_data_kb) * 1024 / 64)
    hot_rate = memory_fraction * max(profile.hot_data_fraction, 0.05)
    cold_rate = memory_fraction * max(1.0 - profile.hot_data_fraction, 0.02)
    # Factor ~2 approximates coupon-collector coverage of randomly touched lines.
    needed = int(hot_lines / hot_rate * 1.3 + cold_lines / cold_rate * 2.0)
    code_lines = profile.code_footprint_kb * 1024 / 64
    needed = max(needed, int(code_lines * profile.block_size))
    return int(min(100_000, max(6_000, needed)))


def make_trace(profile: WorkloadProfile, seed: int = DEFAULT_TRACE_SEED):
    """Build the deterministic trace generator for *profile*."""
    return SyntheticTraceGenerator(profile, seed=seed)


def default_control_params(window: int) -> AdaptiveControlParams:
    """Control parameters scaled to a simulation window of *window* instructions.

    The adaptation interval is one sixth of the window (minimum 500
    instructions) so several adaptation decisions occur per run while each
    interval still sees enough accesses to average out transients, and the
    PLL lock time tracks the interval duration, preserving the paper's
    "interval comparable to lock time" relationship under window scaling.
    """
    interval = max(500, window // 6)
    return AdaptiveControlParams(interval_instructions=interval, pll_interval_scaled=True)


def _execute(
    spec: MachineSpec,
    profile: WorkloadProfile,
    *,
    window: int | None,
    warmup: int | None,
    trace_seed: int,
    phase_adaptive: bool = False,
    control: AdaptiveControlParams | None = None,
    seed: int = 0,
) -> RunResult:
    window = window if window is not None else profile.simulation_window
    warmup = warmup if warmup is not None else default_warmup(profile, window)
    if phase_adaptive and control is None:
        control = default_control_params(window)
    processor = MCDProcessor(
        spec, control=control, phase_adaptive=phase_adaptive, seed=seed
    )
    trace = make_trace(profile, seed=trace_seed)
    return processor.run(
        trace.instructions(),
        max_instructions=window,
        warmup_instructions=warmup,
        workload_name=profile.name,
    )


def run_synchronous(
    profile: WorkloadProfile,
    indices: AdaptiveConfigIndices | None = None,
    *,
    window: int | None = None,
    warmup: int | None = None,
    trace_seed: int = DEFAULT_TRACE_SEED,
    seed: int = 0,
) -> RunResult:
    """Simulate *profile* on a fully synchronous machine.

    Without *indices* the paper's best-overall synchronous configuration is
    used (64 KB direct-mapped I-cache, 32 KB/256 KB direct-mapped D/L2 and
    16-entry issue queues).
    """
    spec = (
        best_overall_synchronous_spec()
        if indices is None
        else synchronous_spec(indices)
    )
    return _execute(
        spec, profile, window=window, warmup=warmup, trace_seed=trace_seed, seed=seed
    )


def run_program_adaptive(
    profile: WorkloadProfile,
    indices: AdaptiveConfigIndices,
    *,
    window: int | None = None,
    warmup: int | None = None,
    trace_seed: int = DEFAULT_TRACE_SEED,
    seed: int = 0,
) -> RunResult:
    """Simulate *profile* on the adaptive MCD machine fixed at *indices*.

    As in the paper's whole-program experiments, only the A partitions are
    used: a miss in A goes straight to the next level of the hierarchy.
    """
    spec = adaptive_mcd_spec(indices, use_b_partitions=False)
    return _execute(
        spec, profile, window=window, warmup=warmup, trace_seed=trace_seed, seed=seed
    )


def run_phase_adaptive(
    profile: WorkloadProfile,
    *,
    window: int | None = None,
    warmup: int | None = None,
    control: AdaptiveControlParams | None = None,
    trace_seed: int = DEFAULT_TRACE_SEED,
    seed: int = 0,
) -> RunResult:
    """Simulate *profile* on the phase-adaptive MCD machine.

    The machine starts in the base (smallest / fastest) configuration with B
    partitions enabled and the hardware controllers active.
    """
    from repro.core.configuration import base_adaptive_spec

    spec = base_adaptive_spec(use_b_partitions=True)
    return _execute(
        spec,
        profile,
        window=window,
        warmup=warmup,
        trace_seed=trace_seed,
        phase_adaptive=True,
        control=control,
        seed=seed,
    )


def evaluate_configuration(
    profile: WorkloadProfile,
    indices: AdaptiveConfigIndices,
    *,
    style: str = "adaptive",
    window: int | None = None,
    warmup: int | None = None,
    trace_seed: int = DEFAULT_TRACE_SEED,
    seed: int = 0,
) -> RunResult:
    """Simulate one explicit configuration point (adaptive or synchronous)."""
    if style == "adaptive":
        spec = adaptive_mcd_spec(indices, use_b_partitions=False)
    elif style == "synchronous":
        spec = synchronous_spec(indices)
    else:
        raise ValueError(f"unknown style {style!r}; use 'adaptive' or 'synchronous'")
    return _execute(
        spec, profile, window=window, warmup=warmup, trace_seed=trace_seed, seed=seed
    )


# ---------------------------------------------------------------------------
# Per-application Program-Adaptive search
# ---------------------------------------------------------------------------


def _factored_candidates(style: str) -> list[AdaptiveConfigIndices]:
    """One-structure-at-a-time candidates around the base configuration."""
    icache_range = range(
        len(OPTIMIZED_ICACHE_CONFIGS if style == "synchronous" else ADAPTIVE_ICACHE_CONFIGS)
    )
    dcache_range = range(
        len(OPTIMAL_DCACHE_CONFIGS if style == "synchronous" else ADAPTIVE_DCACHE_CONFIGS)
    )
    candidates: list[AdaptiveConfigIndices] = [AdaptiveConfigIndices()]
    candidates.extend(AdaptiveConfigIndices(icache_index=i) for i in icache_range if i)
    candidates.extend(AdaptiveConfigIndices(dcache_index=i) for i in dcache_range if i)
    candidates.extend(
        AdaptiveConfigIndices(int_queue_size=size) for size in ISSUE_QUEUE_SIZES if size != 16
    )
    candidates.extend(
        AdaptiveConfigIndices(fp_queue_size=size) for size in ISSUE_QUEUE_SIZES if size != 16
    )
    return candidates


def program_adaptive_search(
    profile: WorkloadProfile,
    *,
    mode: str = "factored",
    window: int | None = None,
    warmup: int | None = None,
    trace_seed: int = DEFAULT_TRACE_SEED,
    seed: int = 0,
) -> SweepResult:
    """Find the best whole-program adaptive MCD configuration for *profile*.

    ``mode="exhaustive"`` evaluates all 256 configurations, as the paper did;
    ``mode="factored"`` (default) sweeps each structure independently around
    the base configuration, combines the per-structure winners, and verifies
    the combination — 14-17 simulations instead of 256.
    """
    evaluated: dict[str, RunResult] = {}

    def run(indices: AdaptiveConfigIndices) -> RunResult:
        key = indices.describe()
        if key not in evaluated:
            evaluated[key] = run_program_adaptive(
                profile,
                indices,
                window=window,
                warmup=warmup,
                trace_seed=trace_seed,
                seed=seed,
            )
        return evaluated[key]

    if mode == "exhaustive":
        candidates = list(adaptive_configuration_space())
    elif mode == "factored":
        candidates = _factored_candidates("adaptive")
    else:
        raise ValueError(f"unknown search mode {mode!r}")

    for indices in candidates:
        run(indices)

    best_key = min(evaluated, key=lambda key: evaluated[key].execution_time_ps)
    best_indices = _indices_from_key(best_key)

    if mode == "factored":
        combined = _combine_factored_winners(evaluated)
        if combined.describe() not in evaluated:
            run(combined)
        best_key = min(evaluated, key=lambda key: evaluated[key].execution_time_ps)
        best_indices = _indices_from_key(best_key)

    return SweepResult(
        workload=profile.name,
        best_indices=best_indices,
        best_result=evaluated[best_key],
        evaluated=evaluated,
    )


def _indices_from_key(key: str) -> AdaptiveConfigIndices:
    # Keys look like "ic1/dc2/iq16/fq32".
    pieces = key.split("/")
    icache = int(pieces[0][2:])
    dcache = int(pieces[1][2:])
    int_queue = int(pieces[2][2:])
    fp_queue = int(pieces[3][2:])
    return AdaptiveConfigIndices(icache, dcache, int_queue, fp_queue)


def _combine_factored_winners(evaluated: Mapping[str, RunResult]) -> AdaptiveConfigIndices:
    """Combine the best value of each structure found by the factored sweep."""
    base = AdaptiveConfigIndices()

    def best_for(extract, default):
        best_value, best_time = default, None
        for key, result in evaluated.items():
            indices = _indices_from_key(key)
            others_default = (
                (indices.icache_index == base.icache_index or extract is _get_ic),
                (indices.dcache_index == base.dcache_index or extract is _get_dc),
                (indices.int_queue_size == base.int_queue_size or extract is _get_iq),
                (indices.fp_queue_size == base.fp_queue_size or extract is _get_fq),
            )
            if not all(others_default):
                continue
            if best_time is None or result.execution_time_ps < best_time:
                best_time = result.execution_time_ps
                best_value = extract(indices)
        return best_value

    return AdaptiveConfigIndices(
        icache_index=best_for(_get_ic, base.icache_index),
        dcache_index=best_for(_get_dc, base.dcache_index),
        int_queue_size=best_for(_get_iq, base.int_queue_size),
        fp_queue_size=best_for(_get_fq, base.fp_queue_size),
    )


def _get_ic(indices: AdaptiveConfigIndices) -> int:
    return indices.icache_index


def _get_dc(indices: AdaptiveConfigIndices) -> int:
    return indices.dcache_index


def _get_iq(indices: AdaptiveConfigIndices) -> int:
    return indices.int_queue_size


def _get_fq(indices: AdaptiveConfigIndices) -> int:
    return indices.fp_queue_size


# ---------------------------------------------------------------------------
# Best-overall synchronous search
# ---------------------------------------------------------------------------


def best_synchronous_configuration(
    profiles: Sequence[WorkloadProfile],
    *,
    mode: str = "factored",
    window: int | None = None,
    warmup: int | None = None,
    trace_seed: int = DEFAULT_TRACE_SEED,
    seed: int = 0,
) -> tuple[AdaptiveConfigIndices, dict[str, float]]:
    """Find the fully synchronous configuration with the best overall performance.

    Returns the winning configuration and a mapping from configuration key to
    its average normalised run time across *profiles* (lower is better).  The
    exhaustive mode walks all 1 024 synchronous configurations; the factored
    mode sweeps one structure at a time (28 configurations).
    """
    if mode == "exhaustive":
        candidates = list(synchronous_configuration_space())
    elif mode == "factored":
        candidates = _factored_candidates("synchronous")
    else:
        raise ValueError(f"unknown search mode {mode!r}")

    per_config_times: dict[str, list[float]] = {c.describe(): [] for c in candidates}
    for profile in profiles:
        times: dict[str, float] = {}
        for indices in candidates:
            result = run_synchronous(
                profile,
                indices,
                window=window,
                warmup=warmup,
                trace_seed=trace_seed,
                seed=seed,
            )
            times[indices.describe()] = result.execution_time_ps / max(
                1, result.committed_instructions
            )
        best_time = min(times.values())
        for key, value in times.items():
            per_config_times[key].append(value / best_time)

    averages = {
        key: sum(values) / len(values) for key, values in per_config_times.items() if values
    }
    best_key = min(averages, key=averages.get)
    return _indices_from_key(best_key), averages


# ---------------------------------------------------------------------------
# Figure 6 driver
# ---------------------------------------------------------------------------


def compare_workload(
    profile: WorkloadProfile,
    *,
    baseline_indices: AdaptiveConfigIndices | None = None,
    search_mode: str = "factored",
    window: int | None = None,
    warmup: int | None = None,
    control: AdaptiveControlParams | None = None,
    trace_seed: int = DEFAULT_TRACE_SEED,
    seed: int = 0,
) -> WorkloadComparison:
    """Run the full three-machine comparison for one workload (Figure 6 row)."""
    synchronous = run_synchronous(
        profile,
        baseline_indices,
        window=window,
        warmup=warmup,
        trace_seed=trace_seed,
        seed=seed,
    )
    search = program_adaptive_search(
        profile,
        mode=search_mode,
        window=window,
        warmup=warmup,
        trace_seed=trace_seed,
        seed=seed,
    )
    phase = run_phase_adaptive(
        profile,
        window=window,
        warmup=warmup,
        control=control,
        trace_seed=trace_seed,
        seed=seed,
    )
    return WorkloadComparison(
        workload=profile.name,
        synchronous=synchronous,
        program_adaptive=search.best_result,
        phase_adaptive=phase,
        program_best_indices=search.best_indices,
    )


def average_improvements(comparisons: Iterable[WorkloadComparison]) -> tuple[float, float]:
    """Arithmetic-mean Program- and Phase-Adaptive improvements (Figure 6 bars)."""
    comparisons = list(comparisons)
    if not comparisons:
        return 0.0, 0.0
    program = sum(c.program_improvement for c in comparisons) / len(comparisons)
    phase = sum(c.phase_improvement for c in comparisons) / len(comparisons)
    return program, phase
