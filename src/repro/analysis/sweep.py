"""Design-space exploration and the Figure 6 experiment drivers.

The paper evaluates three machines per application:

* the best-overall **fully synchronous** processor, found by sweeping 1 024
  configurations across the whole suite;
* the **Program-Adaptive** MCD machine, where the best of the 256 adaptive
  configurations is chosen per application by exhaustive offline search; and
* the **Phase-Adaptive** MCD machine, which starts from the base (smallest /
  fastest) configuration and lets the hardware controllers adapt at run time.

This module provides runners for each, plus both *exhaustive* and *factored*
search modes.  The factored mode sweeps one structure at a time around the
base configuration and then combines the per-structure winners; in this
model the structures live in different clock domains and interact only
weakly, so the factored search finds the same winner at a small fraction of
the cost.  The exhaustive mode is retained for fidelity and for the
benchmark harness's slow path.

All simulation goes through the :mod:`repro.engine` subsystem: every runner
builds :class:`~repro.engine.SimulationJob` descriptions and submits them to
an :class:`~repro.engine.ExperimentEngine`, so candidate batches can execute
on worker processes and identical (machine, workload, seed) combinations are
served from the result cache instead of being re-simulated.  Pass ``engine=``
to control placement and caching; the default is the process-wide engine
(serial, in-memory cache) configured in :mod:`repro.engine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.analysis.metrics import RunResult, relative_improvement
from repro.energy import (
    EnergyReport,
    ed2p_improvement,
    edp_improvement,
    energy_reduction,
    energy_report,
)
from repro.core.configuration import (
    AdaptiveConfigIndices,
    adaptive_configuration_space,
    synchronous_configuration_space,
)
from repro.core.controllers.params import AdaptiveControlParams
from repro.engine import (
    DEFAULT_TRACE_SEED,
    ExperimentEngine,
    SimulationJob,
    SpecKind,
    default_control_params,
    default_engine,
    default_warmup,
    make_trace,
)
from repro.timing.tables import (
    ADAPTIVE_DCACHE_CONFIGS,
    ADAPTIVE_ICACHE_CONFIGS,
    ISSUE_QUEUE_SIZES,
    OPTIMAL_DCACHE_CONFIGS,
    OPTIMIZED_ICACHE_CONFIGS,
)
from repro.workloads.characteristics import WorkloadProfile

__all__ = [
    "DEFAULT_TRACE_SEED",
    "SweepResult",
    "WorkloadComparison",
    "average_improvements",
    "best_synchronous_configuration",
    "compare_workload",
    "compare_workloads",
    "comparison_jobs",
    "default_control_params",
    "default_warmup",
    "evaluate_configuration",
    "make_trace",
    "program_adaptive_search",
    "run_phase_adaptive",
    "run_program_adaptive",
    "run_synchronous",
]


@dataclass(slots=True)
class SweepResult:
    """Outcome of a per-workload configuration search."""

    workload: str
    best_indices: AdaptiveConfigIndices
    best_result: RunResult
    evaluated: dict[str, RunResult] = field(default_factory=dict)

    @property
    def configurations_evaluated(self) -> int:
        """Number of simulated configurations."""
        return len(self.evaluated)

    def energy_by_configuration(self) -> dict[str, float]:
        """Total energy (nJ) of every evaluated configuration."""
        return {
            key: energy_report(result).total_nj for key, result in self.evaluated.items()
        }


@dataclass(slots=True)
class WorkloadComparison:
    """One row of the Figure 6 experiment."""

    workload: str
    synchronous: RunResult
    program_adaptive: RunResult
    phase_adaptive: RunResult
    program_best_indices: AdaptiveConfigIndices
    _energy_reports: dict[str, EnergyReport] = field(
        default_factory=dict, repr=False, compare=False
    )

    def energy_report_for(self, machine: str) -> EnergyReport:
        """Memoised :class:`EnergyReport` of one run.

        *machine* is ``"synchronous"``, ``"program_adaptive"`` or
        ``"phase_adaptive"``; the report is computed once per comparison, so
        the six energy properties and :func:`~repro.analysis.energy_table`
        never redo the per-structure arithmetic.
        """
        report = self._energy_reports.get(machine)
        if report is None:
            report = energy_report(getattr(self, machine))
            self._energy_reports[machine] = report
        return report

    @property
    def program_improvement(self) -> float:
        """Program-Adaptive improvement over the synchronous baseline."""
        return relative_improvement(self.synchronous, self.program_adaptive)

    @property
    def phase_improvement(self) -> float:
        """Phase-Adaptive improvement over the synchronous baseline."""
        return relative_improvement(self.synchronous, self.phase_adaptive)

    # Energy columns (computed from the recorded activity counters; see
    # :mod:`repro.energy`).  Positive reductions mean less energy than the
    # synchronous baseline; positive ED/ED^2 improvements mean a better
    # energy-delay trade-off.

    @property
    def program_energy_reduction(self) -> float:
        """Program-Adaptive energy reduction vs. the synchronous baseline."""
        return energy_reduction(
            self.energy_report_for("synchronous"),
            self.energy_report_for("program_adaptive"),
        )

    @property
    def phase_energy_reduction(self) -> float:
        """Phase-Adaptive energy reduction vs. the synchronous baseline."""
        return energy_reduction(
            self.energy_report_for("synchronous"),
            self.energy_report_for("phase_adaptive"),
        )

    @property
    def program_edp_improvement(self) -> float:
        """Program-Adaptive energy-delay-product improvement."""
        return edp_improvement(
            self.energy_report_for("synchronous"),
            self.energy_report_for("program_adaptive"),
        )

    @property
    def phase_edp_improvement(self) -> float:
        """Phase-Adaptive energy-delay-product improvement."""
        return edp_improvement(
            self.energy_report_for("synchronous"),
            self.energy_report_for("phase_adaptive"),
        )

    @property
    def program_ed2p_improvement(self) -> float:
        """Program-Adaptive energy-delay-squared improvement."""
        return ed2p_improvement(
            self.energy_report_for("synchronous"),
            self.energy_report_for("program_adaptive"),
        )

    @property
    def phase_ed2p_improvement(self) -> float:
        """Phase-Adaptive energy-delay-squared improvement."""
        return ed2p_improvement(
            self.energy_report_for("synchronous"),
            self.energy_report_for("phase_adaptive"),
        )


# ---------------------------------------------------------------------------
# Job construction
# ---------------------------------------------------------------------------


def _resolve_engine(engine: ExperimentEngine | None) -> ExperimentEngine:
    return engine if engine is not None else default_engine()


def _synchronous_job(
    profile: WorkloadProfile,
    indices: AdaptiveConfigIndices | None,
    *,
    window: int | None,
    warmup: int | None,
    trace_seed: int,
    seed: int,
    jitter_fraction: float = 0.0,
    sync_window_fraction: float | None = None,
) -> SimulationJob:
    return SimulationJob(
        profile=profile,
        spec_kind=SpecKind.BEST_SYNCHRONOUS if indices is None else SpecKind.SYNCHRONOUS,
        indices=indices,
        window=window,
        warmup=warmup,
        trace_seed=trace_seed,
        seed=seed,
        jitter_fraction=jitter_fraction,
        sync_window_fraction=sync_window_fraction,
    )


def _program_adaptive_job(
    profile: WorkloadProfile,
    indices: AdaptiveConfigIndices,
    *,
    window: int | None,
    warmup: int | None,
    trace_seed: int,
    seed: int,
    jitter_fraction: float = 0.0,
    sync_window_fraction: float | None = None,
) -> SimulationJob:
    # Whole-program runs use only the A partitions: a miss in A goes straight
    # to the next level of the hierarchy, as in the paper.
    return SimulationJob(
        profile=profile,
        spec_kind=SpecKind.ADAPTIVE,
        indices=indices,
        use_b_partitions=False,
        window=window,
        warmup=warmup,
        trace_seed=trace_seed,
        seed=seed,
        jitter_fraction=jitter_fraction,
        sync_window_fraction=sync_window_fraction,
    )


def _phase_adaptive_job(
    profile: WorkloadProfile,
    *,
    window: int | None,
    warmup: int | None,
    control: AdaptiveControlParams | None,
    trace_seed: int,
    seed: int,
    jitter_fraction: float = 0.0,
    sync_window_fraction: float | None = None,
    control_overrides: Mapping[str, Any] | None = None,
) -> SimulationJob:
    return SimulationJob(
        profile=profile,
        spec_kind=SpecKind.BASE_ADAPTIVE,
        use_b_partitions=True,
        window=window,
        warmup=warmup,
        trace_seed=trace_seed,
        phase_adaptive=True,
        control=control,
        seed=seed,
        jitter_fraction=jitter_fraction,
        sync_window_fraction=sync_window_fraction,
        control_overrides=control_overrides,
    )


# ---------------------------------------------------------------------------
# Single-machine runners
# ---------------------------------------------------------------------------


def run_synchronous(
    profile: WorkloadProfile,
    indices: AdaptiveConfigIndices | None = None,
    *,
    window: int | None = None,
    warmup: int | None = None,
    trace_seed: int = DEFAULT_TRACE_SEED,
    seed: int = 0,
    jitter_fraction: float = 0.0,
    sync_window_fraction: float | None = None,
    engine: ExperimentEngine | None = None,
) -> RunResult:
    """Simulate *profile* on a fully synchronous machine.

    Without *indices* the paper's best-overall synchronous configuration is
    used (64 KB direct-mapped I-cache, 32 KB/256 KB direct-mapped D/L2 and
    16-entry issue queues).
    """
    job = _synchronous_job(
        profile,
        indices,
        window=window,
        warmup=warmup,
        trace_seed=trace_seed,
        seed=seed,
        jitter_fraction=jitter_fraction,
        sync_window_fraction=sync_window_fraction,
    )
    return _resolve_engine(engine).run(job)


def run_program_adaptive(
    profile: WorkloadProfile,
    indices: AdaptiveConfigIndices,
    *,
    window: int | None = None,
    warmup: int | None = None,
    trace_seed: int = DEFAULT_TRACE_SEED,
    seed: int = 0,
    jitter_fraction: float = 0.0,
    sync_window_fraction: float | None = None,
    engine: ExperimentEngine | None = None,
) -> RunResult:
    """Simulate *profile* on the adaptive MCD machine fixed at *indices*.

    As in the paper's whole-program experiments, only the A partitions are
    used: a miss in A goes straight to the next level of the hierarchy.
    """
    job = _program_adaptive_job(
        profile,
        indices,
        window=window,
        warmup=warmup,
        trace_seed=trace_seed,
        seed=seed,
        jitter_fraction=jitter_fraction,
        sync_window_fraction=sync_window_fraction,
    )
    return _resolve_engine(engine).run(job)


def run_phase_adaptive(
    profile: WorkloadProfile,
    *,
    window: int | None = None,
    warmup: int | None = None,
    control: AdaptiveControlParams | None = None,
    trace_seed: int = DEFAULT_TRACE_SEED,
    seed: int = 0,
    jitter_fraction: float = 0.0,
    sync_window_fraction: float | None = None,
    control_overrides: Mapping[str, Any] | None = None,
    engine: ExperimentEngine | None = None,
) -> RunResult:
    """Simulate *profile* on the phase-adaptive MCD machine.

    The machine starts in the base (smallest / fastest) configuration with B
    partitions enabled and the hardware controllers active.
    ``control_overrides`` patches individual controller parameters (interval,
    hysteresis, ...) on top of the window-scaled defaults.
    """
    job = _phase_adaptive_job(
        profile,
        window=window,
        warmup=warmup,
        control=control,
        trace_seed=trace_seed,
        seed=seed,
        jitter_fraction=jitter_fraction,
        sync_window_fraction=sync_window_fraction,
        control_overrides=control_overrides,
    )
    return _resolve_engine(engine).run(job)


def evaluate_configuration(
    profile: WorkloadProfile,
    indices: AdaptiveConfigIndices,
    *,
    style: str = "adaptive",
    window: int | None = None,
    warmup: int | None = None,
    trace_seed: int = DEFAULT_TRACE_SEED,
    seed: int = 0,
    jitter_fraction: float = 0.0,
    sync_window_fraction: float | None = None,
    engine: ExperimentEngine | None = None,
) -> RunResult:
    """Simulate one explicit configuration point (adaptive or synchronous)."""
    if style == "adaptive":
        job = _program_adaptive_job(
            profile,
            indices,
            window=window,
            warmup=warmup,
            trace_seed=trace_seed,
            seed=seed,
            jitter_fraction=jitter_fraction,
            sync_window_fraction=sync_window_fraction,
        )
    elif style == "synchronous":
        job = _synchronous_job(
            profile,
            indices,
            window=window,
            warmup=warmup,
            trace_seed=trace_seed,
            seed=seed,
            jitter_fraction=jitter_fraction,
            sync_window_fraction=sync_window_fraction,
        )
    else:
        raise ValueError(f"unknown style {style!r}; use 'adaptive' or 'synchronous'")
    return _resolve_engine(engine).run(job)


# ---------------------------------------------------------------------------
# Per-application Program-Adaptive search
# ---------------------------------------------------------------------------


def _factored_candidates(style: str) -> list[AdaptiveConfigIndices]:
    """One-structure-at-a-time candidates around the base configuration."""
    icache_range = range(
        len(OPTIMIZED_ICACHE_CONFIGS if style == "synchronous" else ADAPTIVE_ICACHE_CONFIGS)
    )
    dcache_range = range(
        len(OPTIMAL_DCACHE_CONFIGS if style == "synchronous" else ADAPTIVE_DCACHE_CONFIGS)
    )
    candidates: list[AdaptiveConfigIndices] = [AdaptiveConfigIndices()]
    candidates.extend(AdaptiveConfigIndices(icache_index=i) for i in icache_range if i)
    candidates.extend(AdaptiveConfigIndices(dcache_index=i) for i in dcache_range if i)
    candidates.extend(
        AdaptiveConfigIndices(int_queue_size=size) for size in ISSUE_QUEUE_SIZES if size != 16
    )
    candidates.extend(
        AdaptiveConfigIndices(fp_queue_size=size) for size in ISSUE_QUEUE_SIZES if size != 16
    )
    return candidates


def _search_candidates(mode: str, style: str) -> list[AdaptiveConfigIndices]:
    if mode == "exhaustive":
        space = (
            synchronous_configuration_space()
            if style == "synchronous"
            else adaptive_configuration_space()
        )
        candidates = list(space)
    elif mode == "factored":
        candidates = _factored_candidates(style)
    else:
        raise ValueError(f"unknown search mode {mode!r}")
    # Defensive de-duplication (insertion order preserved) so the engine sees
    # each distinct configuration exactly once per batch.
    return list({c.describe(): c for c in candidates}.values())


def program_adaptive_search(
    profile: WorkloadProfile,
    *,
    mode: str = "factored",
    window: int | None = None,
    warmup: int | None = None,
    trace_seed: int = DEFAULT_TRACE_SEED,
    seed: int = 0,
    engine: ExperimentEngine | None = None,
) -> SweepResult:
    """Find the best whole-program adaptive MCD configuration for *profile*.

    ``mode="exhaustive"`` evaluates all 256 configurations, as the paper did;
    ``mode="factored"`` (default) sweeps each structure independently around
    the base configuration, combines the per-structure winners, and verifies
    the combination — 14-17 simulations instead of 256.  The candidate batch
    is submitted to the engine in one call, so a parallel executor spreads it
    across workers.
    """
    eng = _resolve_engine(engine)
    candidates = _search_candidates(mode, "adaptive")

    def jobs_for(batch: Sequence[AdaptiveConfigIndices]) -> list[SimulationJob]:
        return [
            _program_adaptive_job(
                profile,
                indices,
                window=window,
                warmup=warmup,
                trace_seed=trace_seed,
                seed=seed,
            )
            for indices in batch
        ]

    results = eng.run_all(jobs_for(candidates))
    evaluated = {
        indices.describe(): result for indices, result in zip(candidates, results)
    }

    if mode == "factored":
        combined = _combine_factored_winners(evaluated)
        if combined.describe() not in evaluated:
            evaluated[combined.describe()] = eng.run_all(jobs_for([combined]))[0]

    best_key = min(evaluated, key=lambda key: evaluated[key].execution_time_ps)
    return SweepResult(
        workload=profile.name,
        best_indices=_indices_from_key(best_key),
        best_result=evaluated[best_key],
        evaluated=evaluated,
    )


def _indices_from_key(key: str) -> AdaptiveConfigIndices:
    # Keys look like "ic1/dc2/iq16/fq32".
    return AdaptiveConfigIndices.from_key(key)


def _combine_factored_winners(evaluated: Mapping[str, RunResult]) -> AdaptiveConfigIndices:
    """Combine the best value of each structure found by the factored sweep."""
    base = AdaptiveConfigIndices()

    def best_for(extract, default):
        best_value, best_time = default, None
        for key, result in evaluated.items():
            indices = _indices_from_key(key)
            others_default = (
                (indices.icache_index == base.icache_index or extract is _get_ic),
                (indices.dcache_index == base.dcache_index or extract is _get_dc),
                (indices.int_queue_size == base.int_queue_size or extract is _get_iq),
                (indices.fp_queue_size == base.fp_queue_size or extract is _get_fq),
            )
            if not all(others_default):
                continue
            if best_time is None or result.execution_time_ps < best_time:
                best_time = result.execution_time_ps
                best_value = extract(indices)
        return best_value

    return AdaptiveConfigIndices(
        icache_index=best_for(_get_ic, base.icache_index),
        dcache_index=best_for(_get_dc, base.dcache_index),
        int_queue_size=best_for(_get_iq, base.int_queue_size),
        fp_queue_size=best_for(_get_fq, base.fp_queue_size),
    )


def _get_ic(indices: AdaptiveConfigIndices) -> int:
    return indices.icache_index


def _get_dc(indices: AdaptiveConfigIndices) -> int:
    return indices.dcache_index


def _get_iq(indices: AdaptiveConfigIndices) -> int:
    return indices.int_queue_size


def _get_fq(indices: AdaptiveConfigIndices) -> int:
    return indices.fp_queue_size


# ---------------------------------------------------------------------------
# Best-overall synchronous search
# ---------------------------------------------------------------------------


def best_synchronous_configuration(
    profiles: Sequence[WorkloadProfile],
    *,
    mode: str = "factored",
    window: int | None = None,
    warmup: int | None = None,
    trace_seed: int = DEFAULT_TRACE_SEED,
    seed: int = 0,
    engine: ExperimentEngine | None = None,
) -> tuple[AdaptiveConfigIndices, dict[str, float]]:
    """Find the fully synchronous configuration with the best overall performance.

    Returns the winning configuration and a mapping from configuration key to
    its average normalised run time across *profiles* (lower is better).  The
    exhaustive mode walks all 1 024 synchronous configurations; the factored
    mode sweeps one structure at a time (28 configurations).  The whole
    (profile × configuration) cross product is submitted as one engine batch.
    """
    eng = _resolve_engine(engine)
    candidates = _search_candidates(mode, "synchronous")

    jobs = [
        _synchronous_job(
            profile, indices, window=window, warmup=warmup, trace_seed=trace_seed, seed=seed
        )
        for profile in profiles
        for indices in candidates
    ]
    results = eng.run_all(jobs)

    per_config_times: dict[str, list[float]] = {c.describe(): [] for c in candidates}
    for offset in range(0, len(jobs), len(candidates)):
        times: dict[str, float] = {}
        for indices, result in zip(candidates, results[offset : offset + len(candidates)]):
            times[indices.describe()] = result.execution_time_ps / max(
                1, result.committed_instructions
            )
        best_time = min(times.values())
        for key, value in times.items():
            per_config_times[key].append(value / best_time)

    averages = {
        key: sum(values) / len(values) for key, values in per_config_times.items() if values
    }
    best_key = min(averages, key=averages.get)
    return _indices_from_key(best_key), averages


# ---------------------------------------------------------------------------
# Figure 6 driver
# ---------------------------------------------------------------------------


def compare_workload(
    profile: WorkloadProfile,
    *,
    baseline_indices: AdaptiveConfigIndices | None = None,
    search_mode: str = "factored",
    window: int | None = None,
    warmup: int | None = None,
    control: AdaptiveControlParams | None = None,
    trace_seed: int = DEFAULT_TRACE_SEED,
    seed: int = 0,
    jitter_fraction: float = 0.0,
    sync_window_fraction: float | None = None,
    control_overrides: Mapping[str, Any] | None = None,
    engine: ExperimentEngine | None = None,
) -> WorkloadComparison:
    """Run the full three-machine comparison for one workload (Figure 6 row)."""
    return compare_workloads(
        [profile],
        baseline_indices=baseline_indices,
        search_mode=search_mode,
        window=window,
        warmup=warmup,
        control=control,
        trace_seed=trace_seed,
        seed=seed,
        jitter_fraction=jitter_fraction,
        sync_window_fraction=sync_window_fraction,
        control_overrides=control_overrides,
        engine=engine,
    )[0]


def comparison_jobs(
    profiles: Sequence[WorkloadProfile],
    *,
    baseline_indices: AdaptiveConfigIndices | None = None,
    search_mode: str = "factored",
    window: int | None = None,
    warmup: int | None = None,
    control: AdaptiveControlParams | None = None,
    trace_seed: int = DEFAULT_TRACE_SEED,
    seed: int = 0,
    jitter_fraction: float = 0.0,
    sync_window_fraction: float | None = None,
    control_overrides: Mapping[str, Any] | None = None,
) -> list[SimulationJob]:
    """The statically enumerable jobs of a Figure 6 comparison batch.

    For every profile: the synchronous baseline, the Phase-Adaptive run and
    every Program-Adaptive search candidate, in the exact order
    :func:`compare_workloads` submits them.  This is the *plannable* part of
    a campaign — what the distributed fabric shards across workers (see
    :mod:`repro.engine.fabric`).  The factored search's combined-winner jobs
    depend on these results and so cannot be enumerated up front; the resume
    pass simulates that small tail.
    """
    candidates = _search_candidates(search_mode, "adaptive")
    jobs: list[SimulationJob] = []
    for profile in profiles:
        jobs.append(
            _synchronous_job(
                profile,
                baseline_indices,
                window=window,
                warmup=warmup,
                trace_seed=trace_seed,
                seed=seed,
            )
        )
        jobs.append(
            _phase_adaptive_job(
                profile,
                window=window,
                warmup=warmup,
                control=control,
                trace_seed=trace_seed,
                seed=seed,
                jitter_fraction=jitter_fraction,
                sync_window_fraction=sync_window_fraction,
                control_overrides=control_overrides,
            )
        )
        jobs.extend(
            _program_adaptive_job(
                profile,
                indices,
                window=window,
                warmup=warmup,
                trace_seed=trace_seed,
                seed=seed,
                jitter_fraction=jitter_fraction,
                sync_window_fraction=sync_window_fraction,
            )
            for indices in candidates
        )
    return jobs


def compare_workloads(
    profiles: Sequence[WorkloadProfile],
    *,
    baseline_indices: AdaptiveConfigIndices | None = None,
    search_mode: str = "factored",
    window: int | None = None,
    warmup: int | None = None,
    control: AdaptiveControlParams | None = None,
    trace_seed: int = DEFAULT_TRACE_SEED,
    seed: int = 0,
    jitter_fraction: float = 0.0,
    sync_window_fraction: float | None = None,
    control_overrides: Mapping[str, Any] | None = None,
    engine: ExperimentEngine | None = None,
) -> list[WorkloadComparison]:
    """Run the Figure 6 comparison for every workload in *profiles*.

    All synchronous baselines, all Program-Adaptive search candidates and all
    Phase-Adaptive runs — across every workload — are submitted to the engine
    as one batch, so a parallel executor sees the full sweep at once.  A
    second, much smaller batch evaluates the factored search's combined
    winners where they were not already simulated.  Results are identical to
    calling :func:`compare_workload` per profile.

    The timing-uncertainty knobs (``jitter_fraction``,
    ``sync_window_fraction``) and the controller overrides apply to the MCD
    machines only: the fully synchronous baseline runs a single global clock
    with inter-domain synchronisation disabled, so the paper models it free
    of inter-domain timing uncertainty.  Improvements under a knob setting
    are therefore measured against the same baseline row as the jitter-free
    experiment, which is what the sensitivity driver reports deltas over.
    """
    eng = _resolve_engine(engine)
    candidates = _search_candidates(search_mode, "adaptive")
    jobs = comparison_jobs(
        profiles,
        baseline_indices=baseline_indices,
        search_mode=search_mode,
        window=window,
        warmup=warmup,
        control=control,
        trace_seed=trace_seed,
        seed=seed,
        jitter_fraction=jitter_fraction,
        sync_window_fraction=sync_window_fraction,
        control_overrides=control_overrides,
    )
    results = eng.run_all(jobs)

    stride = 2 + len(candidates)
    evaluated_per_profile: list[dict[str, RunResult]] = []
    combined_jobs: list[SimulationJob] = []
    combined_slots: list[tuple[int, AdaptiveConfigIndices]] = []
    for row, profile in enumerate(profiles):
        offset = row * stride
        evaluated = {
            indices.describe(): result
            for indices, result in zip(
                candidates, results[offset + 2 : offset + stride]
            )
        }
        evaluated_per_profile.append(evaluated)
        if search_mode == "factored":
            combined = _combine_factored_winners(evaluated)
            if combined.describe() not in evaluated:
                combined_slots.append((row, combined))
                combined_jobs.append(
                    _program_adaptive_job(
                        profile,
                        combined,
                        window=window,
                        warmup=warmup,
                        trace_seed=trace_seed,
                        seed=seed,
                        jitter_fraction=jitter_fraction,
                        sync_window_fraction=sync_window_fraction,
                    )
                )
    for (row, combined), result in zip(combined_slots, eng.run_all(combined_jobs)):
        evaluated_per_profile[row][combined.describe()] = result

    comparisons: list[WorkloadComparison] = []
    for row, profile in enumerate(profiles):
        offset = row * stride
        evaluated = evaluated_per_profile[row]
        best_key = min(evaluated, key=lambda key: evaluated[key].execution_time_ps)
        comparisons.append(
            WorkloadComparison(
                workload=profile.name,
                synchronous=results[offset],
                program_adaptive=evaluated[best_key],
                phase_adaptive=results[offset + 1],
                program_best_indices=_indices_from_key(best_key),
            )
        )
    return comparisons


def average_improvements(comparisons: Iterable[WorkloadComparison]) -> tuple[float, float]:
    """Arithmetic-mean Program- and Phase-Adaptive improvements (Figure 6 bars)."""
    comparisons = list(comparisons)
    if not comparisons:
        return 0.0, 0.0
    program = sum(c.program_improvement for c in comparisons) / len(comparisons)
    phase = sum(c.phase_improvement for c in comparisons) / len(comparisons)
    return program, phase
