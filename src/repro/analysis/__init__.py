"""Analysis layer: run records, design-space sweeps, report tables and the
hardware-cost model for the controller circuitry."""

from repro.analysis.metrics import (
    ConfigurationChange,
    RunResult,
    relative_improvement,
    geometric_mean,
)
from repro.analysis.reporting import energy_table, format_table, improvement_table

# The sweep and sensitivity modules depend on repro.core (which itself uses
# repro.analysis.metrics), so they are imported lazily to keep the package
# import-order independent.  hardware_cost is lazy for a different reason:
# it doubles as ``python -m repro.analysis.hardware_cost``, and an eager
# import here would leave runpy re-executing an already-imported module.
_HARDWARE_COST_EXPORTS = {
    "HardwareComponent",
    "phase_adaptive_cache_hardware",
    "total_equivalent_gates",
    "ilp_tracker_storage_bits",
}
_SENSITIVITY_EXPORTS = {
    "SensitivityAxis",
    "SensitivityPoint",
    "SensitivityReport",
    "WorkloadSensitivity",
    "sensitivity_sweep",
}

_SWEEP_EXPORTS = {
    "SweepResult",
    "WorkloadComparison",
    "average_improvements",
    "best_synchronous_configuration",
    "evaluate_configuration",
    "program_adaptive_search",
    "run_phase_adaptive",
    "run_program_adaptive",
    "run_synchronous",
    "compare_workload",
    "compare_workloads",
    "default_control_params",
    "default_warmup",
    "make_trace",
}


def __getattr__(name):
    if name in _SWEEP_EXPORTS:
        from repro.analysis import sweep

        return getattr(sweep, name)
    if name in _SENSITIVITY_EXPORTS:
        from repro.analysis import sensitivity

        return getattr(sensitivity, name)
    if name in _HARDWARE_COST_EXPORTS:
        from repro.analysis import hardware_cost

        return getattr(hardware_cost, name)
    raise AttributeError(f"module 'repro.analysis' has no attribute {name!r}")

__all__ = [
    "ConfigurationChange",
    "RunResult",
    "relative_improvement",
    "geometric_mean",
    "HardwareComponent",
    "phase_adaptive_cache_hardware",
    "total_equivalent_gates",
    "ilp_tracker_storage_bits",
    "SensitivityAxis",
    "SensitivityPoint",
    "SensitivityReport",
    "WorkloadSensitivity",
    "sensitivity_sweep",
    "SweepResult",
    "WorkloadComparison",
    "best_synchronous_configuration",
    "evaluate_configuration",
    "program_adaptive_search",
    "run_phase_adaptive",
    "run_program_adaptive",
    "run_synchronous",
    "compare_workload",
    "compare_workloads",
    "energy_table",
    "format_table",
    "improvement_table",
]
