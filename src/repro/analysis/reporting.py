"""Plain-text report tables for the benchmark harness."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an ASCII table with right-padded columns."""
    rendered_rows = [[_render(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))
    lines = [
        "  ".join(header.ljust(widths[index]) for index, header in enumerate(headers)),
        "  ".join("-" * widths[index] for index in range(len(headers))),
    ]
    for row in rendered_rows:
        lines.append(
            "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row))
        )
    return "\n".join(lines)


def _render(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def improvement_table(comparisons: Iterable) -> str:
    """Render the Figure 6 style per-workload improvement table.

    *comparisons* is an iterable of
    :class:`~repro.analysis.sweep.WorkloadComparison`.
    """
    rows = []
    for comparison in comparisons:
        rows.append(
            (
                comparison.workload,
                f"{comparison.program_improvement * 100:+.1f}%",
                f"{comparison.phase_improvement * 100:+.1f}%",
            )
        )
    return format_table(("workload", "program-adaptive", "phase-adaptive"), rows)


def energy_table(comparisons: Iterable) -> str:
    """Render the per-workload energy / ED / ED^2 columns of a Figure 6 sweep.

    One row per :class:`~repro.analysis.sweep.WorkloadComparison`: the
    synchronous baseline's energy per instruction, each adaptive machine's
    energy reduction against it, and the phase-adaptive machine's
    energy-delay trade-off metrics.
    """
    rows = []
    for comparison in comparisons:
        baseline = comparison.energy_report_for("synchronous")
        rows.append(
            (
                comparison.workload,
                f"{baseline.energy_per_instruction_nj:.2f}",
                f"{comparison.program_energy_reduction * 100:+.1f}%",
                f"{comparison.phase_energy_reduction * 100:+.1f}%",
                f"{comparison.phase_edp_improvement * 100:+.1f}%",
                f"{comparison.phase_ed2p_improvement * 100:+.1f}%",
            )
        )
    return format_table(
        (
            "workload",
            "sync nJ/inst",
            "dE program",
            "dE phase",
            "dED phase",
            "dED^2 phase",
        ),
        rows,
    )
