"""Per-process memoisation of synthetic instruction traces.

Every simulation job regenerates its dynamic instruction stream from the
deterministic :class:`~repro.workloads.generator.SyntheticTraceGenerator`.
Within one sweep the same ``(profile, seed)`` trace is consumed by dozens of
machine configurations, and generating it — random draws, operand selection,
:class:`~repro.isa.instruction.Instruction` construction — dominated the
sweep's wall-clock.  A :class:`ReplayableTrace` materialises the stream
lazily the first time it is consumed and replays the shared, immutable
``Instruction`` objects to every later consumer, which is bit-identical by
construction: replay yields exactly the objects the generator produced, in
order, including their ``seq`` numbers.

The cache is per process (worker processes of the parallel executor each
build their own) and bounded: ``REPRO_TRACE_CACHE`` sets the number of
distinct traces kept (default 4; ``0`` disables memoisation entirely).
"""

from __future__ import annotations

import json
import os
import warnings
from array import array
from collections import OrderedDict
from typing import Iterable, Iterator

from repro.isa.instruction import Instruction
from repro.isa.opcodes import (
    FLAG_BRANCH,
    FLAG_MEMORY,
    FLAG_TAKEN,
    OPCLASS_FLAGS,
    OPCLASSES,
    OPCODE_ID,
)
from repro.isa.registers import NO_REGISTER, REGISTER_NAMES, register_index
from repro.workloads.characteristics import DOC_ONLY_FIELDS, WorkloadProfile
from repro.workloads.generator import SyntheticTraceGenerator

#: Default number of distinct (profile, seed) traces memoised per process.
DEFAULT_CACHE_TRACES = 4


#: Whether the unparsable-REPRO_TRACE_CACHE warning has been emitted (once
#: per process; reset by tests via :func:`_reset_limit_warning`).
_warned_invalid_limit = False


def _reset_limit_warning() -> None:
    global _warned_invalid_limit
    _warned_invalid_limit = False


def _cache_limit() -> int:
    """The configured trace-cache size: ``REPRO_TRACE_CACHE`` or the default.

    Negative values clamp to 0 (memoisation disabled); an unparsable value
    falls back to the default and warns once per process instead of being
    silently swallowed.
    """
    global _warned_invalid_limit
    raw = os.environ.get("REPRO_TRACE_CACHE")
    if raw is None:
        return DEFAULT_CACHE_TRACES
    try:
        return max(0, int(raw))
    except ValueError:
        if not _warned_invalid_limit:
            _warned_invalid_limit = True
            warnings.warn(
                f"ignoring unparsable REPRO_TRACE_CACHE value {raw!r}; "
                f"using the default of {DEFAULT_CACHE_TRACES}",
                RuntimeWarning,
                stacklevel=2,
            )
        return DEFAULT_CACHE_TRACES


class CompiledTrace:
    """Flat structure-of-arrays compilation of one instruction stream.

    Each instruction becomes one row across parallel ``array`` columns:
    program counter, dense opcode id, opclass/branch flag bitmask, register
    ids (destination and up to two sources, ``NO_REGISTER`` when absent —
    the source ids carry the stream's dependence structure), effective
    memory address, branch target and sequence number.  The front end
    fetches by column index instead of materialising per-instruction
    objects, which removes object construction and attribute chasing from
    the per-fetch hot path entirely.

    Columns grow lazily as :meth:`ensure` pulls from the source stream, so
    an infinite generator compiles incrementally exactly as far as a run
    consumes it.  With ``keep_objects=True`` the source ``Instruction``
    objects are retained and served back verbatim by :meth:`instruction_at`
    (used when wrapping caller-supplied iterators, preserving object
    identity for legacy consumers); otherwise :meth:`instruction_at`
    reconstructs an equal ``Instruction`` from the columns on demand.
    """

    __slots__ = (
        "pc",
        "op",
        "flags",
        "dest",
        "src0",
        "src1",
        "address",
        "target",
        "seq",
        "_iterator",
        "_objects",
        "_exhausted",
    )

    def __init__(
        self,
        instructions: Iterable[Instruction] | Iterator[Instruction],
        *,
        keep_objects: bool = False,
    ) -> None:
        self.pc = array("Q")
        self.op = array("B")
        self.flags = array("B")
        self.dest = array("b")
        self.src0 = array("b")
        self.src1 = array("b")
        self.address = array("Q")
        self.target = array("Q")
        self.seq = array("q")
        self._iterator = iter(instructions)
        self._objects: list[Instruction] | None = [] if keep_objects else None
        self._exhausted = False

    @property
    def length(self) -> int:
        """Number of instructions compiled into the columns so far."""
        return len(self.seq)

    @property
    def exhausted(self) -> bool:
        """True once the source stream has ended (never, for generators)."""
        return self._exhausted

    def ensure(self, count: int) -> int:
        """Compile the stream up to *count* rows; return the available length."""
        seq = self.seq
        length = len(seq)
        if length >= count or self._exhausted:
            return length
        pc = self.pc
        op = self.op
        flags = self.flags
        dest = self.dest
        src0 = self.src0
        src1 = self.src1
        address = self.address
        target = self.target
        iterator = self._iterator
        objects = self._objects
        opcode_id = OPCODE_ID
        opclass_flags = OPCLASS_FLAGS
        reg_index = register_index
        while length < count:
            inst = next(iterator, None)
            if inst is None:
                self._exhausted = True
                break
            sources = inst.sources
            if len(sources) > 2:
                raise ValueError(
                    "compiled traces encode at most two source operands, got "
                    f"{sources!r}"
                )
            oid = opcode_id[inst.op]
            bits = opclass_flags[oid]
            if inst.is_branch:
                bits |= FLAG_BRANCH
                if inst.taken:
                    bits |= FLAG_TAKEN
            pc.append(inst.pc)
            op.append(oid)
            flags.append(bits)
            d = inst.dest
            dest.append(NO_REGISTER if d is None else reg_index(d))
            n = len(sources)
            src0.append(reg_index(sources[0]) if n else NO_REGISTER)
            src1.append(reg_index(sources[1]) if n > 1 else NO_REGISTER)
            address.append(inst.address if inst.address is not None else 0)
            target.append(inst.target if inst.target is not None else 0)
            seq.append(inst.seq)
            if objects is not None:
                objects.append(inst)
            length += 1
        return length

    def instruction_at(self, index: int) -> Instruction:
        """The ``Instruction`` at *index* (original object or column rebuild)."""
        objects = self._objects
        if objects is not None:
            return objects[index]
        bits = self.flags[index]
        d = self.dest[index]
        s0 = self.src0[index]
        if s0 == NO_REGISTER:
            sources: tuple[str, ...] = ()
        else:
            s1 = self.src1[index]
            if s1 == NO_REGISTER:
                sources = (REGISTER_NAMES[s0],)
            else:
                sources = (REGISTER_NAMES[s0], REGISTER_NAMES[s1])
        is_branch = bool(bits & FLAG_BRANCH)
        return Instruction(
            pc=self.pc[index],
            op=OPCLASSES[self.op[index]],
            sources=sources,
            dest=None if d == NO_REGISTER else REGISTER_NAMES[d],
            address=self.address[index] if bits & FLAG_MEMORY else None,
            is_branch=is_branch,
            taken=bool(bits & FLAG_TAKEN),
            target=self.target[index] if is_branch else None,
            seq=self.seq[index],
        )


def _generator_stream(generator: SyntheticTraceGenerator) -> Iterator[Instruction]:
    """Adapt a (never-ending) synthetic generator to the iterator protocol."""
    next_instruction = generator._next_instruction
    while True:
        yield next_instruction()


class ReplayableTrace:
    """A lazily materialised, replayable view of one generator's stream.

    Presents the same consumption API as the generator itself
    (``instructions()`` / ``generate()`` / iteration, plus the ``profile``
    and ``seed`` attributes), with one deliberate difference: every call to
    :meth:`instructions` starts a fresh iterator from sequence number 0 —
    that replay-from-the-start semantics is what lets many simulation jobs
    share one trace.  :meth:`generate` remains stateful exactly like the
    generator's ("the *next* count instructions"), so warm-up-then-continue
    consumption patterns work unchanged; note that on a *cached* trace that
    cursor is shared by everyone holding the same object, just as it would
    be on a shared generator.
    """

    __slots__ = (
        "profile",
        "seed",
        "_generator",
        "_materialised",
        "_generate_cursor",
        "_compiled",
    )

    def __init__(self, profile: WorkloadProfile, *, seed: int) -> None:
        self.profile = profile
        self.seed = seed
        self._generator = SyntheticTraceGenerator(profile, seed=seed)
        self._materialised: list[Instruction] = []
        self._generate_cursor = 0
        self._compiled: CompiledTrace | None = None

    def instructions(self) -> Iterator[Instruction]:
        """Yield the dynamic instruction stream from the beginning, forever."""
        materialised = self._materialised
        next_instruction = self._generator._next_instruction
        index = 0
        while True:
            if index == len(materialised):
                materialised.append(next_instruction())
            yield materialised[index]
            index += 1

    def __iter__(self) -> Iterator[Instruction]:
        return self.instructions()

    def generate(self, count: int) -> list[Instruction]:
        """Return the next *count* instructions (stateful, like the generator)."""
        materialised = self._materialised
        next_instruction = self._generator._next_instruction
        start = self._generate_cursor
        end = start + count
        while len(materialised) < end:
            materialised.append(next_instruction())
        self._generate_cursor = end
        return materialised[start:end]

    @property
    def materialised_length(self) -> int:
        """Number of instructions materialised so far (for tests/diagnostics)."""
        return len(self._materialised)

    @property
    def compiled(self) -> CompiledTrace:
        """The flat-column compilation of this trace (built once, shared).

        The compilation replays a fresh deterministic generator for the same
        ``(profile, seed)`` so the columns are bit-exact regardless of how
        much of the object stream was materialised, and it is cached on the
        trace: every simulation job sharing this cached trace reads the same
        columns, which is what makes the compiled fast path's trace work
        once-per-process like the object path's.
        """
        if self._compiled is None:
            self._compiled = CompiledTrace(
                _generator_stream(
                    SyntheticTraceGenerator(self.profile, seed=self.seed)
                )
            )
        return self._compiled


_cache: "OrderedDict[tuple[str, int], ReplayableTrace]" = OrderedDict()


def _profile_key(profile: WorkloadProfile) -> str:
    """Cache key over the fields that influence the generated stream.

    Doc-only fields (``description`` and the paper-provenance records) are
    excluded: editing one must neither evict a cached trace nor make two
    otherwise-identical profiles miss each other's stream.
    """
    data = {
        key: value
        for key, value in profile.to_dict().items()
        if key not in DOC_ONLY_FIELDS
    }
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def cached_trace(profile: WorkloadProfile, *, seed: int) -> ReplayableTrace:
    """A (possibly shared) replayable trace for ``(profile, seed)``.

    With memoisation disabled (``REPRO_TRACE_CACHE=0``) a fresh, uncached
    :class:`ReplayableTrace` is returned, which behaves exactly like the
    plain generator.
    """
    limit = _cache_limit()
    if limit <= 0:
        return ReplayableTrace(profile, seed=seed)
    key = (_profile_key(profile), seed)
    trace = _cache.get(key)
    if trace is None:
        trace = ReplayableTrace(profile, seed=seed)
        _cache[key] = trace
    else:
        _cache.move_to_end(key)
    while len(_cache) > limit:
        _cache.popitem(last=False)
    return trace


def clear_trace_cache() -> None:
    """Drop every memoised trace (tests and memory-pressure escape hatch)."""
    _cache.clear()
