"""Per-process memoisation of synthetic instruction traces.

Every simulation job regenerates its dynamic instruction stream from the
deterministic :class:`~repro.workloads.generator.SyntheticTraceGenerator`.
Within one sweep the same ``(profile, seed)`` trace is consumed by dozens of
machine configurations, and generating it — random draws, operand selection,
:class:`~repro.isa.instruction.Instruction` construction — dominated the
sweep's wall-clock.  A :class:`ReplayableTrace` materialises the stream
lazily the first time it is consumed and replays the shared, immutable
``Instruction`` objects to every later consumer, which is bit-identical by
construction: replay yields exactly the objects the generator produced, in
order, including their ``seq`` numbers.

The cache is per process (worker processes of the parallel executor each
build their own) and bounded: ``REPRO_TRACE_CACHE`` sets the number of
distinct traces kept (default 4; ``0`` disables memoisation entirely).
"""

from __future__ import annotations

import json
import os
import warnings
from collections import OrderedDict
from typing import Iterator

from repro.isa.instruction import Instruction
from repro.workloads.characteristics import DOC_ONLY_FIELDS, WorkloadProfile
from repro.workloads.generator import SyntheticTraceGenerator

#: Default number of distinct (profile, seed) traces memoised per process.
DEFAULT_CACHE_TRACES = 4


#: Whether the unparsable-REPRO_TRACE_CACHE warning has been emitted (once
#: per process; reset by tests via :func:`_reset_limit_warning`).
_warned_invalid_limit = False


def _reset_limit_warning() -> None:
    global _warned_invalid_limit
    _warned_invalid_limit = False


def _cache_limit() -> int:
    """The configured trace-cache size: ``REPRO_TRACE_CACHE`` or the default.

    Negative values clamp to 0 (memoisation disabled); an unparsable value
    falls back to the default and warns once per process instead of being
    silently swallowed.
    """
    global _warned_invalid_limit
    raw = os.environ.get("REPRO_TRACE_CACHE")
    if raw is None:
        return DEFAULT_CACHE_TRACES
    try:
        return max(0, int(raw))
    except ValueError:
        if not _warned_invalid_limit:
            _warned_invalid_limit = True
            warnings.warn(
                f"ignoring unparsable REPRO_TRACE_CACHE value {raw!r}; "
                f"using the default of {DEFAULT_CACHE_TRACES}",
                RuntimeWarning,
                stacklevel=2,
            )
        return DEFAULT_CACHE_TRACES


class ReplayableTrace:
    """A lazily materialised, replayable view of one generator's stream.

    Presents the same consumption API as the generator itself
    (``instructions()`` / ``generate()`` / iteration, plus the ``profile``
    and ``seed`` attributes), with one deliberate difference: every call to
    :meth:`instructions` starts a fresh iterator from sequence number 0 —
    that replay-from-the-start semantics is what lets many simulation jobs
    share one trace.  :meth:`generate` remains stateful exactly like the
    generator's ("the *next* count instructions"), so warm-up-then-continue
    consumption patterns work unchanged; note that on a *cached* trace that
    cursor is shared by everyone holding the same object, just as it would
    be on a shared generator.
    """

    __slots__ = ("profile", "seed", "_generator", "_materialised", "_generate_cursor")

    def __init__(self, profile: WorkloadProfile, *, seed: int) -> None:
        self.profile = profile
        self.seed = seed
        self._generator = SyntheticTraceGenerator(profile, seed=seed)
        self._materialised: list[Instruction] = []
        self._generate_cursor = 0

    def instructions(self) -> Iterator[Instruction]:
        """Yield the dynamic instruction stream from the beginning, forever."""
        materialised = self._materialised
        next_instruction = self._generator._next_instruction
        index = 0
        while True:
            if index == len(materialised):
                materialised.append(next_instruction())
            yield materialised[index]
            index += 1

    def __iter__(self) -> Iterator[Instruction]:
        return self.instructions()

    def generate(self, count: int) -> list[Instruction]:
        """Return the next *count* instructions (stateful, like the generator)."""
        materialised = self._materialised
        next_instruction = self._generator._next_instruction
        start = self._generate_cursor
        end = start + count
        while len(materialised) < end:
            materialised.append(next_instruction())
        self._generate_cursor = end
        return materialised[start:end]

    @property
    def materialised_length(self) -> int:
        """Number of instructions materialised so far (for tests/diagnostics)."""
        return len(self._materialised)


_cache: "OrderedDict[tuple[str, int], ReplayableTrace]" = OrderedDict()


def _profile_key(profile: WorkloadProfile) -> str:
    """Cache key over the fields that influence the generated stream.

    Doc-only fields (``description`` and the paper-provenance records) are
    excluded: editing one must neither evict a cached trace nor make two
    otherwise-identical profiles miss each other's stream.
    """
    data = {
        key: value
        for key, value in profile.to_dict().items()
        if key not in DOC_ONLY_FIELDS
    }
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def cached_trace(profile: WorkloadProfile, *, seed: int) -> ReplayableTrace:
    """A (possibly shared) replayable trace for ``(profile, seed)``.

    With memoisation disabled (``REPRO_TRACE_CACHE=0``) a fresh, uncached
    :class:`ReplayableTrace` is returned, which behaves exactly like the
    plain generator.
    """
    limit = _cache_limit()
    if limit <= 0:
        return ReplayableTrace(profile, seed=seed)
    key = (_profile_key(profile), seed)
    trace = _cache.get(key)
    if trace is None:
        trace = ReplayableTrace(profile, seed=seed)
        _cache[key] = trace
    else:
        _cache.move_to_end(key)
    while len(_cache) > limit:
        _cache.popitem(last=False)
    return trace


def clear_trace_cache() -> None:
    """Drop every memoised trace (tests and memory-pressure escape hatch)."""
    _cache.clear()
