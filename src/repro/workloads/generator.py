"""Deterministic synthetic trace generator.

The generator turns a :class:`~repro.workloads.characteristics.WorkloadProfile`
into an infinite stream of :class:`~repro.isa.instruction.Instruction`
objects.  The static program is a two-level loop nest over
``code_footprint_kb`` of code: an inner window of ``inner_window_kb`` repeats
``inner_iterations`` times before sliding onward, wrapping at the end of the
program.  Basic blocks end in loop-control branches; additional
data-dependent conditional branches appear inside blocks with per-static-PC
biases so the branch predictor sees a stable population of easy and hard
branches.  Data addresses mix a hot region with a larger cold footprint, and
register dependences follow a geometric producer-distance distribution that
sets the workload's exploitable ILP.

Everything is driven by ``random.Random(seed)``, so the same profile and seed
always produce bit-identical traces.
"""

from __future__ import annotations

import random
import zlib
from collections import deque
from dataclasses import dataclass
from typing import Iterator

from repro.isa.instruction import Instruction
from repro.isa.opcodes import OpClass
from repro.workloads.characteristics import WorkloadProfile

#: Base virtual address of the code segment.
CODE_BASE = 0x0040_0000
#: Base virtual address of the data segment.  The hot region starts here and
#: the cold (full-footprint) region follows it contiguously, so the two do
#: not alias pathologically onto the same cache sets the way two
#: power-of-two-aligned regions would.
HOT_DATA_BASE = 0x1000_0000
#: Bytes per instruction.
INSTRUCTION_BYTES = 4

# Registers r0/f0 hold long-ready values ("far" dependences); destinations
# rotate through a window of scratch registers.  r2 is the loop-carried
# accumulator (induction variable) that gives every workload a serial chain
# whose height scales with 1/mean_dependence_distance.
_FAR_INT_REG = "r1"
_FAR_FP_REG = "f1"
_ACCUMULATOR_REG = "r2"
_INT_DEST_POOL = tuple(f"r{i}" for i in range(8, 28))
_FP_DEST_POOL = tuple(f"f{i}" for i in range(8, 28))


@dataclass(slots=True)
class _DynamicParams:
    """The phase-overridable knobs, resolved for the current phase."""

    load_fraction: float
    store_fraction: float
    fp_fraction: float
    int_mult_fraction: float
    fp_mult_fraction: float
    cond_branch_density: float
    predictable_branch_fraction: float
    hard_branch_bias: float
    data_footprint_kb: float
    hot_data_kb: float
    hot_data_fraction: float
    sequential_fraction: float
    mean_dependence_distance: float
    far_dependence_fraction: float

    @classmethod
    def from_profile(cls, profile: WorkloadProfile) -> "_DynamicParams":
        return cls(
            load_fraction=profile.load_fraction,
            store_fraction=profile.store_fraction,
            fp_fraction=profile.fp_fraction,
            int_mult_fraction=profile.int_mult_fraction,
            fp_mult_fraction=profile.fp_mult_fraction,
            cond_branch_density=profile.cond_branch_density,
            predictable_branch_fraction=profile.predictable_branch_fraction,
            hard_branch_bias=profile.hard_branch_bias,
            data_footprint_kb=profile.data_footprint_kb,
            hot_data_kb=profile.hot_data_kb,
            hot_data_fraction=profile.hot_data_fraction,
            sequential_fraction=profile.sequential_fraction,
            mean_dependence_distance=profile.mean_dependence_distance,
            far_dependence_fraction=profile.far_dependence_fraction,
        )

    def apply_overrides(self, overrides) -> None:
        for key, value in overrides.items():
            setattr(self, key, value)


class SyntheticTraceGenerator:
    """Generate a deterministic dynamic instruction trace from a profile.

    Parameters
    ----------
    profile:
        The workload description.
    seed:
        Seed for the trace's pseudo-random choices.  The static program
        (branch positions and biases) and the dynamic stream are both
        functions of ``(profile, seed)``.
    """

    def __init__(self, profile: WorkloadProfile, *, seed: int = 1234) -> None:
        self.profile = profile
        self.seed = seed
        # crc32, not hash(): str hashing is salted per process
        # (PYTHONHASHSEED), which would make the "deterministic" trace differ
        # between interpreter invocations — breaking golden-value tests and
        # any persistent result cache.
        self._rng = random.Random((seed * 1_000_003) ^ zlib.crc32(profile.name.encode()))

        # --- static program layout -------------------------------------
        self._block_size = profile.block_size
        static_instructions = max(
            2 * self._block_size, int(profile.code_footprint_kb * 1024 // INSTRUCTION_BYTES)
        )
        self._n_blocks = max(2, static_instructions // self._block_size)
        window_blocks = int(
            profile.inner_window_kb * 1024 // (INSTRUCTION_BYTES * self._block_size)
        )
        self._window_blocks = max(1, min(window_blocks, self._n_blocks))

        # Static conditional branches inside blocks: position -> bias.
        static_rng = random.Random(seed ^ 0x5EED_BA5E)
        self._static_branch_bias: dict[int, float] = {}
        for block in range(self._n_blocks):
            for offset in range(self._block_size - 1):
                if static_rng.random() < profile.cond_branch_density:
                    slot = block * self._block_size + offset
                    if static_rng.random() < profile.predictable_branch_fraction:
                        # Strongly biased branches stand in for the correlated,
                        # easily learned branches of real codes.
                        bias = static_rng.uniform(0.96, 0.995)
                        if static_rng.random() < 0.5:
                            bias = 1.0 - bias
                    else:
                        bias = profile.hard_branch_bias
                    self._static_branch_bias[slot] = bias

        # --- dynamic state ----------------------------------------------
        self._params = _DynamicParams.from_profile(profile)
        self._phase_index = 0
        self._phase_remaining = (
            profile.phases[0].length if profile.phases else 0
        )
        if profile.phases:
            self._params.apply_overrides(profile.phases[0].overrides)

        self._window_start = 0
        self._iteration = 0
        self._block_in_window = 0
        self._instr_in_block = 0

        self._recent_int_dests: deque[str] = deque(maxlen=96)
        self._recent_fp_dests: deque[str] = deque(maxlen=96)
        self._int_dest_cursor = 0
        self._fp_dest_cursor = 0
        self._hot_pointer = 0
        self._cold_pointer = 0
        self._since_accumulator = 0
        self._seq = 0

    # ------------------------------------------------------------------ API

    @property
    def n_static_blocks(self) -> int:
        """Number of basic blocks in the static program."""
        return self._n_blocks

    @property
    def window_blocks(self) -> int:
        """Number of blocks in the inner loop window."""
        return self._window_blocks

    @property
    def current_phase_index(self) -> int:
        """Index of the phase currently generating instructions."""
        return self._phase_index

    def __iter__(self) -> Iterator[Instruction]:
        return self.instructions()

    def instructions(self) -> Iterator[Instruction]:
        """Yield dynamic instructions forever."""
        while True:
            yield self._next_instruction()

    def generate(self, count: int) -> list[Instruction]:
        """Return the next *count* dynamic instructions as a list."""
        return [self._next_instruction() for _ in range(count)]

    # ----------------------------------------------------------- internals

    def _next_instruction(self) -> Instruction:
        has_phases = bool(self.profile.phases)
        if has_phases and self._phase_remaining <= 0:
            self._advance_phase_if_needed()
        block_size = self._block_size
        block = (self._window_start + self._block_in_window) % self._n_blocks
        instr_in_block = self._instr_in_block
        slot = block * block_size + instr_in_block
        pc = CODE_BASE + slot * INSTRUCTION_BYTES

        if instr_in_block == block_size - 1:
            instruction = self._emit_block_end_branch(pc, block)
        else:
            bias = self._static_branch_bias.get(slot)
            if bias is not None:
                instruction = self._emit_conditional_branch(pc, block, bias)
            else:
                instruction = self._emit_regular(pc)
                self._instr_in_block = instr_in_block + 1

        instruction.seq = self._seq
        self._seq += 1
        if has_phases:
            self._phase_remaining -= 1
        return instruction

    def _advance_phase_if_needed(self) -> None:
        if not self.profile.phases or self._phase_remaining > 0:
            return
        self._phase_index = (self._phase_index + 1) % len(self.profile.phases)
        phase = self.profile.phases[self._phase_index]
        self._phase_remaining = phase.length
        self._params = _DynamicParams.from_profile(self.profile)
        self._params.apply_overrides(phase.overrides)

    # --- control flow --------------------------------------------------

    def _block_start_pc(self, block: int) -> int:
        return CODE_BASE + (block % self._n_blocks) * self._block_size * INSTRUCTION_BYTES

    def _emit_block_end_branch(self, pc: int, block: int) -> Instruction:
        last_in_window = self._block_in_window == self._window_blocks - 1
        if last_in_window:
            if self._iteration < self.profile.inner_iterations - 1:
                # Loop back to the start of the window.
                self._iteration += 1
                self._block_in_window = 0
                next_block = self._window_start
            else:
                # Slide the window onward (wrapping at the end of the code).
                self._iteration = 0
                self._block_in_window = 0
                self._window_start = (
                    self._window_start + self._window_blocks
                ) % self._n_blocks
                next_block = self._window_start
        else:
            self._block_in_window += 1
            next_block = (self._window_start + self._block_in_window) % self._n_blocks
        self._instr_in_block = 0

        fallthrough_block = (block + 1) % self._n_blocks
        taken = next_block != fallthrough_block
        target = self._block_start_pc(next_block)
        return Instruction(
            pc=pc,
            op=OpClass.BRANCH,
            sources=(self._pick_source(fp=False),),
            is_branch=True,
            taken=taken,
            target=target,
        )

    def _emit_conditional_branch(self, pc: int, block: int, bias: float) -> Instruction:
        taken = self._rng.random() < bias
        # A taken in-block branch skips ahead to the block-closing branch.
        target_slot = block * self._block_size + self._block_size - 1
        target = CODE_BASE + target_slot * INSTRUCTION_BYTES
        if taken:
            self._instr_in_block = self._block_size - 1
        else:
            self._instr_in_block += 1
        return Instruction(
            pc=pc,
            op=OpClass.BRANCH,
            sources=(self._pick_source(fp=False),),
            is_branch=True,
            taken=taken,
            target=target,
        )

    # --- regular instructions -------------------------------------------

    def _emit_regular(self, pc: int) -> Instruction:
        params = self._params
        # A loop-carried accumulator update (induction variable) every
        # ~mean_dependence_distance instructions: the serial chain that caps
        # the workload's exploitable ILP at that distance, independent of the
        # window size an observer measures it over.
        self._since_accumulator += 1
        if self._since_accumulator >= params.mean_dependence_distance:
            self._since_accumulator = 0
            return Instruction(
                pc=pc,
                op=OpClass.INT_ALU,
                sources=(_ACCUMULATOR_REG,),
                dest=_ACCUMULATOR_REG,
            )
        roll = self._rng.random()
        if roll < params.load_fraction:
            return self._emit_load(pc)
        if roll < params.load_fraction + params.store_fraction:
            return self._emit_store(pc)
        return self._emit_compute(pc)

    def _emit_load(self, pc: int) -> Instruction:
        params = self._params
        fp_dest = self._rng.random() < params.fp_fraction
        dest = self._allocate_dest(fp=fp_dest)
        return Instruction(
            pc=pc,
            op=OpClass.LOAD,
            sources=(self._pick_source(fp=False),),
            dest=dest,
            address=self._data_address(),
        )

    def _emit_store(self, pc: int) -> Instruction:
        params = self._params
        fp_data = self._rng.random() < params.fp_fraction
        return Instruction(
            pc=pc,
            op=OpClass.STORE,
            sources=(self._pick_source(fp=fp_data), self._pick_source(fp=False)),
            address=self._data_address(),
        )

    def _emit_compute(self, pc: int) -> Instruction:
        params = self._params
        if self._rng.random() < params.fp_fraction:
            if self._rng.random() < params.fp_mult_fraction:
                op = OpClass.FP_MULT if self._rng.random() > 0.08 else OpClass.FP_DIV
            else:
                op = OpClass.FP_ALU
            sources = (self._pick_source(fp=True), self._pick_source(fp=True))
            dest = self._allocate_dest(fp=True)
        else:
            if self._rng.random() < params.int_mult_fraction:
                op = OpClass.INT_MULT if self._rng.random() > 0.1 else OpClass.INT_DIV
            else:
                op = OpClass.INT_ALU
            sources = (self._pick_source(fp=False), self._pick_source(fp=False))
            dest = self._allocate_dest(fp=False)
        return Instruction(pc=pc, op=op, sources=sources, dest=dest)

    # --- operands --------------------------------------------------------

    def _allocate_dest(self, *, fp: bool) -> str:
        if fp:
            register = _FP_DEST_POOL[self._fp_dest_cursor % len(_FP_DEST_POOL)]
            self._fp_dest_cursor += 1
            self._recent_fp_dests.append(register)
        else:
            register = _INT_DEST_POOL[self._int_dest_cursor % len(_INT_DEST_POOL)]
            self._int_dest_cursor += 1
            self._recent_int_dests.append(register)
        return register

    def _pick_source(self, *, fp: bool) -> str:
        params = self._params
        recents = self._recent_fp_dests if fp else self._recent_int_dests
        far_register = _FAR_FP_REG if fp else _FAR_INT_REG
        if not recents or self._rng.random() < params.far_dependence_fraction:
            return far_register
        mean = params.mean_dependence_distance
        distance = 1 + int(self._rng.expovariate(1.0 / mean))
        if distance > len(recents):
            return far_register
        return recents[-distance]

    def _data_address(self) -> int:
        params = self._params
        hot_bytes = int(params.hot_data_kb * 1024)
        if self._rng.random() < params.hot_data_fraction:
            if self._rng.random() < params.sequential_fraction:
                self._hot_pointer = (self._hot_pointer + 8) % hot_bytes
                offset = self._hot_pointer
            else:
                offset = self._rng.randrange(0, max(8, hot_bytes), 8)
            return HOT_DATA_BASE + offset
        # The cold region covers the remainder of the data footprint and is
        # laid out directly after the hot region.
        cold_bytes = max(64, int(params.data_footprint_kb * 1024) - hot_bytes)
        if self._rng.random() < params.sequential_fraction:
            self._cold_pointer = (self._cold_pointer + 64) % cold_bytes
            offset = self._cold_pointer
        else:
            offset = self._rng.randrange(0, max(8, cold_bytes), 8)
        return HOT_DATA_BASE + hot_bytes + offset
