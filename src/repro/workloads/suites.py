"""The 32-application benchmark suite (Tables 6-8 of the paper).

Each entry is a :class:`WorkloadProfile` whose parameters encode the paper's
characterisation of that application.  The parameters were chosen so that the
population statistics line up with the paper's findings (Table 9): roughly
half of the applications are happiest with the smallest/fastest
configurations, a substantial minority needs a larger instruction cache
(gsm, ghostscript, gcc, vortex, crafty), a handful is strongly memory bound
(em3d, mst, health, art), and a few have pronounced phase behaviour (apsi's
data-capacity phases, art's ILP phases).

``paper_dataset`` and ``paper_window`` record the inputs and simulation
windows of Tables 6-8 verbatim; ``simulation_window`` is the scaled-down
window actually simulated by the Python pipeline (see EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.workloads.characteristics import WorkloadProfile
from repro.workloads.phases import (
    bursty_conflict_phases,
    periodic_data_phases,
    periodic_ilp_phases,
)

MEDIABENCH = "MediaBench"
OLDEN = "Olden"
SPEC_INT = "SPEC2000-Int"
SPEC_FP = "SPEC2000-FP"


def _w(name: str, suite: str, **kwargs) -> WorkloadProfile:
    return WorkloadProfile(name=name, suite=suite, **kwargs)


# ---------------------------------------------------------------------------
# MediaBench (Table 6)
# ---------------------------------------------------------------------------

_MEDIABENCH = (
    _w(
        "adpcm_encode",
        MEDIABENCH,
        description="Tiny speech-coding kernel; small code and data, high clock wins.",
        code_footprint_kb=2.0,
        inner_window_kb=1.0,
        data_footprint_kb=16.0,
        hot_data_kb=4.0,
        mean_dependence_distance=10.0,
        cond_branch_density=0.06,
        predictable_branch_fraction=0.90,
        paper_window="encode (6.6M)",
    ),
    _w(
        "adpcm_decode",
        MEDIABENCH,
        description="Decoder kernel with data-dependent branches (vpdiff chain).",
        code_footprint_kb=2.0,
        inner_window_kb=1.0,
        data_footprint_kb=16.0,
        hot_data_kb=4.0,
        mean_dependence_distance=9.0,
        cond_branch_density=0.12,
        predictable_branch_fraction=0.70,
        hard_branch_bias=0.62,
        paper_window="decode (5.5M)",
    ),
    _w(
        "epic_encode",
        MEDIABENCH,
        description="Wavelet image encoder; moderate code, mid-size data set.",
        code_footprint_kb=28.0,
        inner_window_kb=18.0,
        data_footprint_kb=320.0,
        hot_data_kb=48.0,
        fp_fraction=0.18,
        mean_dependence_distance=10.0,
        paper_window="encode (53M)",
    ),
    _w(
        "epic_decode",
        MEDIABENCH,
        description="Wavelet image decoder; small kernel, streaming data.",
        code_footprint_kb=10.0,
        inner_window_kb=6.0,
        data_footprint_kb=192.0,
        hot_data_kb=40.0,
        hot_data_fraction=0.8,
        sequential_fraction=0.7,
        fp_fraction=0.12,
        paper_window="decode (6.7M)",
    ),
    _w(
        "jpeg_compress",
        MEDIABENCH,
        description="DCT-based compressor; block-structured, moderately high ILP.",
        code_footprint_kb=18.0,
        inner_window_kb=10.0,
        data_footprint_kb=224.0,
        hot_data_kb=28.0,
        mean_dependence_distance=11.0,
        sequential_fraction=0.7,
        paper_window="compress (15.5M)",
    ),
    _w(
        "jpeg_decompress",
        MEDIABENCH,
        description="Decompressor; small hot loops, high clock preference.",
        code_footprint_kb=12.0,
        inner_window_kb=6.0,
        data_footprint_kb=128.0,
        hot_data_kb=16.0,
        mean_dependence_distance=10.0,
        sequential_fraction=0.7,
        paper_window="decompress (4.6M)",
    ),
    _w(
        "g721_encode",
        MEDIABENCH,
        description="ADPCM voice codec; tiny serial kernel.",
        code_footprint_kb=4.0,
        inner_window_kb=2.0,
        data_footprint_kb=8.0,
        hot_data_kb=4.0,
        mean_dependence_distance=7.0,
        paper_window="encode (0-200M)",
    ),
    _w(
        "g721_decode",
        MEDIABENCH,
        description="ADPCM voice codec decoder; tiny serial kernel.",
        code_footprint_kb=4.0,
        inner_window_kb=2.0,
        data_footprint_kb=8.0,
        hot_data_kb=4.0,
        mean_dependence_distance=7.0,
        paper_window="decode (0-200M)",
    ),
    _w(
        "gsm_encode",
        MEDIABENCH,
        description="GSM speech encoder; large instruction footprint (prefers 64KB I-cache).",
        code_footprint_kb=88.0,
        inner_window_kb=52.0,
        inner_iterations=30,
        data_footprint_kb=64.0,
        hot_data_kb=12.0,
        mean_dependence_distance=9.0,
        paper_window="encode (0-200M)",
    ),
    _w(
        "gsm_decode",
        MEDIABENCH,
        description="GSM speech decoder; large instruction footprint.",
        code_footprint_kb=80.0,
        inner_window_kb=48.0,
        inner_iterations=30,
        data_footprint_kb=64.0,
        hot_data_kb=12.0,
        mean_dependence_distance=9.0,
        paper_window="decode (0-74M)",
    ),
    _w(
        "ghostscript",
        MEDIABENCH,
        description="PostScript interpreter; large code working set (>32KB).",
        code_footprint_kb=72.0,
        inner_window_kb=40.0,
        inner_iterations=24,
        data_footprint_kb=512.0,
        hot_data_kb=64.0,
        mean_dependence_distance=8.0,
        paper_window="0-200M",
    ),
    _w(
        "mesa_mipmap",
        MEDIABENCH,
        description="3D rasteriser, mipmapped textures; FP with mid-size data.",
        code_footprint_kb=22.0,
        inner_window_kb=12.0,
        data_footprint_kb=448.0,
        hot_data_kb=40.0,
        fp_fraction=0.32,
        mean_dependence_distance=10.0,
        paper_window="mipmap (44.7M)",
    ),
    _w(
        "mesa_osdemo",
        MEDIABENCH,
        description="3D demo scene; moderate code and FP mix.",
        code_footprint_kb=34.0,
        inner_window_kb=20.0,
        data_footprint_kb=256.0,
        hot_data_kb=32.0,
        fp_fraction=0.28,
        mean_dependence_distance=10.0,
        paper_window="osdemo (7.6M)",
    ),
    _w(
        "mesa_texgen",
        MEDIABENCH,
        description="Texture-coordinate generation; larger code, FP heavy.",
        code_footprint_kb=50.0,
        inner_window_kb=30.0,
        data_footprint_kb=384.0,
        hot_data_kb=48.0,
        fp_fraction=0.34,
        mean_dependence_distance=10.0,
        paper_window="texgen (75.8M)",
    ),
    _w(
        "mpeg2_encode",
        MEDIABENCH,
        description="Video encoder; small motion-estimation kernels, high ILP.",
        code_footprint_kb=14.0,
        inner_window_kb=6.0,
        data_footprint_kb=192.0,
        hot_data_kb=24.0,
        mean_dependence_distance=12.0,
        sequential_fraction=0.75,
        paper_window="encode (0-171M)",
    ),
    _w(
        "mpeg2_decode",
        MEDIABENCH,
        description="Video decoder; streaming access with small hot set.",
        code_footprint_kb=16.0,
        inner_window_kb=8.0,
        data_footprint_kb=224.0,
        hot_data_kb=32.0,
        mean_dependence_distance=11.0,
        sequential_fraction=0.75,
        paper_window="decode (0-200M)",
    ),
)


# ---------------------------------------------------------------------------
# Olden (Table 7)
# ---------------------------------------------------------------------------

_OLDEN = (
    _w(
        "bh",
        OLDEN,
        description="Barnes-Hut n-body; FP with pointer-linked tree traversal.",
        code_footprint_kb=10.0,
        inner_window_kb=5.0,
        data_footprint_kb=512.0,
        hot_data_kb=96.0,
        hot_data_fraction=0.8,
        sequential_fraction=0.3,
        fp_fraction=0.3,
        mean_dependence_distance=6.0,
        paper_window="0-200M",
        paper_dataset="2048 1",
    ),
    _w(
        "bisort",
        OLDEN,
        description="Bitonic sort over a binary tree; pointer chasing.",
        code_footprint_kb=4.0,
        inner_window_kb=2.0,
        data_footprint_kb=320.0,
        hot_data_kb=64.0,
        hot_data_fraction=0.75,
        sequential_fraction=0.3,
        mean_dependence_distance=4.5,
        paper_window="entire program (127M)",
        paper_dataset="65000 0",
    ),
    _w(
        "em3d",
        OLDEN,
        description="Electromagnetic wave propagation; strongly memory bound.",
        code_footprint_kb=4.0,
        inner_window_kb=2.0,
        data_footprint_kb=1536.0,
        hot_data_kb=768.0,
        hot_data_fraction=0.85,
        sequential_fraction=0.5,
        mean_dependence_distance=12.0,
        far_dependence_fraction=0.3,
        paper_window="70M-178M (108M)",
        paper_dataset="4000 10",
    ),
    _w(
        "health",
        OLDEN,
        description="Hospital simulation; linked lists, memory bound and serial.",
        code_footprint_kb=6.0,
        inner_window_kb=3.0,
        data_footprint_kb=1024.0,
        hot_data_kb=384.0,
        hot_data_fraction=0.8,
        sequential_fraction=0.45,
        mean_dependence_distance=3.5,
        paper_window="80M-127M (47M)",
        paper_dataset="4 1000 1",
    ),
    _w(
        "mst",
        OLDEN,
        description="Minimum spanning tree; hash lookups with bursty conflicts.",
        code_footprint_kb=5.0,
        inner_window_kb=2.5,
        data_footprint_kb=1200.0,
        hot_data_kb=32.0,
        hot_data_fraction=0.85,
        sequential_fraction=0.3,
        mean_dependence_distance=6.5,
        phases=bursty_conflict_phases(),
        paper_window="70M-170M (100M)",
        paper_dataset="1024 1",
    ),
    _w(
        "perimeter",
        OLDEN,
        description="Quad-tree perimeter computation; recursive traversal.",
        code_footprint_kb=6.0,
        inner_window_kb=3.0,
        data_footprint_kb=384.0,
        hot_data_kb=48.0,
        hot_data_fraction=0.8,
        sequential_fraction=0.3,
        mean_dependence_distance=5.0,
        paper_window="0-200M",
        paper_dataset="12 1",
    ),
    _w(
        "power",
        OLDEN,
        description="Power-system optimisation; FP compute over a small tree.",
        code_footprint_kb=8.0,
        inner_window_kb=4.0,
        data_footprint_kb=48.0,
        hot_data_kb=12.0,
        fp_fraction=0.38,
        mean_dependence_distance=9.0,
        paper_window="0-200M",
        paper_dataset="1 1",
    ),
    _w(
        "treeadd",
        OLDEN,
        description="Recursive tree sum; serial pointer chasing over a large tree.",
        code_footprint_kb=2.0,
        inner_window_kb=1.0,
        data_footprint_kb=768.0,
        hot_data_kb=256.0,
        hot_data_fraction=0.8,
        sequential_fraction=0.3,
        mean_dependence_distance=3.5,
        paper_window="entire program (189M)",
        paper_dataset="20 1",
    ),
    _w(
        "tsp",
        OLDEN,
        description="Travelling salesman; FP distance computation over a tour list.",
        code_footprint_kb=6.0,
        inner_window_kb=3.0,
        data_footprint_kb=512.0,
        hot_data_kb=80.0,
        hot_data_fraction=0.8,
        sequential_fraction=0.4,
        fp_fraction=0.22,
        mean_dependence_distance=7.0,
        paper_window="0-200M",
        paper_dataset="100000 1",
    ),
)


# ---------------------------------------------------------------------------
# SPEC2000 (Table 8)
# ---------------------------------------------------------------------------

_SPEC_INT = (
    _w(
        "bzip2",
        SPEC_INT,
        description="Block-sorting compressor; tight kernel, prefers the fastest config.",
        code_footprint_kb=8.0,
        inner_window_kb=4.0,
        data_footprint_kb=288.0,
        hot_data_kb=24.0,
        mean_dependence_distance=8.0,
        paper_window="1000M-1100M",
        paper_dataset="source 58",
    ),
    _w(
        "crafty",
        SPEC_INT,
        description="Chess engine; large code footprint, branch intensive.",
        code_footprint_kb=68.0,
        inner_window_kb=40.0,
        inner_iterations=26,
        data_footprint_kb=256.0,
        hot_data_kb=48.0,
        cond_branch_density=0.12,
        predictable_branch_fraction=0.8,
        mean_dependence_distance=8.0,
        paper_window="1000M-1100M",
    ),
    _w(
        "eon",
        SPEC_INT,
        description="Probabilistic ray tracer (C++); moderate code, some FP.",
        code_footprint_kb=52.0,
        inner_window_kb=30.0,
        inner_iterations=28,
        data_footprint_kb=160.0,
        hot_data_kb=32.0,
        fp_fraction=0.16,
        mean_dependence_distance=9.0,
        paper_window="1000M-1100M",
    ),
    _w(
        "gcc",
        SPEC_INT,
        description="Compiler; very large instruction and data working sets.",
        code_footprint_kb=104.0,
        inner_window_kb=60.0,
        inner_iterations=22,
        data_footprint_kb=640.0,
        hot_data_kb=96.0,
        hot_data_fraction=0.82,
        sequential_fraction=0.4,
        mean_dependence_distance=7.5,
        paper_window="2000M-2100M",
        paper_dataset="166.i",
    ),
    _w(
        "gzip",
        SPEC_INT,
        description="LZ77 compressor; small kernel, modest data set.",
        code_footprint_kb=8.0,
        inner_window_kb=4.0,
        data_footprint_kb=224.0,
        hot_data_kb=32.0,
        mean_dependence_distance=8.0,
        paper_window="1000M-1100M",
        paper_dataset="source 60",
    ),
    _w(
        "parser",
        SPEC_INT,
        description="Natural-language parser; dictionary lookups, mid-size code.",
        code_footprint_kb=44.0,
        inner_window_kb=26.0,
        inner_iterations=28,
        data_footprint_kb=448.0,
        hot_data_kb=64.0,
        hot_data_fraction=0.8,
        sequential_fraction=0.35,
        mean_dependence_distance=7.0,
        paper_window="1000M-1100M",
    ),
    _w(
        "twolf",
        SPEC_INT,
        description="Place-and-route; random accesses over a mid-size netlist.",
        code_footprint_kb=34.0,
        inner_window_kb=20.0,
        data_footprint_kb=512.0,
        hot_data_kb=112.0,
        hot_data_fraction=0.8,
        sequential_fraction=0.3,
        mean_dependence_distance=7.0,
        paper_window="1000M-1100M",
    ),
    _w(
        "vortex",
        SPEC_INT,
        description="Object database; very large code footprint and data set.",
        code_footprint_kb=92.0,
        inner_window_kb=54.0,
        inner_iterations=24,
        data_footprint_kb=768.0,
        hot_data_kb=112.0,
        hot_data_fraction=0.82,
        sequential_fraction=0.4,
        mean_dependence_distance=8.0,
        paper_window="1000M-1100M",
    ),
    _w(
        "vpr",
        SPEC_INT,
        description="FPGA place-and-route; data-dependent branches, mid-size data.",
        code_footprint_kb=26.0,
        inner_window_kb=14.0,
        data_footprint_kb=320.0,
        hot_data_kb=64.0,
        hot_data_fraction=0.82,
        cond_branch_density=0.12,
        predictable_branch_fraction=0.62,
        hard_branch_bias=0.5,
        mean_dependence_distance=7.0,
        paper_window="1000M-1100M",
    ),
)

_SPEC_FP = (
    _w(
        "apsi",
        SPEC_FP,
        description="Meteorology code; strong periodic phases in data-capacity needs.",
        code_footprint_kb=36.0,
        inner_window_kb=14.0,
        data_footprint_kb=1024.0,
        hot_data_kb=24.0,
        fp_fraction=0.4,
        mean_dependence_distance=10.0,
        phases=periodic_data_phases(),
        paper_window="1000M-1100M",
    ),
    _w(
        "art",
        SPEC_FP,
        description="Neural-network image recognition; memory bound with ILP phases.",
        code_footprint_kb=4.0,
        inner_window_kb=2.0,
        data_footprint_kb=1024.0,
        hot_data_kb=256.0,
        hot_data_fraction=0.8,
        sequential_fraction=0.5,
        fp_fraction=0.35,
        mean_dependence_distance=12.0,
        far_dependence_fraction=0.25,
        phases=periodic_ilp_phases(),
        paper_window="300M-400M",
    ),
    _w(
        "equake",
        SPEC_FP,
        description="Seismic wave simulation; sparse solver, memory intensive FP.",
        code_footprint_kb=10.0,
        inner_window_kb=5.0,
        data_footprint_kb=768.0,
        hot_data_kb=192.0,
        hot_data_fraction=0.82,
        sequential_fraction=0.45,
        fp_fraction=0.36,
        mean_dependence_distance=11.0,
        far_dependence_fraction=0.25,
        paper_window="1000M-1100M",
    ),
    _w(
        "galgel",
        SPEC_FP,
        description="Fluid dynamics; dense linear algebra with long dependence-free runs.",
        code_footprint_kb=14.0,
        inner_window_kb=7.0,
        data_footprint_kb=288.0,
        hot_data_kb=64.0,
        fp_fraction=0.45,
        mean_dependence_distance=20.0,
        far_dependence_fraction=0.3,
        paper_window="1000M-1100M",
    ),
    _w(
        "mesa",
        SPEC_FP,
        description="SPEC version of the Mesa rasteriser; moderate code and FP mix.",
        code_footprint_kb=42.0,
        inner_window_kb=24.0,
        inner_iterations=28,
        data_footprint_kb=288.0,
        hot_data_kb=40.0,
        fp_fraction=0.3,
        mean_dependence_distance=10.0,
        paper_window="1000M-1100M",
    ),
    _w(
        "wupwise",
        SPEC_FP,
        description="Lattice QCD; regular FP compute with long independent chains.",
        code_footprint_kb=12.0,
        inner_window_kb=6.0,
        data_footprint_kb=416.0,
        hot_data_kb=96.0,
        fp_fraction=0.44,
        mean_dependence_distance=15.0,
        far_dependence_fraction=0.28,
        paper_window="1000M-1100M",
    ),
)


#: All benchmark suites keyed by suite name.
BENCHMARK_SUITES: dict[str, tuple[WorkloadProfile, ...]] = {
    MEDIABENCH: _MEDIABENCH,
    OLDEN: _OLDEN,
    SPEC_INT: _SPEC_INT,
    SPEC_FP: _SPEC_FP,
}

_BY_NAME: dict[str, WorkloadProfile] = {
    profile.name: profile
    for suite in BENCHMARK_SUITES.values()
    for profile in suite
}


def mediabench_suite() -> tuple[WorkloadProfile, ...]:
    """The eight MediaBench applications (16 program/input combinations)."""
    return _MEDIABENCH


def olden_suite() -> tuple[WorkloadProfile, ...]:
    """The nine Olden applications."""
    return _OLDEN


def spec2000_suite() -> tuple[WorkloadProfile, ...]:
    """The fifteen SPEC2000 applications (integer and floating point)."""
    return _SPEC_INT + _SPEC_FP


def full_suite() -> tuple[WorkloadProfile, ...]:
    """All 32 applications, in the order the paper lists them."""
    return _MEDIABENCH + _OLDEN + _SPEC_INT + _SPEC_FP


def workload_names() -> tuple[str, ...]:
    """Names of every application in the suite."""
    return tuple(profile.name for profile in full_suite())


def get_workload(name: str) -> WorkloadProfile:
    """Look up a workload profile by name."""
    try:
        return _BY_NAME[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown workload {name!r}; known workloads: {', '.join(sorted(_BY_NAME))}"
        ) from exc
