"""Workload profiles: the parametric stand-in for real benchmark binaries."""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from types import MappingProxyType
from typing import Any, Mapping


#: Fields that document a profile without influencing the generated
#: instruction stream.  The trace cache keys on everything *except* these, so
#: editing a docstring-like field cannot evict or duplicate a cached trace.
DOC_ONLY_FIELDS = frozenset({"description", "paper_dataset", "paper_window"})


#: Profile fields that a phase may override.  Structural fields (code layout,
#: block size) stay fixed across phases because the static program does not
#: change at run time.
PHASE_OVERRIDABLE_FIELDS = frozenset(
    {
        "load_fraction",
        "store_fraction",
        "fp_fraction",
        "int_mult_fraction",
        "fp_mult_fraction",
        "cond_branch_density",
        "predictable_branch_fraction",
        "hard_branch_bias",
        "data_footprint_kb",
        "hot_data_kb",
        "hot_data_fraction",
        "sequential_fraction",
        "mean_dependence_distance",
        "far_dependence_fraction",
    }
)


@dataclass(frozen=True, slots=True)
class PhaseSpec:
    """One program phase: a length and the dynamic parameters it overrides."""

    length: int
    overrides: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError("phase length must be positive")
        unknown = set(self.overrides) - PHASE_OVERRIDABLE_FIELDS
        if unknown:
            raise ValueError(
                f"phase overrides reference non-overridable fields: {sorted(unknown)}"
            )
        object.__setattr__(self, "overrides", MappingProxyType(dict(self.overrides)))

    def __reduce__(self):
        # The read-only MappingProxyType wrapper is not picklable, which
        # would bar profiles with phases from crossing process boundaries in
        # the parallel experiment engine; rebuild from plain values instead.
        return (PhaseSpec, (self.length, dict(self.overrides)))

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form (stable key order) for fingerprints and JSON."""
        return {
            "length": self.length,
            "overrides": {key: self.overrides[key] for key in sorted(self.overrides)},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PhaseSpec":
        """Rebuild a phase from :meth:`to_dict` output."""
        return cls(length=data["length"], overrides=dict(data.get("overrides", {})))


#: Dynamic parameters that must stay inside the unit interval, checked by
#: :meth:`WorkloadProfile.validate` for the base profile and every phase.
_UNIT_FRACTION_FIELDS = (
    "load_fraction",
    "store_fraction",
    "fp_fraction",
    "int_mult_fraction",
    "fp_mult_fraction",
    "cond_branch_density",
    "predictable_branch_fraction",
    "hard_branch_bias",
    "hot_data_fraction",
    "sequential_fraction",
    "far_dependence_fraction",
)


@dataclass(frozen=True, slots=True)
class WorkloadProfile:
    """Parametric description of one benchmark application.

    Parameters are grouped as follows.

    Instruction mix
        ``load_fraction`` and ``store_fraction`` are fractions of all
        instructions; ``fp_fraction`` is the fraction of *compute* (non
        memory, non branch) instructions that are floating point;
        ``int_mult_fraction`` / ``fp_mult_fraction`` select long-latency
        operations within their class; ``cond_branch_density`` adds
        data-dependent conditional branches inside basic blocks (on top of
        the loop-closing branch that ends every block).

    Control behaviour
        ``block_size`` is the number of instructions per basic block;
        ``predictable_branch_fraction`` is the fraction of static conditional
        branches with a strong bias, the remainder being data-dependent
        branches with bias ``hard_branch_bias``.

    Instruction footprint
        The static program is ``code_footprint_kb`` of code executed as a
        two-level loop nest: an inner window of ``inner_window_kb``
        contiguous code repeats ``inner_iterations`` times before the window
        slides onward (wrapping at the end of the program).  A footprint
        larger than the instruction cache therefore produces refill misses
        every time the window moves, while a large ``inner_window_kb``
        pressures the cache even within a phase.

    Data behaviour
        Accesses target a hot region of ``hot_data_kb`` with probability
        ``hot_data_fraction`` and the full ``data_footprint_kb`` otherwise;
        ``sequential_fraction`` of accesses walk the region sequentially, the
        rest are uniform random within it.

    Dependences / ILP
        Each source operand names the value produced
        ``~Geometric(mean_dependence_distance)`` instructions earlier, except
        with probability ``far_dependence_fraction`` it names an old,
        long-ready value.  Long mean distances expose more independent work
        to larger issue queues.

    Phases
        ``phases`` cycles through :class:`PhaseSpec` entries, each overriding
        dynamic parameters for ``length`` instructions.

    ``simulation_window`` is the scaled-down stand-in for the 100 M-200 M
    instruction windows of Tables 6-8 and is what the benchmark harness uses
    by default.
    """

    name: str
    suite: str
    description: str = ""

    # Instruction mix.
    load_fraction: float = 0.24
    store_fraction: float = 0.10
    fp_fraction: float = 0.0
    int_mult_fraction: float = 0.02
    fp_mult_fraction: float = 0.25
    cond_branch_density: float = 0.04

    # Control behaviour.
    block_size: int = 10
    predictable_branch_fraction: float = 0.92
    hard_branch_bias: float = 0.55

    # Instruction footprint.
    code_footprint_kb: float = 8.0
    inner_window_kb: float = 4.0
    inner_iterations: int = 40

    # Data behaviour.
    data_footprint_kb: float = 64.0
    hot_data_kb: float = 16.0
    hot_data_fraction: float = 0.95
    sequential_fraction: float = 0.55

    # Dependences / ILP.
    mean_dependence_distance: float = 9.0
    far_dependence_fraction: float = 0.25

    # Phases.
    phases: tuple[PhaseSpec, ...] = ()

    # Scaled-down stand-in for the paper's simulation window.
    simulation_window: int = 24_000

    # Provenance: the dataset and simulation window the paper used
    # (Tables 6-8), recorded for the workload-inventory benchmark.
    paper_dataset: str = "reference"
    paper_window: str = ""

    def __post_init__(self) -> None:
        if not 0 <= self.load_fraction <= 0.6:
            raise ValueError("load_fraction out of range")
        if not 0 <= self.store_fraction <= 0.5:
            raise ValueError("store_fraction out of range")
        if self.load_fraction + self.store_fraction + self.cond_branch_density > 0.85:
            raise ValueError("instruction mix leaves no room for compute operations")
        if not 0 <= self.fp_fraction <= 1:
            raise ValueError("fp_fraction out of range")
        if self.block_size < 2:
            raise ValueError("block_size must be at least 2")
        if self.code_footprint_kb <= 0 or self.inner_window_kb <= 0:
            raise ValueError("code footprint parameters must be positive")
        if self.inner_window_kb > self.code_footprint_kb:
            raise ValueError("inner_window_kb cannot exceed code_footprint_kb")
        if self.data_footprint_kb <= 0 or self.hot_data_kb <= 0:
            raise ValueError("data footprint parameters must be positive")
        if self.hot_data_kb > self.data_footprint_kb:
            raise ValueError("hot_data_kb cannot exceed data_footprint_kb")
        if self.mean_dependence_distance < 1:
            raise ValueError("mean_dependence_distance must be >= 1")
        if self.simulation_window <= 0:
            raise ValueError("simulation_window must be positive")

    # ------------------------------------------------------------ validation

    def validate(self) -> "WorkloadProfile":
        """Validate the profile including the *effective* values of every phase.

        ``__post_init__`` guards the base fields, but phase overrides are
        applied long after construction and can push a parameter out of range
        (``hot_data_fraction`` of 2, a hot region larger than the footprint,
        a memory mix above 100 %).  ``validate`` re-checks the dynamic
        parameter set for the base profile and for each phase after its
        overrides are applied, raising :class:`ValueError` with the offending
        context and field named.  Returns ``self`` so constructors can chain
        (``profile.validate()``).
        """
        # Structural fields (block_size, code layout, window) are not phase
        # overridable, so ``__post_init__`` has already validated them on
        # every construction path; only the dynamic set needs re-checking.
        base = {name: getattr(self, name) for name in sorted(PHASE_OVERRIDABLE_FIELDS)}
        self._validate_dynamic_params(base, context=f"profile {self.name!r}")
        for index, phase in enumerate(self.phases):
            effective = dict(base)
            effective.update(phase.overrides)
            self._validate_dynamic_params(
                effective, context=f"profile {self.name!r}, phase {index}"
            )
        return self

    @staticmethod
    def _validate_dynamic_params(values: Mapping[str, Any], *, context: str) -> None:
        """Check one resolved set of dynamic parameters (base or per-phase)."""
        for name in _UNIT_FRACTION_FIELDS:
            value = values[name]
            if not 0 <= value <= 1:
                raise ValueError(
                    f"{context}: {name} must be within [0, 1], got {value!r}"
                )
        memory_mix = (
            values["load_fraction"]
            + values["store_fraction"]
            + values["cond_branch_density"]
        )
        if memory_mix > 0.85:
            raise ValueError(
                f"{context}: load_fraction ({values['load_fraction']:g}) + "
                f"store_fraction ({values['store_fraction']:g}) + "
                f"cond_branch_density ({values['cond_branch_density']:g}) = "
                f"{memory_mix:g} leaves no room for compute operations (max 0.85)"
            )
        if values["data_footprint_kb"] <= 0 or values["hot_data_kb"] <= 0:
            raise ValueError(
                f"{context}: data_footprint_kb ({values['data_footprint_kb']!r}) and "
                f"hot_data_kb ({values['hot_data_kb']!r}) must be positive"
            )
        if values["hot_data_kb"] > values["data_footprint_kb"]:
            raise ValueError(
                f"{context}: hot_data_kb ({values['hot_data_kb']:g}) cannot exceed "
                f"data_footprint_kb ({values['data_footprint_kb']:g})"
            )
        if values["mean_dependence_distance"] < 1:
            raise ValueError(
                f"{context}: mean_dependence_distance must be >= 1, got "
                f"{values['mean_dependence_distance']!r}"
            )

    @property
    def is_floating_point(self) -> bool:
        """True when a meaningful share of compute operations is FP."""
        return self.fp_fraction >= 0.15

    @property
    def has_phases(self) -> bool:
        """True when the workload defines explicit phase behaviour."""
        return bool(self.phases)

    def with_overrides(self, **overrides: Any) -> "WorkloadProfile":
        """Return a copy with *overrides* applied (used by phase handling)."""
        valid = {f.name for f in fields(self)}
        unknown = set(overrides) - valid
        if unknown:
            raise ValueError(f"unknown profile fields: {sorted(unknown)}")
        return replace(self, **overrides)

    def scaled(self, factor: float) -> "WorkloadProfile":
        """Return a copy whose simulation window is scaled by *factor*."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        window = max(1_000, int(self.simulation_window * factor))
        return replace(self, simulation_window=window)

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form of the profile, suitable for JSON and hashing.

        Field order follows the dataclass definition so the output is stable
        across processes; phases are expanded via :meth:`PhaseSpec.to_dict`.
        """
        data: dict[str, Any] = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if spec.name == "phases":
                value = [phase.to_dict() for phase in value]
            data[spec.name] = value
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkloadProfile":
        """Rebuild a profile from :meth:`to_dict` output."""
        payload = dict(data)
        payload["phases"] = tuple(
            PhaseSpec.from_dict(phase) for phase in payload.get("phases", ())
        )
        return cls(**payload)
