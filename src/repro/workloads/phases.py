"""Helpers for building phased workload profiles.

Two kinds of phase behaviour matter in the paper's evaluation (Figure 7):

* ``apsi`` shows strong periodic phases in its *data-cache capacity* needs —
  the D/L2 pair oscillates mostly between the 32 KB/256 KB 1-way and the
  128 KB/1 MB 4-way configurations.
* ``art`` cycles its *integer issue queue* through all four sizes in a
  regular pattern that follows the available ILP.

The helpers below build the corresponding :class:`PhaseSpec` sequences; they
are also reusable for user-defined phased workloads.
"""

from __future__ import annotations

from typing import Sequence

from repro.workloads.characteristics import PhaseSpec


def periodic_data_phases(
    *,
    small_kb: float = 24.0,
    large_kb: float = 640.0,
    footprint_kb: float = 1024.0,
    phase_length: int = 8_000,
    hot_fraction_small: float = 0.95,
    hot_fraction_large: float = 0.85,
) -> tuple[PhaseSpec, ...]:
    """Alternate between a cache-friendly phase and a capacity-hungry phase.

    The small phase keeps its hot data well inside the minimal 32 KB L1 so
    the controller favours the fastest configuration; the large phase touches
    ``large_kb`` of hot data so upsizing the D/L2 pair pays for the frequency
    loss.
    """
    small = PhaseSpec(
        length=phase_length,
        overrides={
            "hot_data_kb": small_kb,
            "hot_data_fraction": hot_fraction_small,
            "data_footprint_kb": footprint_kb,
            "sequential_fraction": 0.6,
        },
    )
    large = PhaseSpec(
        length=phase_length,
        overrides={
            "hot_data_kb": large_kb,
            "hot_data_fraction": hot_fraction_large,
            "data_footprint_kb": footprint_kb,
            "sequential_fraction": 0.35,
        },
    )
    return (small, large)


def periodic_ilp_phases(
    *,
    dependence_distances: Sequence[float] = (4.0, 12.0, 25.0, 45.0),
    phase_length: int = 8_000,
    far_fraction: float = 0.2,
) -> tuple[PhaseSpec, ...]:
    """Cycle the mean dependence distance through *dependence_distances*.

    Short distances serialise execution (a 16-entry queue is plenty); long
    distances expose independent work that only a deeper queue can hold, so
    the ILP-tracking controller walks the queue through its sizes, as art
    does in Figure 7(b).
    """
    phases = []
    for distance in dependence_distances:
        phases.append(
            PhaseSpec(
                length=phase_length,
                overrides={
                    "mean_dependence_distance": float(distance),
                    "far_dependence_fraction": far_fraction,
                },
            )
        )
    return tuple(phases)


def bursty_conflict_phases(
    *,
    quiet_kb: float = 24.0,
    burst_kb: float = 96.0,
    quiet_length: int = 12_000,
    burst_length: int = 2_500,
    footprint_kb: float = 1_200.0,
) -> tuple[PhaseSpec, ...]:
    """Short bursts of conflict misses between long quiet periods (mst-like).

    The burst is short relative to the controller's adaptation interval, so a
    phase-adaptive controller reacts one interval late and flips back
    afterwards — the behaviour the paper describes for ``mst``.
    """
    quiet = PhaseSpec(
        length=quiet_length,
        overrides={
            "hot_data_kb": quiet_kb,
            "hot_data_fraction": 0.9,
            "data_footprint_kb": footprint_kb,
            "sequential_fraction": 0.45,
        },
    )
    burst = PhaseSpec(
        length=burst_length,
        overrides={
            "hot_data_kb": burst_kb,
            "hot_data_fraction": 0.75,
            "data_footprint_kb": footprint_kb,
            "sequential_fraction": 0.2,
        },
    )
    return (quiet, burst)
