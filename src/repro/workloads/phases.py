"""Helpers for building phased workload profiles.

Two kinds of phase behaviour matter in the paper's evaluation (Figure 7):

* ``apsi`` shows strong periodic phases in its *data-cache capacity* needs —
  the D/L2 pair oscillates mostly between the 32 KB/256 KB 1-way and the
  128 KB/1 MB 4-way configurations.
* ``art`` cycles its *integer issue queue* through all four sizes in a
  regular pattern that follows the available ILP.

The helpers below build the corresponding :class:`PhaseSpec` sequences; they
are also reusable for user-defined phased workloads.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.workloads.characteristics import PhaseSpec


def periodic_data_phases(
    *,
    small_kb: float = 24.0,
    large_kb: float = 640.0,
    footprint_kb: float = 1024.0,
    phase_length: int = 8_000,
    hot_fraction_small: float = 0.95,
    hot_fraction_large: float = 0.85,
) -> tuple[PhaseSpec, ...]:
    """Alternate between a cache-friendly phase and a capacity-hungry phase.

    The small phase keeps its hot data well inside the minimal 32 KB L1 so
    the controller favours the fastest configuration; the large phase touches
    ``large_kb`` of hot data so upsizing the D/L2 pair pays for the frequency
    loss.
    """
    small = PhaseSpec(
        length=phase_length,
        overrides={
            "hot_data_kb": small_kb,
            "hot_data_fraction": hot_fraction_small,
            "data_footprint_kb": footprint_kb,
            "sequential_fraction": 0.6,
        },
    )
    large = PhaseSpec(
        length=phase_length,
        overrides={
            "hot_data_kb": large_kb,
            "hot_data_fraction": hot_fraction_large,
            "data_footprint_kb": footprint_kb,
            "sequential_fraction": 0.35,
        },
    )
    return (small, large)


def periodic_ilp_phases(
    *,
    dependence_distances: Sequence[float] = (4.0, 12.0, 25.0, 45.0),
    phase_length: int = 8_000,
    far_fraction: float = 0.2,
) -> tuple[PhaseSpec, ...]:
    """Cycle the mean dependence distance through *dependence_distances*.

    Short distances serialise execution (a 16-entry queue is plenty); long
    distances expose independent work that only a deeper queue can hold, so
    the ILP-tracking controller walks the queue through its sizes, as art
    does in Figure 7(b).
    """
    phases = []
    for distance in dependence_distances:
        phases.append(
            PhaseSpec(
                length=phase_length,
                overrides={
                    "mean_dependence_distance": float(distance),
                    "far_dependence_fraction": far_fraction,
                },
            )
        )
    return tuple(phases)


def bursty_conflict_phases(
    *,
    quiet_kb: float = 24.0,
    burst_kb: float = 96.0,
    quiet_length: int = 12_000,
    burst_length: int = 2_500,
    footprint_kb: float = 1_200.0,
) -> tuple[PhaseSpec, ...]:
    """Short bursts of conflict misses between long quiet periods (mst-like).

    The burst is short relative to the controller's adaptation interval, so a
    phase-adaptive controller reacts one interval late and flips back
    afterwards — the behaviour the paper describes for ``mst``.
    """
    quiet = PhaseSpec(
        length=quiet_length,
        overrides={
            "hot_data_kb": quiet_kb,
            "hot_data_fraction": 0.9,
            "data_footprint_kb": footprint_kb,
            "sequential_fraction": 0.45,
        },
    )
    burst = PhaseSpec(
        length=burst_length,
        overrides={
            "hot_data_kb": burst_kb,
            "hot_data_fraction": 0.75,
            "data_footprint_kb": footprint_kb,
            "sequential_fraction": 0.2,
        },
    )
    return (quiet, burst)


# ---------------------------------------------------------------------------
# Generic schedule builders (used by repro.scenarios)
# ---------------------------------------------------------------------------
#
# The helpers above encode the three phase behaviours the paper describes;
# the builders below are the generic vocabulary the scenario subsystem
# composes: abrupt periodic alternation (square wave), gradual linear
# transitions (ramp, and its periodic triangle form) and asymmetric bursts.
# All of them return plain ``PhaseSpec`` tuples, so they compose with the
# paper-shaped helpers and with hand-written phase programs.


def _interpolate_overrides(
    start: Mapping[str, Any], end: Mapping[str, Any], t: float
) -> dict[str, Any]:
    """Linear interpolation between two override mappings at position *t*.

    Both endpoints must override the same numeric fields; anything else would
    silently snap a parameter back to the profile default mid-ramp.
    """
    if set(start) != set(end):
        raise ValueError(
            "ramp endpoints must override the same fields; "
            f"start has {sorted(start)}, end has {sorted(end)}"
        )
    interpolated: dict[str, Any] = {}
    for key, start_value in start.items():
        end_value = end[key]
        if not isinstance(start_value, (int, float)) or not isinstance(
            end_value, (int, float)
        ):
            raise ValueError(f"ramp field {key!r} must be numeric at both endpoints")
        interpolated[key] = start_value + (end_value - start_value) * t
    return interpolated


def square_wave(
    low: Mapping[str, Any],
    high: Mapping[str, Any],
    *,
    period: int,
    duty: float = 0.5,
) -> tuple[PhaseSpec, ...]:
    """Abrupt periodic alternation between two override sets.

    One full period is ``period`` instructions, of which a ``duty`` fraction
    runs the *high* overrides.  The phase cycle repeats for the whole run, so
    the workload oscillates for as long as it is simulated — the basic
    stimulus for stressing a controller whose adaptation interval is
    comparable to the period.
    """
    if period < 2:
        raise ValueError("square_wave period must be at least 2 instructions")
    if not 0 < duty < 1:
        raise ValueError("square_wave duty must be strictly between 0 and 1")
    high_length = min(period - 1, max(1, round(period * duty)))
    return (
        PhaseSpec(length=period - high_length, overrides=low),
        PhaseSpec(length=high_length, overrides=high),
    )


def ramp(
    start: Mapping[str, Any],
    end: Mapping[str, Any],
    *,
    steps: int,
    total_length: int,
) -> tuple[PhaseSpec, ...]:
    """Gradual linear transition from *start* to *end* over *steps* phases.

    The ``total_length`` instructions are split evenly across the steps (the
    remainder goes to the earliest steps).  Because profiles cycle their
    phase list, the ramp repeats as a sawtooth: a slow build-up followed by
    an abrupt reset to the start — the gradual counterpart of
    :func:`square_wave`.
    """
    if steps < 2:
        raise ValueError("ramp needs at least 2 steps")
    if total_length < steps:
        raise ValueError("ramp total_length must provide at least 1 instruction per step")
    base_length, remainder = divmod(total_length, steps)
    phases = []
    for index in range(steps):
        t = index / (steps - 1)
        phases.append(
            PhaseSpec(
                length=base_length + (1 if index < remainder else 0),
                overrides=_interpolate_overrides(start, end, t),
            )
        )
    return tuple(phases)


def triangle(
    low: Mapping[str, Any],
    high: Mapping[str, Any],
    *,
    steps: int,
    period: int,
) -> tuple[PhaseSpec, ...]:
    """Gradual periodic oscillation: ramp up to *high*, then back down.

    ``steps`` counts the distinct levels of each leg; the peak and the
    trough are each held exactly once per cycle (the trough by the wrap
    back to the first phase), giving ``2 * steps - 2`` phases whose lengths
    sum to exactly ``period`` instructions.  Unlike the sawtooth cycle of
    :func:`ramp`, the descent is as gradual as the ascent, so a trailing
    controller is never hit with an abrupt reset.
    """
    if steps < 2:
        raise ValueError("triangle needs at least 2 steps")
    positions = [index / (steps - 1) for index in range(steps)]
    # Ascent holds every level once; the descent revisits the interior
    # levels in reverse (the wrap to phase 0 supplies the trough).
    cycle = positions + positions[-2:0:-1]
    if period < len(cycle):
        raise ValueError("triangle period must provide at least 1 instruction per phase")
    base_length, remainder = divmod(period, len(cycle))
    return tuple(
        PhaseSpec(
            length=base_length + (1 if index < remainder else 0),
            overrides=_interpolate_overrides(low, high, t),
        )
        for index, t in enumerate(cycle)
    )


def burst_schedule(
    quiet: Mapping[str, Any],
    burst: Mapping[str, Any],
    *,
    quiet_length: int,
    burst_length: int,
) -> tuple[PhaseSpec, ...]:
    """Asymmetric bursts: long *quiet* stretches punctuated by short *bursts*.

    The generic form of :func:`bursty_conflict_phases` — any override set can
    burst, not just conflict-miss pressure.  A burst shorter than the
    controller's adaptation interval is the paper's ``mst`` pathology: the
    controller reacts one interval late and flips back afterwards.
    """
    return (
        PhaseSpec(length=quiet_length, overrides=quiet),
        PhaseSpec(length=burst_length, overrides=burst),
    )
