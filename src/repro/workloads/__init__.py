"""Synthetic workload substrate.

The paper evaluates 32 MediaBench, Olden and SPEC2000 applications compiled
for Alpha and simulated over 100 M-200 M instruction windows.  Neither the
binaries nor the reference inputs can be shipped or executed here, so each
application is modelled as a :class:`~repro.workloads.characteristics.WorkloadProfile`
— a parametric description of the properties that drive the paper's results:
instruction mix, dependence distances (ILP), instruction footprint and loop
structure, data footprint and locality, branch predictability, and phase
behaviour.  A deterministic generator turns a profile into a dynamic
instruction trace consumed by the timing pipeline.

The per-application parameters in :mod:`repro.workloads.suites` follow the
paper's own characterisation of each benchmark (e.g. ``adpcm`` as a tiny
high-ILP kernel, ``em3d``/``mst``/``art`` as memory bound, ``gcc``/``vortex``
as instruction-footprint bound, ``apsi`` and ``art`` as strongly phased).
"""

from repro.workloads.characteristics import PhaseSpec, WorkloadProfile
from repro.workloads.generator import SyntheticTraceGenerator
from repro.workloads.phases import (
    burst_schedule,
    bursty_conflict_phases,
    periodic_data_phases,
    periodic_ilp_phases,
    ramp,
    square_wave,
    triangle,
)
from repro.workloads.suites import (
    BENCHMARK_SUITES,
    full_suite,
    get_workload,
    mediabench_suite,
    olden_suite,
    spec2000_suite,
    workload_names,
)

__all__ = [
    "PhaseSpec",
    "WorkloadProfile",
    "SyntheticTraceGenerator",
    "BENCHMARK_SUITES",
    "burst_schedule",
    "bursty_conflict_phases",
    "full_suite",
    "get_workload",
    "mediabench_suite",
    "olden_suite",
    "periodic_data_phases",
    "periodic_ilp_phases",
    "ramp",
    "spec2000_suite",
    "square_wave",
    "triangle",
    "workload_names",
]
