"""Benchmark and performance-regression subsystem.

``repro.bench`` is the first-class home of the repository's performance
trajectory.  It owns

* the JSON schema of one benchmark entry (:mod:`repro.bench.schema`),
* the environment fingerprint that makes entries comparable across hosts
  (:mod:`repro.bench.environment`),
* the calibrated wall-clock timer (:mod:`repro.bench.timer`),
* baseline comparison with a configurable tolerance
  (:mod:`repro.bench.baseline`),
* the fig2 / fig6 / sweep benchmark suites (:mod:`repro.bench.suites`), and
* the ``python -m repro.bench`` command line (:mod:`repro.bench.cli`).

Entries are appended to ``BENCH_<suite>.json`` at the repository root, so the
wall-clock history of every suite is tracked across PRs, and ``--check``
compares the freshest entry against the committed baseline
(``benchmarks/baseline.json``), exiting non-zero on a regression beyond the
tolerance.
"""

from __future__ import annotations

from repro.bench.baseline import (
    DEFAULT_TOLERANCE,
    Regression,
    compare_entries,
    load_baseline,
    save_baseline,
)
from repro.bench.environment import EnvironmentFingerprint
from repro.bench.recording import (
    BENCH_HISTORY_LIMIT,
    append_entry,
    bench_file_for_suite,
    default_output_dir,
    load_history,
)
from repro.bench.schema import SCHEMA_VERSION, BenchEntry, BenchRun, validate_entry
from repro.bench.suites import SUITES, run_suite
from repro.bench.timer import calibrate, timed

__all__ = [
    "BENCH_HISTORY_LIMIT",
    "BenchEntry",
    "BenchRun",
    "DEFAULT_TOLERANCE",
    "EnvironmentFingerprint",
    "Regression",
    "SCHEMA_VERSION",
    "SUITES",
    "append_entry",
    "bench_file_for_suite",
    "calibrate",
    "compare_entries",
    "default_output_dir",
    "load_baseline",
    "load_history",
    "run_suite",
    "save_baseline",
    "timed",
    "validate_entry",
]
