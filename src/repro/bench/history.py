"""Benchmark-trajectory analysis of the committed ``BENCH_*.json`` files.

The recording layer (:mod:`repro.bench.recording`) appends one entry per
suite invocation; this module turns those histories into the per-suite
trajectory an operator (or EXPERIMENTS.md) wants to read: wall-clock and
calibration-normalised seconds per entry, the delta against the previous
like-for-like entry, and a regression flag when the normalised cost grew
beyond the tolerance the ``--check`` gate uses.

Deltas are computed on the *normalized* metric and only between entries
recorded with the same parameterisation (``quick`` vs full): raw seconds
across different hosts or run sizes are not comparable, which is exactly
why the recording schema carries the calibration time and parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from repro.bench.baseline import DEFAULT_TOLERANCE
from repro.bench.recording import load_history
from repro.bench.schema import BenchEntry

__all__ = ["HistoryRow", "load_trajectories", "render_history"]


@dataclass(slots=True)
class HistoryRow:
    """One recorded suite invocation in an experiment's trajectory."""

    timestamp: str
    mode: str
    seconds: float
    normalized: float
    simulations: int
    #: Percent change of ``normalized`` against the previous row of the same
    #: mode (``None`` for the first such row).
    delta_percent: float | None = None
    #: True when the normalised cost grew beyond the regression tolerance.
    regression: bool = False

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form for ``--json`` output."""
        return {
            "timestamp": self.timestamp,
            "mode": self.mode,
            "seconds": round(self.seconds, 4),
            "normalized": round(self.normalized, 4),
            "simulations": self.simulations,
            "delta_percent": (
                round(self.delta_percent, 2) if self.delta_percent is not None else None
            ),
            "regression": self.regression,
        }


def _entry_mode(entry: BenchEntry) -> str:
    return "quick" if entry.parameters.get("quick") else "full"


def _rows_for_entries(
    entries: list[Mapping[str, Any]], *, tolerance: float, limit: int | None
) -> list[HistoryRow]:
    rows: list[HistoryRow] = []
    previous_normalized: dict[str, float] = {}
    for payload in entries:
        try:
            entry = BenchEntry.from_dict(payload)
        except (ValueError, KeyError, TypeError):
            continue
        mode = _entry_mode(entry)
        normalized = sum(run.normalized for run in entry.runs)
        simulations = sum(run.simulations for run in entry.runs)
        delta: float | None = None
        regression = False
        baseline = previous_normalized.get(mode)
        if baseline is not None and baseline > 0:
            delta = (normalized - baseline) / baseline * 100.0
            regression = normalized > baseline * (1.0 + tolerance)
        previous_normalized[mode] = normalized
        rows.append(
            HistoryRow(
                timestamp=entry.timestamp,
                mode=mode,
                seconds=entry.total_seconds,
                normalized=normalized,
                simulations=simulations,
                delta_percent=delta,
                regression=regression,
            )
        )
    if limit is not None:
        rows = rows[-limit:]
    return rows


def load_trajectories(
    output_dir: str | Path,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    limit: int | None = None,
) -> dict[str, list[HistoryRow]]:
    """Per-experiment trajectories from every ``BENCH_*.json`` in *output_dir*.

    Experiment keys follow the recording layer (a file can hold several —
    ``BENCH_sweep.json`` carries the sweep, sensitivity, energy and
    scenarios trajectories).  Schema-invalid entries are skipped, matching
    :func:`repro.bench.recording.latest_entry`'s tolerance for old rows.
    *limit* keeps only the newest N rows per experiment.
    """
    output_dir = Path(output_dir)
    paths = sorted(output_dir.glob("BENCH_*.json"))
    if not paths:
        raise FileNotFoundError(f"no BENCH_*.json files in {output_dir}")
    trajectories: dict[str, list[HistoryRow]] = {}
    for path in paths:
        for experiment, entries in sorted(load_history(path).items()):
            rows = _rows_for_entries(entries, tolerance=tolerance, limit=limit)
            if rows:
                trajectories.setdefault(experiment, []).extend(rows)
    return trajectories


def _format_row(row: HistoryRow) -> list[str]:
    delta = f"{row.delta_percent:+.1f}%" if row.delta_percent is not None else "-"
    flag = "REGRESSION" if row.regression else ""
    return [
        row.timestamp,
        row.mode,
        f"{row.seconds:.2f}",
        f"{row.normalized:.1f}",
        str(row.simulations),
        delta,
        flag,
    ]


def render_history(
    trajectories: Mapping[str, list[HistoryRow]], *, markdown: bool = False
) -> str:
    """Render trajectories as per-experiment tables (ASCII or Markdown)."""
    headers = ["timestamp", "mode", "seconds", "normalized", "simulations", "delta", "flag"]
    lines: list[str] = []
    for experiment in sorted(trajectories):
        rows = [_format_row(row) for row in trajectories[experiment]]
        if markdown:
            lines.append(f"### {experiment}")
            lines.append("")
            lines.append("| " + " | ".join(headers) + " |")
            lines.append("|" + "|".join(" --- " for _ in headers) + "|")
            for row in rows:
                lines.append("| " + " | ".join(cell or " " for cell in row) + " |")
        else:
            lines.append(f"{experiment}:")
            widths = [len(header) for header in headers]
            for row in rows:
                for index, cell in enumerate(row):
                    widths[index] = max(widths[index], len(cell))
            lines.append(
                "  " + "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip()
            )
            for row in rows:
                lines.append(
                    "  " + "  ".join(c.ljust(widths[i]) for i, c in enumerate(row)).rstrip()
                )
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
