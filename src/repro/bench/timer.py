"""Wall-clock timing and host-speed calibration.

``timed`` measures one callable with ``time.perf_counter``.  ``calibrate``
times a fixed pure-Python workload and returns its best-of-N seconds; the
suites divide measured wall-clocks by this number to produce a
hardware-normalised metric (``normalized``), which is what the regression
checker uses when two entries come from non-identical environments.
"""

from __future__ import annotations

import time
from typing import Any, Callable, TypeVar

T = TypeVar("T")

#: Iterations of the calibration kernel (fixed forever so the normalised
#: metric stays comparable across history).
_CALIBRATION_ITERATIONS = 200_000


def _calibration_kernel() -> int:
    """A fixed integer-arithmetic spin representative of interpreter speed."""
    acc = 0
    for index in range(_CALIBRATION_ITERATIONS):
        acc = (acc * 31 + index) % 1_000_003
    return acc


def calibrate(repeats: int = 5) -> float:
    """Seconds for the fixed calibration kernel (best of *repeats*)."""
    if repeats < 1:
        raise ValueError("repeats must be positive")
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        _calibration_kernel()
        best = min(best, time.perf_counter() - started)
    return best


def timed(fn: Callable[..., T], *args: Any, **kwargs: Any) -> tuple[T, float]:
    """Call ``fn(*args, **kwargs)`` and return ``(result, seconds)``."""
    started = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - started
