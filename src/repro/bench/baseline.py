"""Baseline comparison: detect wall-clock regressions beyond a tolerance.

The committed baseline (``benchmarks/baseline.json``) maps suite names to
benchmark entries recorded on a reference host.  ``compare_entries`` compares
a fresh entry against the baseline run-by-run:

* when the two environment fingerprints are comparable, raw ``seconds`` are
  compared;
* otherwise the calibration-normalised metric (``normalized``) is compared,
  which factors out most of the host-speed difference.

A run regresses when its metric exceeds the baseline's by more than
``tolerance`` (default 15 %).  Runs present on only one side are ignored —
adding a new benchmark must not fail the check retroactively.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.bench.schema import BenchEntry

#: Default allowed slow-down before a run counts as a regression.
DEFAULT_TOLERANCE = 0.15


@dataclass(frozen=True, slots=True)
class Regression:
    """One benchmark run that slowed down beyond the tolerance."""

    suite: str
    run: str
    metric: str
    current: float
    reference: float
    tolerance: float

    @property
    def ratio(self) -> float:
        """How many times slower the current run is (1.0 = unchanged)."""
        if self.reference <= 0:
            return float("inf")
        return self.current / self.reference

    def describe(self) -> str:
        """Human-readable one-liner for CLI output."""
        return (
            f"{self.suite}/{self.run}: {self.metric} {self.current:.3f} vs "
            f"baseline {self.reference:.3f} ({(self.ratio - 1) * 100:+.1f}%, "
            f"tolerance {self.tolerance * 100:.0f}%)"
        )


def compare_entries(
    current: BenchEntry,
    reference: BenchEntry,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
) -> list[Regression]:
    """Return the regressions of *current* relative to *reference*.

    Raises ``ValueError`` when the entries' parameters differ (comparing a
    quick run against a full baseline would be meaningless).
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    if current.parameters != reference.parameters:
        raise ValueError(
            "benchmark parameters differ from the baseline; "
            f"current={current.parameters!r} baseline={reference.parameters!r}"
        )
    comparable = current.environment.is_comparable_to(reference.environment)
    metric = "seconds" if comparable else "normalized"

    regressions: list[Regression] = []
    for run in current.runs:
        base_run = reference.run_named(run.name)
        if base_run is None:
            continue
        current_value = getattr(run, metric)
        reference_value = getattr(base_run, metric)
        if reference_value <= 0 or current_value <= 0:
            continue
        if current_value > reference_value * (1.0 + tolerance):
            regressions.append(
                Regression(
                    suite=current.suite,
                    run=run.name,
                    metric=metric,
                    current=current_value,
                    reference=reference_value,
                    tolerance=tolerance,
                )
            )
    return regressions


def load_baseline(path: Path) -> dict[str, BenchEntry]:
    """Load a committed baseline file mapping suite name -> entry."""
    if not path.exists():
        return {}
    data = json.loads(path.read_text())
    if not isinstance(data, dict):
        raise ValueError(f"baseline file {path} must contain a JSON object")
    return {suite: BenchEntry.from_dict(entry) for suite, entry in data.items()}


def save_baseline(path: Path, entries: dict[str, BenchEntry]) -> None:
    """Write *entries* as the committed baseline (sorted, stable layout)."""
    payload = {suite: entries[suite].to_dict() for suite in sorted(entries)}
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")
