"""``python -m repro.bench`` — run benchmark suites and guard regressions.

Examples::

    python -m repro.bench                       # all suites, full size
    python -m repro.bench --quick               # CI-sized parameterisation
    python -m repro.bench --suite sweep --quick # one suite
    python -m repro.bench --quick --check       # fail (exit 1) on regression
    python -m repro.bench --quick --update-baseline
    python -m repro.bench --suite sweep --quick --profile   # cProfile a suite
    python -m repro.bench history                 # recorded trajectory tables
    python -m repro.bench history --markdown      # ...for EXPERIMENTS.md

Every invocation appends one entry per suite to ``BENCH_<suite>.json`` at
the repository root (disable with ``--no-record``).  ``--check`` compares the
fresh entries against the committed baseline (``benchmarks/baseline.json``):
raw seconds when the environment fingerprint matches the baseline's, the
calibration-normalised metric otherwise.  ``history`` renders the committed
BENCH files as per-experiment trajectory tables (normalised seconds, deltas
against the previous like-for-like entry, regression flags) instead of
running anything.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
from pathlib import Path
from typing import Sequence

from repro.bench.baseline import (
    DEFAULT_TOLERANCE,
    compare_entries,
    load_baseline,
    save_baseline,
)
from repro.bench.recording import append_entry, bench_file_for_suite, default_output_dir
from repro.bench.schema import BenchEntry
from repro.bench.suites import SUITES, run_suite
from repro.obs.logging import add_logging_arguments, configure_logging


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.bench`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run the repository's benchmark suites and check for regressions.",
    )
    add_logging_arguments(parser)
    parser.add_argument(
        "command",
        nargs="?",
        choices=("run", "history"),
        default="run",
        help="'run' (default) times the suites; 'history' renders the "
        "recorded BENCH_*.json trajectory tables without running anything",
    )
    parser.add_argument(
        "--markdown",
        action="store_true",
        help="with 'history', emit Markdown tables (for EXPERIMENTS.md)",
    )
    parser.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help="with 'history', keep only the newest N rows per experiment",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="with 'history', machine-readable output",
    )
    parser.add_argument(
        "--suite",
        action="append",
        choices=sorted(SUITES) + ["all"],
        help="suite to run (repeatable; default: all)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized parameterisation (small windows, few workloads)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the committed baseline and exit 1 on regression",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help=f"allowed slow-down before failing (default {DEFAULT_TOLERANCE:.2f} = "
        f"{DEFAULT_TOLERANCE:.0%})",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline file (default: <repo>/benchmarks/baseline.json)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write the fresh entries into the baseline file",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="also time the parallel executor with this many workers (sweep suite)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run each suite under cProfile and write a pstats dump plus a "
        "top-25 cumulative table next to the bench JSON; implies --no-record "
        "(profiler overhead would pollute the timing history)",
    )
    parser.add_argument(
        "--no-record",
        action="store_true",
        help="do not append entries to the BENCH_*.json history files",
    )
    parser.add_argument(
        "--output-dir",
        type=Path,
        default=None,
        help="directory for BENCH_*.json files (default: repository root)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="with --check, fail when a suite cannot be compared (missing or "
        "mismatched baseline) instead of skipping it",
    )
    return parser


def _parse_args(argv: Sequence[str] | None) -> argparse.Namespace:
    return build_parser().parse_args(argv)


def _write_profile(
    profiler: cProfile.Profile, suite: str, output_dir: Path
) -> tuple[Path, Path]:
    """Write the raw pstats dump and a top-25 cumulative table for *suite*.

    Artifacts land next to the bench JSON: ``BENCH_<suite>.pstats`` (load
    with :mod:`pstats` for interactive digging) and
    ``BENCH_<suite>_profile.txt`` (the human-readable starting point for the
    next performance PR).
    """
    dump_path = output_dir / f"BENCH_{suite}.pstats"
    table_path = output_dir / f"BENCH_{suite}_profile.txt"
    profiler.dump_stats(dump_path)
    with table_path.open("w", encoding="utf-8") as handle:
        stats = pstats.Stats(str(dump_path), stream=handle)
        stats.sort_stats("cumulative").print_stats(25)
    return dump_path, table_path


def _resolve_suites(selected: list[str] | None) -> list[str]:
    if not selected or "all" in selected:
        return sorted(SUITES)
    ordered: list[str] = []
    for name in selected:
        if name not in ordered:
            ordered.append(name)
    return ordered


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _parse_args(argv)
    configure_logging(args)
    if args.tolerance < 0:
        print("error: --tolerance must be non-negative", file=sys.stderr)
        return 2
    suites = _resolve_suites(args.suite)
    output_dir = args.output_dir if args.output_dir is not None else default_output_dir()

    if args.command == "history":
        # Imported lazily: the analysis layer is pure file reading and the
        # run path never needs it.
        import json

        from repro.bench.history import load_trajectories, render_history

        try:
            trajectories = load_trajectories(
                output_dir, tolerance=args.tolerance, limit=args.limit
            )
        except FileNotFoundError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        if args.as_json:
            payload = {
                experiment: [row.to_dict() for row in rows]
                for experiment, rows in sorted(trajectories.items())
            }
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            print(render_history(trajectories, markdown=args.markdown), end="")
        return 0

    baseline_path = (
        args.baseline if args.baseline is not None else output_dir / "benchmarks" / "baseline.json"
    )

    record = not args.no_record and not args.profile
    entries: dict[str, BenchEntry] = {}
    for name in suites:
        print(f"[bench] running suite {name!r} ({'quick' if args.quick else 'full'})...")
        if args.profile:
            profiler = cProfile.Profile()
            profiler.enable()
        entry = run_suite(name, quick=args.quick, workers=args.workers)
        if args.profile:
            profiler.disable()
            dump_path, table_path = _write_profile(profiler, name, output_dir)
            print(f"[bench]   profile -> {dump_path} and {table_path}")
        entries[name] = entry
        for run in entry.runs:
            print(
                f"[bench]   {run.name}: {run.seconds:.2f}s "
                f"({run.simulations} simulations, {run.cache_hits} cache hits, "
                f"{run.normalized:.1f} calibration units)"
            )
        if record:
            path = bench_file_for_suite(name, output_dir)
            append_entry(path, entry)
            print(f"[bench]   recorded -> {path}")

    failures = 0
    if args.check or args.update_baseline:
        baseline = load_baseline(baseline_path) if baseline_path.exists() else {}
        if args.check:
            for name, entry in entries.items():
                reference = baseline.get(name)
                if reference is None:
                    print(f"[bench] {name}: no committed baseline at {baseline_path}; skipping")
                    if args.strict:
                        failures += 1
                    continue
                try:
                    regressions = compare_entries(
                        entry, reference, tolerance=args.tolerance
                    )
                except ValueError as error:
                    print(f"[bench] {name}: cannot compare against baseline: {error}")
                    if args.strict:
                        failures += 1
                    continue
                metric = (
                    "seconds"
                    if entry.environment.is_comparable_to(reference.environment)
                    else "normalized (environment differs from baseline)"
                )
                if regressions:
                    failures += len(regressions)
                    for regression in regressions:
                        print(f"[bench] REGRESSION {regression.describe()}")
                else:
                    print(f"[bench] {name}: within tolerance (metric: {metric})")
        if args.update_baseline:
            baseline.update(entries)
            save_baseline(baseline_path, baseline)
            print(f"[bench] baseline updated -> {baseline_path}")

    if failures:
        print(f"[bench] FAILED: {failures} regression(s) beyond tolerance", file=sys.stderr)
        return 1
    return 0
