"""The benchmark suites: fig2, fig6 and the Figure 6 / Table 9 sweep.

Each suite builds the relevant experiment out of the :mod:`repro.engine`
subsystem, times it with a fresh in-memory result cache (so wall-clocks
measure simulation, not cache luck), and returns a fully populated
:class:`~repro.bench.schema.BenchEntry`.

Every suite has a ``--quick`` parameterisation small enough for CI and a
full one for workstation runs; the parameters are recorded in the entry so
the regression checker never compares quick numbers against full ones.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.analysis.sensitivity import (
    FULL_GRIDS,
    QUICK_GRIDS,
    QUICK_WARMUP,
    QUICK_WINDOW,
    sensitivity_sweep,
)
from repro.analysis.sweep import compare_workload, compare_workloads, evaluate_configuration
from repro.bench.environment import EnvironmentFingerprint
from repro.bench.schema import BenchEntry, BenchRun
from repro.bench.timer import calibrate, timed
from repro.core.configuration import AdaptiveConfigIndices
from repro.engine import ExperimentEngine, make_engine
from repro.timing.tables import ADAPTIVE_DCACHE_CONFIGS
from repro.workloads import get_workload

#: Workload subset for the quick sweep: an instruction-bound code, a
#: memory-bound code, a strongly phased application and an FP code.
QUICK_SWEEP_WORKLOADS = ("gcc", "em3d", "adpcm_encode", "apsi")

#: Representative 16-application subset used by the full sweep (matches the
#: benchmark harness's historical default).
FULL_SWEEP_WORKLOADS = (
    "adpcm_encode", "adpcm_decode", "g721_encode", "jpeg_compress",
    "mpeg2_encode", "gsm_encode", "ghostscript", "power",
    "em3d", "health", "bzip2", "gcc", "vortex", "galgel", "apsi", "art",
)


def _fresh_engine(workers: int) -> ExperimentEngine:
    return make_engine(workers=workers, use_cache=True)


def _entry(
    suite: str,
    parameters: dict[str, Any],
    runs: list[BenchRun],
    calibration: float,
) -> BenchEntry:
    for run in runs:
        run.normalized = run.seconds / calibration if calibration > 0 else 0.0
    return BenchEntry(
        suite=suite,
        environment=EnvironmentFingerprint.collect(),
        calibration_seconds=calibration,
        parameters=parameters,
        runs=runs,
    )


def run_fig2_suite(*, quick: bool = False, workers: int = 1) -> BenchEntry:
    """Time the D-cache configuration sweep behind Figure 2 (one workload)."""
    window, warmup = (1_500, 2_500) if quick else (6_000, 20_000)
    profile = get_workload("em3d")
    parameters = {
        "quick": quick,
        "window": window,
        "warmup": warmup,
        "workload": profile.name,
        "configurations": len(ADAPTIVE_DCACHE_CONFIGS),
    }

    engine = _fresh_engine(workers)

    def sweep_dcache() -> None:
        for index in range(len(ADAPTIVE_DCACHE_CONFIGS)):
            evaluate_configuration(
                profile,
                AdaptiveConfigIndices(dcache_index=index),
                window=window,
                warmup=warmup,
                engine=engine,
            )

    calibration = calibrate()
    _, seconds = timed(sweep_dcache)
    runs = [
        BenchRun(
            name="dcache_config_sweep",
            seconds=seconds,
            simulations=engine.stats.simulations,
            cache_hits=engine.stats.cache_hits,
        )
    ]
    return _entry("fig2", parameters, runs, calibration)


def run_fig6_suite(*, quick: bool = False, workers: int = 1) -> BenchEntry:
    """Time one full three-machine Figure 6 comparison (one workload)."""
    window, warmup = (2_000, 3_000) if quick else (8_000, 20_000)
    profile = get_workload("gcc")
    parameters = {
        "quick": quick,
        "window": window,
        "warmup": warmup,
        "workload": profile.name,
        "search_mode": "factored",
    }

    engine = _fresh_engine(workers)
    calibration = calibrate()
    _, seconds = timed(
        compare_workload,
        profile,
        search_mode="factored",
        window=window,
        warmup=warmup,
        engine=engine,
    )
    runs = [
        BenchRun(
            name="three_machine_comparison",
            seconds=seconds,
            simulations=engine.stats.simulations,
            cache_hits=engine.stats.cache_hits,
        )
    ]
    return _entry("fig6", parameters, runs, calibration)


def run_sweep_suite(*, quick: bool = False, workers: int = 1) -> BenchEntry:
    """Time the multi-workload Figure 6 / Table 9 sweep (the headline bench).

    Always times the serial executor (the stable, CI-comparable number); when
    *workers* > 1 a second timed run exercises the parallel executor as well.
    """
    window, warmup = (2_000, 3_000) if quick else (6_000, 20_000)
    names = QUICK_SWEEP_WORKLOADS if quick else FULL_SWEEP_WORKLOADS
    profiles = tuple(get_workload(name) for name in names)
    parameters = {
        "quick": quick,
        "window": window,
        "warmup": warmup,
        "workloads": list(names),
        "search_mode": "factored",
    }

    calibration = calibrate()
    runs: list[BenchRun] = []
    modes: list[tuple[str, int]] = [("serial", 1)]
    if workers > 1:
        modes.append(("parallel", workers))
    reference = None
    for mode, mode_workers in modes:
        engine = _fresh_engine(mode_workers)
        comparisons, seconds = timed(
            compare_workloads,
            profiles,
            search_mode="factored",
            window=window,
            warmup=warmup,
            engine=engine,
        )
        if reference is None:
            reference = comparisons
        elif [c.workload for c in comparisons] != [c.workload for c in reference] or any(
            a.synchronous != b.synchronous for a, b in zip(comparisons, reference)
        ):
            raise AssertionError(f"executor mode {mode!r} produced different sweep results")
        runs.append(
            BenchRun(
                name=f"figure6_sweep_{mode}",
                seconds=seconds,
                simulations=engine.stats.simulations,
                cache_hits=engine.stats.cache_hits,
                extra={"workers": mode_workers},
            )
        )
    return _entry("sweep", parameters, runs, calibration)


#: Workload subset for the energy suite: an instruction-bound code and a
#: memory-bound one (quick); the quick sweep set (full).
QUICK_ENERGY_WORKLOADS = ("gcc", "em3d")
FULL_ENERGY_WORKLOADS = QUICK_SWEEP_WORKLOADS


def run_energy_suite(*, quick: bool = False, workers: int = 1) -> BenchEntry:
    """Time the energy view of the Figure 6 comparison.

    Runs the three-machine comparison per workload and computes every
    machine's :class:`~repro.energy.EnergyReport` plus the comparative
    energy / ED / ED^2 columns, so the suite guards both the simulation path
    with activity counting enabled and the energy model's arithmetic.
    """
    from repro.analysis.reporting import energy_table

    window, warmup = (1_500, 2_500) if quick else (6_000, 20_000)
    names = QUICK_ENERGY_WORKLOADS if quick else FULL_ENERGY_WORKLOADS
    profiles = tuple(get_workload(name) for name in names)
    parameters = {
        "quick": quick,
        "window": window,
        "warmup": warmup,
        "workloads": list(names),
        "search_mode": "factored",
    }

    engine = _fresh_engine(workers)
    calibration = calibrate()

    def energy_sweep() -> str:
        rows = compare_workloads(
            profiles,
            search_mode="factored",
            window=window,
            warmup=warmup,
            engine=engine,
        )
        # energy_table prices all three machines per row (memoised on the
        # comparison), so the timed work covers simulation + energy model.
        return energy_table(rows)

    _, seconds = timed(energy_sweep)
    runs = [
        BenchRun(
            name="energy_figure6_columns",
            seconds=seconds,
            simulations=engine.stats.simulations,
            cache_hits=engine.stats.cache_hits,
        )
    ]
    return _entry("energy", parameters, runs, calibration)


#: Workload subset for the sensitivity suite: an instruction-bound code and a
#: memory-bound one (quick), plus the two strongly phased applications (full).
QUICK_SENSITIVITY_WORKLOADS = ("gcc", "em3d")
FULL_SENSITIVITY_WORKLOADS = ("gcc", "em3d", "apsi", "art")


def run_sensitivity_suite(*, quick: bool = False, workers: int = 1) -> BenchEntry:
    """Time the timing-uncertainty sensitivity sweep (jitter path included).

    Every grid point carries at least one jittered or knob-perturbed MCD
    simulation, so this suite doubles as the performance guard for the
    jittered fast-forward path.
    """
    window, warmup = (QUICK_WINDOW, QUICK_WARMUP) if quick else (4_000, 12_000)
    names = QUICK_SENSITIVITY_WORKLOADS if quick else FULL_SENSITIVITY_WORKLOADS
    profiles = tuple(get_workload(name) for name in names)
    grids = dict(QUICK_GRIDS if quick else FULL_GRIDS)
    parameters = {
        "quick": quick,
        "window": window,
        "warmup": warmup,
        "workloads": list(names),
        "search_mode": "factored",
        **{axis: list(values) for axis, values in grids.items()},
    }

    engine = _fresh_engine(workers)
    calibration = calibrate()
    report, seconds = timed(
        sensitivity_sweep,
        profiles,
        window=window,
        warmup=warmup,
        engine=engine,
        **grids,
    )
    runs = [
        BenchRun(
            name="sensitivity_sweep",
            seconds=seconds,
            simulations=engine.stats.simulations,
            cache_hits=engine.stats.cache_hits,
            extra={"grid_points": len(report.points)},
        )
    ]
    return _entry("sensitivity", parameters, runs, calibration)


#: Scenario subset for the scenarios suite: a controller-adversarial
#: capacity wave and a queue-tracking stressor (quick); a spread over all
#: four scenario families (full).
QUICK_SCENARIO_NAMES = ("adv-period-1x-interval", "adv-hysteresis-outside-queue")
FULL_SCENARIO_NAMES = (
    "arch-pointer-chasing",
    "adv-period-1x-interval",
    "adv-period-4x-interval",
    "adv-hysteresis-outside-queue",
    "paper-apsi-capacity",
    "ramp-capacity-sawtooth",
)

#: Full-size windows of the scenarios suite; the quick window/warmup pair is
#: imported from the campaign CLI so the bench times the same run
#: parameterisation the CI smoke matrix uses (over the smaller
#: QUICK_SCENARIO_NAMES set — the bench guards the hot path, not all 16
#: smoke scenarios).
FULL_SCENARIO_WINDOW, FULL_SCENARIO_WARMUP = (6_000, 12_000)


def run_scenarios_suite(*, quick: bool = False, workers: int = 1) -> BenchEntry:
    """Time a scenario campaign matrix (scenario set x three machine styles).

    Guards the scenario subsystem's end-to-end path: spec materialisation,
    the engine-batched three-machine expansion, and the controller-behaviour
    accounting of the matrix rows.
    """
    from repro.scenarios import get_scenario, run_campaign
    from repro.scenarios.cli import (
        QUICK_WARMUP as QUICK_SCENARIO_WARMUP,
        QUICK_WINDOW as QUICK_SCENARIO_WINDOW,
    )

    window, warmup = (
        (QUICK_SCENARIO_WINDOW, QUICK_SCENARIO_WARMUP)
        if quick
        else (FULL_SCENARIO_WINDOW, FULL_SCENARIO_WARMUP)
    )
    names = QUICK_SCENARIO_NAMES if quick else FULL_SCENARIO_NAMES
    scenarios = [get_scenario(name) for name in names]
    parameters = {
        "quick": quick,
        "window": window,
        "warmup": warmup,
        "scenarios": list(names),
        "search_mode": "factored",
    }

    engine = _fresh_engine(workers)
    calibration = calibrate()
    result, seconds = timed(
        run_campaign,
        scenarios,
        search_mode="factored",
        window=window,
        warmup=warmup,
        engine=engine,
    )
    runs = [
        BenchRun(
            name="scenario_campaign_matrix",
            seconds=seconds,
            simulations=engine.stats.simulations,
            cache_hits=engine.stats.cache_hits,
            extra={"rows": len(result.rows)},
        )
    ]
    return _entry("scenarios", parameters, runs, calibration)


def run_fabric_suite(*, quick: bool = False, workers: int = 1) -> BenchEntry:
    """Time the distributed campaign fabric end to end.

    Shards a campaign's planned job list across two simulated workers with
    private disk caches, merges the worker stores, then resumes the campaign
    against the merged store — the exact shard → merge → resume workflow
    ``docs/OPERATIONS.md`` prescribes.  Guards the fabric's overheads on top
    of raw simulation: fingerprint sharding, versioned cache writes, merge
    validation, and the cached resume pass that should be dominated by disk
    reads rather than simulation.
    """
    import tempfile
    from pathlib import Path

    from repro.engine import ResultCache, parse_shard, run_shard
    from repro.scenarios import campaign_jobs, get_scenario, run_campaign
    from repro.scenarios.cli import (
        QUICK_WARMUP as QUICK_SCENARIO_WARMUP,
        QUICK_WINDOW as QUICK_SCENARIO_WINDOW,
    )

    window, warmup = (
        (QUICK_SCENARIO_WINDOW, QUICK_SCENARIO_WARMUP)
        if quick
        else (FULL_SCENARIO_WINDOW, FULL_SCENARIO_WARMUP)
    )
    names = QUICK_SCENARIO_NAMES
    scenarios = [get_scenario(name) for name in names]
    shard_count = 2
    parameters = {
        "quick": quick,
        "window": window,
        "warmup": warmup,
        "scenarios": list(names),
        "search_mode": "factored",
        "shards": shard_count,
    }

    calibration = calibrate()
    runs: list[BenchRun] = []
    with tempfile.TemporaryDirectory(prefix="repro-bench-fabric-") as tmp:
        root = Path(tmp)
        jobs = campaign_jobs(scenarios, search_mode="factored", window=window, warmup=warmup)

        def _run_workers() -> int:
            simulated = 0
            for index in range(shard_count):
                engine = make_engine(workers=workers, cache_dir=root / f"shard{index}")
                report = run_shard(jobs, parse_shard(f"{index}/{shard_count}"), engine)
                simulated += report.simulations
            return simulated

        simulated, seconds = timed(_run_workers)
        runs.append(
            BenchRun(
                name="shard_workers",
                seconds=seconds,
                simulations=simulated,
                extra={"jobs_planned": len(jobs), "shards": shard_count},
            )
        )

        merged = ResultCache(root / "merged")

        def _merge() -> int:
            return sum(merged.merge(root / f"shard{index}").merged for index in range(shard_count))

        entries_merged, seconds = timed(_merge)
        runs.append(
            BenchRun(
                name="merge",
                seconds=seconds,
                extra={"entries_merged": entries_merged},
            )
        )

        engine = make_engine(workers=workers, cache_dir=root / "merged")
        result, seconds = timed(
            run_campaign,
            scenarios,
            search_mode="factored",
            window=window,
            warmup=warmup,
            engine=engine,
        )
        runs.append(
            BenchRun(
                name="resume_campaign",
                seconds=seconds,
                simulations=engine.stats.simulations,
                cache_hits=engine.stats.cache_hits,
                extra={"rows": len(result.rows)},
            )
        )
    return _entry("fabric", parameters, runs, calibration)


#: Registry of available suites.
SUITES: dict[str, Callable[..., BenchEntry]] = {
    "energy": run_energy_suite,
    "fabric": run_fabric_suite,
    "fig2": run_fig2_suite,
    "fig6": run_fig6_suite,
    "scenarios": run_scenarios_suite,
    "sweep": run_sweep_suite,
    "sensitivity": run_sensitivity_suite,
}


def run_suite(name: str, *, quick: bool = False, workers: int = 1) -> BenchEntry:
    """Run one registered suite by name."""
    try:
        suite = SUITES[name]
    except KeyError:
        raise ValueError(f"unknown bench suite {name!r}; available: {sorted(SUITES)}")
    return suite(quick=quick, workers=workers)
