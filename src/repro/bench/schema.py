"""The JSON schema of one benchmark entry.

A ``BENCH_<suite>.json`` file maps experiment names to lists of entries
(oldest first).  Each entry is one invocation of a suite and carries:

* ``schema`` — integer schema version (:data:`SCHEMA_VERSION`),
* ``suite`` — the suite name (``fig2`` / ``fig6`` / ``sweep`` / ...),
* ``timestamp`` — ISO-8601 local time,
* ``environment`` — :class:`~repro.bench.environment.EnvironmentFingerprint`,
* ``calibration_seconds`` — host-speed calibration for the normalised metric,
* ``parameters`` — the knobs the suite ran with (window, warm-up, workloads,
  search mode, executor workers) so entries are only compared like-for-like,
* ``runs`` — one :class:`BenchRun` per timed measurement.

``validate_entry`` checks a plain dict against this schema and is used both
by the loader (defensively) and by the test suite's round-trip checks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.bench.environment import EnvironmentFingerprint

#: Version of the on-disk entry layout.  Bump on incompatible changes.
SCHEMA_VERSION = 1


@dataclass(slots=True)
class BenchRun:
    """One timed measurement inside an entry."""

    name: str
    seconds: float
    #: Seconds divided by the entry's calibration time — a hardware-normalised
    #: cost in "calibration units" comparable across (reasonably similar)
    #: hosts.
    normalized: float = 0.0
    simulations: int = 0
    cache_hits: int = 0
    extra: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """Plain-data rendering for JSON storage."""
        payload: dict[str, Any] = {
            "name": self.name,
            "seconds": round(self.seconds, 4),
            "normalized": round(self.normalized, 4),
            "simulations": self.simulations,
            "cache_hits": self.cache_hits,
        }
        if self.extra:
            payload["extra"] = dict(self.extra)
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BenchRun":
        """Rebuild a run from :meth:`to_dict` output."""
        return cls(
            name=str(data["name"]),
            seconds=float(data["seconds"]),
            normalized=float(data.get("normalized", 0.0)),
            simulations=int(data.get("simulations", 0)),
            cache_hits=int(data.get("cache_hits", 0)),
            extra=dict(data.get("extra", {})),
        )


@dataclass(slots=True)
class BenchEntry:
    """One suite invocation: environment, parameters and timed runs."""

    suite: str
    environment: EnvironmentFingerprint
    calibration_seconds: float
    parameters: dict[str, Any] = field(default_factory=dict)
    runs: list[BenchRun] = field(default_factory=list)
    timestamp: str = ""
    schema: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        if not self.timestamp:
            self.timestamp = time.strftime("%Y-%m-%dT%H:%M:%S%z")

    @property
    def total_seconds(self) -> float:
        """Summed wall-clock of every run in the entry."""
        return sum(run.seconds for run in self.runs)

    def run_named(self, name: str) -> BenchRun | None:
        """The run called *name*, or ``None``."""
        for run in self.runs:
            if run.name == name:
                return run
        return None

    def to_dict(self) -> dict[str, Any]:
        """Plain-data rendering for JSON storage."""
        return {
            "schema": self.schema,
            "suite": self.suite,
            "timestamp": self.timestamp,
            "environment": self.environment.to_dict(),
            "calibration_seconds": round(self.calibration_seconds, 6),
            "parameters": dict(self.parameters),
            "runs": [run.to_dict() for run in self.runs],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BenchEntry":
        """Rebuild an entry from :meth:`to_dict` output (validating it)."""
        validate_entry(data)
        return cls(
            suite=str(data["suite"]),
            environment=EnvironmentFingerprint.from_dict(data["environment"]),
            calibration_seconds=float(data["calibration_seconds"]),
            parameters=dict(data.get("parameters", {})),
            runs=[BenchRun.from_dict(run) for run in data.get("runs", [])],
            timestamp=str(data["timestamp"]),
            schema=int(data["schema"]),
        )


def validate_entry(data: Mapping[str, Any]) -> None:
    """Raise ``ValueError`` if *data* does not look like a benchmark entry."""
    if not isinstance(data, Mapping):
        raise ValueError(f"benchmark entry must be a mapping, got {type(data).__name__}")
    required = ("schema", "suite", "timestamp", "environment", "calibration_seconds", "runs")
    missing = [key for key in required if key not in data]
    if missing:
        raise ValueError(f"benchmark entry missing keys: {missing}")
    if int(data["schema"]) > SCHEMA_VERSION:
        raise ValueError(
            f"benchmark entry schema {data['schema']} is newer than supported "
            f"({SCHEMA_VERSION})"
        )
    if not isinstance(data["runs"], Sequence) or isinstance(data["runs"], (str, bytes)):
        raise ValueError("benchmark entry 'runs' must be a sequence")
    for run in data["runs"]:
        if not isinstance(run, Mapping) or "name" not in run or "seconds" not in run:
            raise ValueError(f"malformed benchmark run: {run!r}")
        if float(run["seconds"]) < 0:
            raise ValueError(f"benchmark run has negative seconds: {run!r}")
    EnvironmentFingerprint.from_dict(data["environment"])
