"""Module entry point for ``python -m repro.bench``.

Dispatches to :mod:`repro.bench.cli`: run the registered benchmark suites
(``--suite``/``--quick``), record ``BENCH_<suite>.json`` history entries,
check fresh timings against the committed baseline (``--check``,
``--strict``, ``--tolerance``) and maintain that baseline
(``--update-baseline``).
"""

from __future__ import annotations

import sys

from repro.bench.cli import main

if __name__ == "__main__":
    sys.exit(main())
