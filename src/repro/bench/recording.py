"""Persistence of benchmark history: ``BENCH_<suite>.json`` files.

Each file maps experiment names to entry lists (oldest first, bounded by
:data:`BENCH_HISTORY_LIMIT`).  The sweep suite keeps using the historical
``BENCH_sweep.json`` name so the performance trajectory started by earlier
PRs continues in one place.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from repro.bench.schema import BenchEntry

#: Recorded entries kept per experiment (oldest dropped first).
BENCH_HISTORY_LIMIT = 50

#: Suites whose history rides in another suite's file.  The sensitivity,
#: energy and scenarios suites record into the historical ``BENCH_sweep.json``
#: trajectory (each under its own experiment key), keeping all sweep-layer
#: timings in one place.
SUITE_FILE_ALIASES = {"sensitivity": "sweep", "energy": "sweep", "scenarios": "sweep"}


def default_output_dir() -> Path:
    """The directory BENCH files live in: the enclosing repository root.

    Walks upward from the current directory looking for ``pyproject.toml``;
    falls back to the current directory (so the CLI still works from an
    installed package run outside the repo).  ``REPRO_BENCH_DIR`` overrides.
    """
    override = os.environ.get("REPRO_BENCH_DIR")
    if override:
        return Path(override)
    probe = Path.cwd().resolve()
    for candidate in (probe, *probe.parents):
        if (candidate / "pyproject.toml").exists():
            return candidate
    return probe


def bench_file_for_suite(suite: str, output_dir: Path | None = None) -> Path:
    """Path of the history file for *suite* (alias-aware)."""
    base = output_dir if output_dir is not None else default_output_dir()
    return base / f"BENCH_{SUITE_FILE_ALIASES.get(suite, suite)}.json"


def load_history(path: Path) -> dict[str, list[dict[str, Any]]]:
    """Load a BENCH file; tolerate absence and corruption (returns ``{}``)."""
    if not path.exists():
        return {}
    try:
        data = json.loads(path.read_text())
    except ValueError:
        return {}
    if not isinstance(data, dict):
        return {}
    return data


def append_entry(
    path: Path,
    entry: BenchEntry | dict[str, Any],
    *,
    experiment: str | None = None,
    limit: int = BENCH_HISTORY_LIMIT,
) -> None:
    """Append *entry* under *experiment* (default: the entry's suite name)."""
    payload = entry.to_dict() if isinstance(entry, BenchEntry) else dict(entry)
    key = experiment if experiment is not None else str(payload.get("suite", "default"))
    data = load_history(path)
    history = data.setdefault(key, [])
    history.append(payload)
    del history[:-limit]
    path.write_text(json.dumps(data, indent=2) + "\n")


def latest_entry(path: Path, experiment: str) -> BenchEntry | None:
    """The newest schema-valid entry recorded under *experiment*, if any."""
    history = load_history(path).get(experiment, [])
    for payload in reversed(history):
        try:
            return BenchEntry.from_dict(payload)
        except (ValueError, KeyError, TypeError):
            continue
    return None
