"""Environment fingerprinting for benchmark entries.

Wall-clock numbers are only comparable between runs on equivalent hardware
and interpreters.  Every benchmark entry therefore embeds an
:class:`EnvironmentFingerprint`; the regression checker compares raw seconds
only when the fingerprints' :meth:`~EnvironmentFingerprint.comparable_key`
match, and falls back to the calibration-normalised metric otherwise.

The fingerprint is deliberately stable: collecting it twice in the same
process (or across processes on the same machine) yields the same value.
"""

from __future__ import annotations

import os
import platform
from dataclasses import asdict, dataclass, fields
from typing import Any, Mapping


def _cpu_model() -> str:
    """Best-effort CPU model string (stable on a given machine)."""
    try:
        with open("/proc/cpuinfo", "r", encoding="utf-8") as handle:
            for line in handle:
                if line.lower().startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return platform.processor() or platform.machine() or "unknown"


@dataclass(frozen=True, slots=True)
class EnvironmentFingerprint:
    """Identity of the machine and interpreter a benchmark ran under."""

    python_version: str
    python_implementation: str
    system: str
    machine: str
    cpu_model: str
    cpu_count: int

    @classmethod
    def collect(cls) -> "EnvironmentFingerprint":
        """Fingerprint the current process's environment."""
        return cls(
            python_version=platform.python_version(),
            python_implementation=platform.python_implementation(),
            system=platform.system(),
            machine=platform.machine(),
            cpu_model=_cpu_model(),
            cpu_count=os.cpu_count() or 1,
        )

    def comparable_key(self) -> tuple[str, ...]:
        """Key under which raw wall-clock seconds are comparable."""
        return (
            self.python_version,
            self.python_implementation,
            self.system,
            self.machine,
            self.cpu_model,
            str(self.cpu_count),
        )

    def is_comparable_to(self, other: "EnvironmentFingerprint") -> bool:
        """True when raw seconds from *other* can be compared to ours."""
        return self.comparable_key() == other.comparable_key()

    def to_dict(self) -> dict[str, Any]:
        """Plain-data rendering for JSON storage."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EnvironmentFingerprint":
        """Rebuild a fingerprint from :meth:`to_dict` output."""
        known = {spec.name for spec in fields(cls)}
        payload = {key: data[key] for key in known if key in data}
        missing = known - set(payload)
        if missing:
            raise ValueError(f"environment fingerprint missing fields: {sorted(missing)}")
        return cls(**payload)
