"""Per-domain clock with optional jitter and run-time frequency changes."""

from __future__ import annotations

import random
import zlib

from repro.clocks.time import Picoseconds, ghz_to_period_ps, period_ps_to_ghz


class DomainClock:
    """An independently clocked domain's clock.

    The clock produces a monotonically increasing sequence of edges.  Edges
    are generated lazily: the simulator asks for :attr:`next_edge` and then
    calls :meth:`advance` once it has performed the work of that cycle.

    The frequency may be changed at any time with :meth:`set_frequency`; the
    new period takes effect from the *next* edge onward, which models a PLL
    that re-locks while the domain continues operating (XScale-style, as
    assumed in the paper).

    ``next_edge``, ``period_ps``, ``cycle_count`` and ``jitter_fraction`` are
    plain attributes (not properties): the simulator's main loop reads them
    every iteration, and attribute reads are several times cheaper than
    property calls.  Treat them as read-only outside this class — frequency
    changes must go through :meth:`set_frequency` / :meth:`set_period_ps` and
    edge consumption through :meth:`advance`.

    Parameters
    ----------
    name:
        Human-readable domain name (used in logs and statistics).
    frequency_ghz:
        Initial frequency.
    jitter_fraction:
        Peak-to-peak jitter as a fraction of the period.  Each edge is
        perturbed by a deterministic pseudo-random offset drawn uniformly in
        ``[-jitter/2, +jitter/2]``.  Zero (the default) disables jitter.
    seed:
        Seed for the jitter generator, so runs are reproducible.
    start_time_ps:
        Time of the first edge.
    """

    __slots__ = ("name", "period_ps", "jitter_fraction", "next_edge", "cycle_count", "_rng")

    def __init__(
        self,
        name: str,
        frequency_ghz: float,
        *,
        jitter_fraction: float = 0.0,
        seed: int = 0,
        start_time_ps: Picoseconds = 0,
    ) -> None:
        if jitter_fraction < 0 or jitter_fraction >= 0.5:
            raise ValueError("jitter_fraction must be in [0, 0.5)")
        self.name = name
        self.period_ps = ghz_to_period_ps(frequency_ghz)
        self.jitter_fraction = jitter_fraction
        # crc32, not hash(): str hashing is salted per process, which would
        # make jittered clocks non-reproducible across interpreter runs.
        self._rng = random.Random(seed ^ zlib.crc32(name.encode()))
        self.next_edge: Picoseconds = start_time_ps
        self.cycle_count = 0

    # ------------------------------------------------------------------ API

    @property
    def frequency_ghz(self) -> float:
        """Current frequency in GHz."""
        return period_ps_to_ghz(self.period_ps)

    def set_frequency(self, frequency_ghz: float) -> None:
        """Change the clock frequency, effective from the next edge onward."""
        self.period_ps = ghz_to_period_ps(frequency_ghz)

    def set_period_ps(self, period_ps: Picoseconds) -> None:
        """Change the clock period directly, effective from the next edge."""
        if period_ps <= 0:
            raise ValueError("period must be positive")
        self.period_ps = period_ps

    def advance(self) -> Picoseconds:
        """Consume the current edge and return the time of the following one."""
        self.cycle_count += 1
        step = self.period_ps
        if self.jitter_fraction:
            half = self.jitter_fraction / 2.0
            offset = self._rng.uniform(-half, half)
            step = max(1, int(round(self.period_ps * (1.0 + offset))))
        self.next_edge += step
        return self.next_edge

    def skip_edges(self, count: int) -> None:
        """Consume *count* edges at once without per-edge work.

        Only valid for jitter-free clocks (jittered edges each need their own
        pseudo-random draw to stay reproducible); the quiescent-phase
        fast-forward in the processor uses this to batch idle cycles.
        """
        if count <= 0:
            return
        if self.jitter_fraction:
            raise ValueError("cannot bulk-skip edges on a jittered clock")
        self.cycle_count += count
        self.next_edge += count * self.period_ps

    def edge_at_or_after(self, time_ps: Picoseconds) -> Picoseconds:
        """Return the first edge at or after *time_ps* without advancing.

        The calculation assumes the current period holds from the next edge
        forward, which is exactly the information available to hardware in
        the consuming domain.
        """
        if time_ps <= self.next_edge:
            return self.next_edge
        delta = time_ps - self.next_edge
        cycles = -(-delta // self.period_ps)  # ceiling division
        return self.next_edge + cycles * self.period_ps

    def cycles_to_ps(self, cycles: int) -> Picoseconds:
        """Convert a cycle count at the current frequency to picoseconds."""
        return cycles * self.period_ps

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DomainClock({self.name!r}, {self.frequency_ghz:.3f} GHz, "
            f"next_edge={self.next_edge} ps)"
        )
