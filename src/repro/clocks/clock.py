"""Per-domain clock with optional jitter and run-time frequency changes."""

from __future__ import annotations

import zlib

from repro.clocks.time import Picoseconds, ghz_to_period_ps, period_ps_to_ghz

#: 2**32 — the crc32 output range, used to map per-edge digests onto [0, 1).
_CRC_RANGE = 4294967296.0


class DomainClock:
    """An independently clocked domain's clock.

    The clock produces a monotonically increasing sequence of edges.  Edges
    are generated lazily: the simulator asks for :attr:`next_edge` and then
    calls :meth:`advance` once it has performed the work of that cycle.

    The frequency may be changed at any time with :meth:`set_frequency`; the
    new period takes effect from the *next* edge onward, which models a PLL
    that re-locks while the domain continues operating (XScale-style, as
    assumed in the paper).

    Jitter is a deterministic, *index-addressable* offset stream: the
    perturbation of edge *i* is a pure function of ``(name, seed, i)``
    (crc32-based, like the trace RNGs, so it is identical across interpreter
    invocations and worker processes).  Because no generator state is
    consumed, :meth:`edge_at_or_after` can enumerate the exact future edge
    times :meth:`advance` will later produce, and :meth:`skip_edges` can
    bulk-consume jittered edges and land on precisely the same ``next_edge``
    as the equivalent sequence of individual advances — which is what allows
    the processor's quiescent-phase fast-forward to stay enabled on jittered
    clocks.

    ``next_edge``, ``period_ps``, ``cycle_count`` and ``jitter_fraction`` are
    plain attributes (not properties): the simulator's main loop reads them
    every iteration, and attribute reads are several times cheaper than
    property calls.  Treat them as read-only outside this class — frequency
    changes must go through :meth:`set_frequency` / :meth:`set_period_ps` and
    edge consumption through :meth:`advance`.

    Parameters
    ----------
    name:
        Human-readable domain name (used in logs and statistics).
    frequency_ghz:
        Initial frequency.
    jitter_fraction:
        Peak-to-peak jitter as a fraction of the period.  Each edge is
        perturbed by a deterministic pseudo-random offset drawn uniformly in
        ``[-jitter/2, +jitter/2)``.  Zero (the default) disables jitter.
    seed:
        Seed for the jitter stream, so runs are reproducible.
    start_time_ps:
        Time of the first edge.
    """

    __slots__ = (
        "name",
        "period_ps",
        "jitter_fraction",
        "next_edge",
        "cycle_count",
        "_jitter_key",
    )

    def __init__(
        self,
        name: str,
        frequency_ghz: float,
        *,
        jitter_fraction: float = 0.0,
        seed: int = 0,
        start_time_ps: Picoseconds = 0,
    ) -> None:
        if jitter_fraction < 0 or jitter_fraction >= 0.5:
            raise ValueError("jitter_fraction must be in [0, 0.5)")
        self.name = name
        self.period_ps = ghz_to_period_ps(frequency_ghz)
        self.jitter_fraction = jitter_fraction
        # crc32, not hash(): str hashing is salted per process, which would
        # make jittered clocks non-reproducible across interpreter runs.
        self._jitter_key = (seed ^ zlib.crc32(name.encode())) & 0xFFFFFFFF
        self.next_edge: Picoseconds = start_time_ps
        self.cycle_count = 0

    # ------------------------------------------------------------------ API

    @property
    def frequency_ghz(self) -> float:
        """Current frequency in GHz."""
        return period_ps_to_ghz(self.period_ps)

    def set_frequency(self, frequency_ghz: float) -> None:
        """Change the clock frequency, effective from the next edge onward."""
        self.period_ps = ghz_to_period_ps(frequency_ghz)

    def set_period_ps(self, period_ps: Picoseconds) -> None:
        """Change the clock period directly, effective from the next edge."""
        if period_ps <= 0:
            raise ValueError("period must be positive")
        self.period_ps = period_ps

    def _jitter_step(self, index: int) -> Picoseconds:
        """Jittered step leading to edge *index* (1-based advance count).

        A pure function of ``(name, seed, index)`` and the current period:
        the crc32 digest of the edge index under the clock's key, mapped to a
        uniform offset in ``[-jitter/2, +jitter/2)``.
        """
        draw = zlib.crc32(index.to_bytes(8, "little"), self._jitter_key) / _CRC_RANGE
        offset = (draw - 0.5) * self.jitter_fraction
        return max(1, int(round(self.period_ps * (1.0 + offset))))

    def advance(self) -> Picoseconds:
        """Consume the current edge and return the time of the following one."""
        index = self.cycle_count = self.cycle_count + 1
        if self.jitter_fraction:
            self.next_edge += self._jitter_step(index)
        else:
            self.next_edge += self.period_ps
        return self.next_edge

    def skip_edges(self, count: int) -> None:
        """Consume *count* edges at once without per-edge cycle work.

        Valid on jittered clocks too: the offset stream is index-addressable,
        so the bulk skip reproduces exactly the ``next_edge`` and
        ``cycle_count`` the equivalent sequence of :meth:`advance` calls
        would have produced.  The quiescent-phase fast-forward in the
        processor uses this to batch idle cycles.
        """
        if count <= 0:
            return
        if self.jitter_fraction:
            index = self.cycle_count
            edge = self.next_edge
            step = self._jitter_step
            for offset in range(1, count + 1):
                edge += step(index + offset)
            self.cycle_count = index + count
            self.next_edge = edge
        else:
            self.cycle_count += count
            self.next_edge += count * self.period_ps

    def edge_at_or_after(self, time_ps: Picoseconds) -> Picoseconds:
        """Return the first edge at or after *time_ps* without advancing.

        The calculation assumes the current period holds from the next edge
        forward, which is exactly the information available to hardware in
        the consuming domain.  On a jittered clock the returned time is a
        *true* jittered edge — the exact value a sequence of :meth:`advance`
        calls would produce — never a nominal-period extrapolation.
        """
        edge = self.next_edge
        if time_ps <= edge:
            return edge
        if not self.jitter_fraction:
            delta = time_ps - edge
            cycles = -(-delta // self.period_ps)  # ceiling division
            return edge + cycles * self.period_ps
        index = self.cycle_count
        step = self._jitter_step
        while edge < time_ps:
            index += 1
            edge += step(index)
        return edge

    def edges_before(self, time_ps: Picoseconds) -> int:
        """Number of unconsumed edges strictly before *time_ps*.

        ``skip_edges(edges_before(t))`` consumes exactly the edges a
        one-at-a-time loop would have walked before reaching time *t*;
        :meth:`skip_edges_before` does both in one pass.
        """
        edge = self.next_edge
        if edge >= time_ps:
            return 0
        if not self.jitter_fraction:
            return -(-(time_ps - edge) // self.period_ps)  # ceiling division
        count = 0
        index = self.cycle_count
        step = self._jitter_step
        while edge < time_ps:
            count += 1
            index += 1
            edge += step(index)
        return count

    def skip_edges_before(self, time_ps: Picoseconds) -> int:
        """Consume every unconsumed edge strictly before *time_ps*.

        Equivalent to ``skip_edges(edges_before(time_ps))`` but with a single
        walk of the jitter stream — the fast-forward's batching primitive.
        Returns the number of edges consumed.
        """
        edge = self.next_edge
        if edge >= time_ps:
            return 0
        if not self.jitter_fraction:
            count = -(-(time_ps - edge) // self.period_ps)  # ceiling division
            self.cycle_count += count
            self.next_edge += count * self.period_ps
            return count
        count = 0
        index = self.cycle_count
        step = self._jitter_step
        while edge < time_ps:
            count += 1
            index += 1
            edge += step(index)
        self.cycle_count = index
        self.next_edge = edge
        return count

    def cycles_to_ps(self, cycles: int) -> Picoseconds:
        """Convert a cycle count at the current frequency to picoseconds."""
        return cycles * self.period_ps

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DomainClock({self.name!r}, {self.frequency_ghz:.3f} GHz, "
            f"next_edge={self.next_edge} ps)"
        )
