"""Time units.

The whole simulator uses an integer picosecond time base.  Integer arithmetic
keeps cross-domain event ordering exact and avoids floating-point drift over
long runs, which matters because the synchronisation model compares clock-edge
distances against a fraction of the faster clock's period.
"""

from __future__ import annotations

#: Alias used in signatures for readability; times are plain ints.
Picoseconds = int

PS_PER_NS = 1_000
PS_PER_US = 1_000_000
PS_PER_MS = 1_000_000_000
PS_PER_S = 1_000_000_000_000


def ns_to_ps(nanoseconds: float) -> Picoseconds:
    """Convert nanoseconds to integer picoseconds (rounded)."""
    return int(round(nanoseconds * PS_PER_NS))


def us_to_ps(microseconds: float) -> Picoseconds:
    """Convert microseconds to integer picoseconds (rounded)."""
    return int(round(microseconds * PS_PER_US))


def ps_to_ns(picoseconds: Picoseconds) -> float:
    """Convert picoseconds to nanoseconds."""
    return picoseconds / PS_PER_NS


def ghz_to_period_ps(frequency_ghz: float) -> Picoseconds:
    """Return the clock period in picoseconds for a frequency in GHz."""
    if frequency_ghz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_ghz}")
    return int(round(1000.0 / frequency_ghz))


def period_ps_to_ghz(period_ps: Picoseconds) -> float:
    """Return the frequency in GHz for a clock period in picoseconds."""
    if period_ps <= 0:
        raise ValueError(f"period must be positive, got {period_ps}")
    return 1000.0 / period_ps
