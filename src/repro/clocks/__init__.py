"""Clocking substrate: picosecond time base and per-domain clocks.

Every clock domain in the adaptive MCD processor owns a
:class:`~repro.clocks.clock.DomainClock`.  Clocks tick on integer picosecond
edges, may carry deterministic jitter, and support frequency changes at
arbitrary points in time (the PLL model in :mod:`repro.core.pll` drives
these).
"""

from repro.clocks.time import (
    PS_PER_NS,
    PS_PER_US,
    PS_PER_S,
    Picoseconds,
    ghz_to_period_ps,
    ns_to_ps,
    period_ps_to_ghz,
    ps_to_ns,
    us_to_ps,
)
from repro.clocks.clock import DomainClock

__all__ = [
    "DomainClock",
    "Picoseconds",
    "PS_PER_NS",
    "PS_PER_US",
    "PS_PER_S",
    "ghz_to_period_ps",
    "period_ps_to_ghz",
    "ns_to_ps",
    "ps_to_ns",
    "us_to_ps",
]
