"""Hybrid (gshare + local + metapredictor) branch predictor."""

from __future__ import annotations

from dataclasses import dataclass

from repro.branch.gshare import GsharePredictor
from repro.branch.local import LocalHistoryPredictor
from repro.timing.tables import BranchPredictorGeometry


@dataclass(slots=True)
class PredictorStats:
    """Aggregate prediction counters."""

    predictions: int = 0
    mispredictions: int = 0

    @property
    def accuracy(self) -> float:
        """Fraction of correct predictions (1.0 when nothing was predicted)."""
        if not self.predictions:
            return 1.0
        return 1.0 - self.mispredictions / self.predictions


class HybridPredictor:
    """McFarling-style combining predictor.

    A metapredictor table of two-bit counters (indexed like the gshare
    component) selects, per branch, whether the gshare or the local component
    supplies the prediction.  Both components are always trained; the
    metapredictor is trained toward whichever component was correct when they
    disagree.
    """

    def __init__(self, geometry: BranchPredictorGeometry) -> None:
        self.geometry = geometry
        self._gshare = GsharePredictor(
            geometry.global_history_bits, geometry.gshare_entries
        )
        self._local = LocalHistoryPredictor(
            geometry.local_history_bits,
            geometry.local_bht_entries,
            geometry.local_pht_entries,
        )
        if geometry.meta_entries <= 0 or geometry.meta_entries & (
            geometry.meta_entries - 1
        ):
            raise ValueError("meta_entries must be a power of two")
        # Meta counter >= 2 selects the gshare component.
        self._meta = [2] * geometry.meta_entries
        self._meta_mask = geometry.meta_entries - 1
        self.stats = PredictorStats()

    # ------------------------------------------------------------------ API

    @property
    def gshare(self) -> GsharePredictor:
        """The global-history component."""
        return self._gshare

    @property
    def local(self) -> LocalHistoryPredictor:
        """The local-history component."""
        return self._local

    def _meta_index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._gshare.history) & self._meta_mask

    def predict(self, pc: int) -> bool:
        """Predict the direction of the branch at *pc* (no state change)."""
        if self._meta[self._meta_index(pc)] >= 2:
            return self._gshare.predict(pc)
        return self._local.predict(pc)

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Predict *pc*, then train every component with the real outcome.

        Returns True when the prediction was correct.
        """
        meta_index = self._meta_index(pc)
        gshare_prediction = self._gshare.predict(pc)
        local_prediction = self._local.predict(pc)
        use_gshare = self._meta[meta_index] >= 2
        prediction = gshare_prediction if use_gshare else local_prediction

        # Train the metapredictor only when the components disagree.
        if gshare_prediction != local_prediction:
            counter = self._meta[meta_index]
            if gshare_prediction == taken and counter < 3:
                self._meta[meta_index] = counter + 1
            elif local_prediction == taken and counter > 0:
                self._meta[meta_index] = counter - 1

        self._local.update(pc, taken)
        self._gshare.update(pc, taken)  # also shifts the global history

        correct = prediction == taken
        self.stats.predictions += 1
        if not correct:
            self.stats.mispredictions += 1
        return correct


def build_predictor(geometry: BranchPredictorGeometry) -> HybridPredictor:
    """Construct the hybrid predictor for one front-end configuration."""
    return HybridPredictor(geometry)
