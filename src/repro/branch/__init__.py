"""Branch-prediction substrate.

The front-end domain couples each instruction-cache configuration with a
hybrid branch predictor (McFarling-style): a gshare component, a local-history
component and a metapredictor choosing between them.  Table sizes follow
Tables 2 and 3 of the paper and grow with the instruction-cache
configuration.
"""

from repro.branch.counters import SaturatingCounter
from repro.branch.gshare import GShatePredictorError, GsharePredictor
from repro.branch.local import LocalHistoryPredictor
from repro.branch.hybrid import HybridPredictor, PredictorStats, build_predictor
from repro.branch.btb import BranchTargetBuffer

__all__ = [
    "SaturatingCounter",
    "GsharePredictor",
    "GShatePredictorError",
    "LocalHistoryPredictor",
    "HybridPredictor",
    "PredictorStats",
    "build_predictor",
    "BranchTargetBuffer",
]
