"""Branch target buffer.

Direction prediction is the performance-critical part in the paper's machine
(targets are known once a branch is decoded), but a BTB is included for
completeness: a taken branch whose target misses in the BTB costs one extra
front-end bubble in the fetch model.
"""

from __future__ import annotations


class BranchTargetBuffer:
    """Direct-mapped (optionally set-associative) branch target buffer."""

    def __init__(self, entries: int = 4096, associativity: int = 4) -> None:
        if entries <= 0 or entries % associativity:
            raise ValueError("entries must be a positive multiple of associativity")
        self._sets = entries // associativity
        self._assoc = associativity
        self._table: list[list[tuple[int, int]]] = [[] for _ in range(self._sets)]
        self.hits = 0
        self.misses = 0

    def _index(self, pc: int) -> int:
        return (pc >> 2) % self._sets

    def lookup(self, pc: int) -> int | None:
        """Return the predicted target for *pc*, or ``None`` on a BTB miss."""
        entry_set = self._table[self._index(pc)]
        for position, (tag, target) in enumerate(entry_set):
            if tag == pc:
                if position:
                    del entry_set[position]
                    entry_set.insert(0, (tag, target))
                self.hits += 1
                return target
        self.misses += 1
        return None

    def update(self, pc: int, target: int) -> None:
        """Install or refresh the target for the branch at *pc*."""
        entry_set = self._table[self._index(pc)]
        for position, (tag, _) in enumerate(entry_set):
            if tag == pc:
                del entry_set[position]
                break
        entry_set.insert(0, (pc, target))
        if len(entry_set) > self._assoc:
            entry_set.pop()
