"""Two-bit saturating counters used by every predictor component."""

from __future__ import annotations


class SaturatingCounter:
    """An n-bit saturating counter predicting taken when in the upper half.

    Parameters
    ----------
    bits:
        Counter width in bits (the paper's tables use two-bit counters).
    initial:
        Initial counter value; defaults to weakly not-taken.
    """

    __slots__ = ("_value", "_max")

    def __init__(self, bits: int = 2, initial: int | None = None) -> None:
        if bits < 1:
            raise ValueError("counter needs at least one bit")
        self._max = (1 << bits) - 1
        midpoint = (self._max + 1) // 2
        self._value = midpoint - 1 if initial is None else initial
        if not 0 <= self._value <= self._max:
            raise ValueError(f"initial value {initial} out of range")

    @property
    def value(self) -> int:
        """Current counter value."""
        return self._value

    @property
    def prediction(self) -> bool:
        """True (taken) when the counter is in its upper half."""
        return self._value > self._max // 2

    def update(self, taken: bool) -> None:
        """Train the counter toward the actual outcome."""
        if taken:
            if self._value < self._max:
                self._value += 1
        elif self._value > 0:
            self._value -= 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SaturatingCounter(value={self._value}, max={self._max})"
