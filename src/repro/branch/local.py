"""Local-history predictor component (per-branch pattern histories)."""

from __future__ import annotations


class LocalHistoryPredictor:
    """Two-level local predictor.

    A pattern history table (PHT), indexed by branch PC, holds an
    ``history_bits``-wide local history per branch; the history indexes a
    local branch history table (BHT) of two-bit counters.

    Parameters
    ----------
    history_bits:
        Width of each local history (``hl`` in Tables 2-3).
    bht_entries:
        Number of two-bit counters in the local BHT (``2**history_bits`` in
        the paper's configurations).
    pht_entries:
        Number of per-branch history entries.
    """

    def __init__(self, history_bits: int, bht_entries: int, pht_entries: int) -> None:
        for name, value in (("bht_entries", bht_entries), ("pht_entries", pht_entries)):
            if value <= 0 or value & (value - 1):
                raise ValueError(f"{name} must be a power of two, got {value}")
        if history_bits < 1:
            raise ValueError("history_bits must be >= 1")
        self._history_bits = history_bits
        self._history_mask = (1 << history_bits) - 1
        self._pht = [0] * pht_entries
        self._pht_mask = pht_entries - 1
        self._bht = [1] * bht_entries
        self._bht_mask = bht_entries - 1

    @property
    def pht_entries(self) -> int:
        """Number of per-branch local-history entries."""
        return len(self._pht)

    @property
    def bht_entries(self) -> int:
        """Number of counters in the local BHT."""
        return len(self._bht)

    def _pht_index(self, pc: int) -> int:
        return (pc >> 2) & self._pht_mask

    def predict(self, pc: int) -> bool:
        """Predict the direction of the branch at *pc*."""
        history = self._pht[self._pht_index(pc)]
        return self._bht[history & self._bht_mask] >= 2

    def update(self, pc: int, taken: bool) -> None:
        """Train the counter selected by the branch's local history."""
        pht_index = self._pht_index(pc)
        history = self._pht[pht_index]
        bht_index = history & self._bht_mask
        counter = self._bht[bht_index]
        if taken:
            if counter < 3:
                self._bht[bht_index] = counter + 1
        elif counter > 0:
            self._bht[bht_index] = counter - 1
        self._pht[pht_index] = ((history << 1) | int(taken)) & self._history_mask
