"""gshare global-history predictor component."""

from __future__ import annotations


class GShatePredictorError(ValueError):
    """Raised when a gshare predictor is configured with an invalid size."""


class GsharePredictor:
    """Global-history predictor: XOR of PC and global history indexes a BHT.

    Parameters
    ----------
    history_bits:
        Number of global-history bits (``hg`` in Table 2/3 of the paper).
    table_entries:
        Number of two-bit counters in the branch history table.  Must be a
        power of two and at least ``2**history_bits`` entries are typical.
    """

    def __init__(self, history_bits: int, table_entries: int) -> None:
        if table_entries <= 0 or table_entries & (table_entries - 1):
            raise GShatePredictorError(
                f"gshare table size must be a power of two, got {table_entries}"
            )
        if history_bits < 1:
            raise GShatePredictorError("history_bits must be >= 1")
        self._history_bits = history_bits
        self._history_mask = (1 << history_bits) - 1
        self._index_mask = table_entries - 1
        self._history = 0
        # Two-bit counters stored as plain ints (0..3) for speed.
        self._table = [1] * table_entries

    @property
    def history(self) -> int:
        """Current global-history register value."""
        return self._history

    @property
    def table_entries(self) -> int:
        """Number of counters in the table."""
        return len(self._table)

    def index(self, pc: int) -> int:
        """Table index for *pc* under the current history."""
        return ((pc >> 2) ^ self._history) & self._index_mask

    def predict(self, pc: int) -> bool:
        """Predict the direction of the branch at *pc*."""
        return self._table[self.index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        """Train the indexed counter and shift the global history."""
        index = self.index(pc)
        counter = self._table[index]
        if taken:
            if counter < 3:
                self._table[index] = counter + 1
        elif counter > 0:
            self._table[index] = counter - 1
        self._history = ((self._history << 1) | int(taken)) & self._history_mask
