"""CACTI-companion per-access energy model for cache geometries.

The timing side of the reproduction (:mod:`repro.timing.cacti`) derives
access *times* from a geometry's decode/array/way-select/routing/sense
terms.  This module is its energy twin: the same structural terms, but
integrating switched capacitance instead of critical-path delay, in the
style of the Wattch/CACTI activity-based power models the paper's energy
claims rest on.

The central difference from the timing model is partial activation: an
Accounting Cache access touches only the ways of the partition being
probed.  An A-partition access of a cache configured with ``a_ways`` ways
activates ``a_ways`` ways' worth of sub-banked data array, comparators and
sense amplifiers; the fallback B probe activates the remaining
``associativity - a_ways`` ways.  :func:`cache_access_energy_nj` therefore
takes the number of ways activated, so each adaptive configuration gets a
distinct A-part and A+B access energy from one physical geometry.

Constants are calibration constants (nanojoules unless noted), chosen for
the qualitative relationships an activity-based model must reproduce:
energy grows with activated capacity and associativity, sub-banking cuts
per-access array energy (only one sub-bank per activated way switches its
bitlines), and routing energy grows with the bank count that must be
spanned.  Absolute joules are model outputs, not silicon measurements.
"""

from __future__ import annotations

import math

from repro.timing.cacti import CacheGeometry

# Calibration constants (nanojoules unless noted).
_DECODE_BASE_NJ = 0.006
_DECODE_PER_BIT_NJ = 0.0022
_ARRAY_PER_WAY_NJ = 0.014
_ARRAY_PER_ACTIVE_KB_NJ = 0.009
_TAG_COMPARE_PER_WAY_NJ = 0.011
_WAY_MUX_PER_LEVEL_NJ = 0.004
_ROUTING_PER_SQRT_BANK_NJ = 0.0035
_SENSE_OUTPUT_NJ = 0.020

#: Leakage power per kilobyte of SRAM (milliwatts); the physical array leaks
#: whether or not its ways are in the active A partition.
LEAKAGE_MW_PER_KB = 0.0045


def ways_activated(geometry: CacheGeometry, a_ways: int, *, b_probe: bool) -> int:
    """Number of ways switched by one probe of an Accounting Cache.

    An A access activates the ``a_ways`` MRU ways; the fallback B probe
    activates the remaining ways of the physical array.
    """
    if not 1 <= a_ways <= geometry.associativity:
        raise ValueError(
            f"a_ways must be in [1, {geometry.associativity}], got {a_ways}"
        )
    if b_probe:
        return geometry.associativity - a_ways
    return a_ways


def _decode_energy_nj(geometry: CacheGeometry) -> float:
    rows_per_bank = max(2.0, geometry.num_sets / geometry.sub_banks)
    return _DECODE_BASE_NJ + _DECODE_PER_BIT_NJ * math.log2(rows_per_bank)


def _array_energy_nj(geometry: CacheGeometry, ways: int) -> float:
    # Only one sub-bank per activated way switches its wordline/bitlines;
    # the rest of the way's capacity stays quiescent.
    kb_per_way = geometry.size_kb / geometry.associativity
    banks_per_way = max(1, geometry.sub_banks // geometry.associativity)
    active_kb = ways * kb_per_way / banks_per_way
    return _ARRAY_PER_WAY_NJ * ways + _ARRAY_PER_ACTIVE_KB_NJ * active_kb


def _way_select_energy_nj(ways: int) -> float:
    compare = _TAG_COMPARE_PER_WAY_NJ * ways
    if ways <= 1:
        return compare
    levels = math.ceil(math.log2(ways))
    return compare + _WAY_MUX_PER_LEVEL_NJ * levels


def _routing_energy_nj(geometry: CacheGeometry, ways: int) -> float:
    banks_per_way = max(1, geometry.sub_banks // geometry.associativity)
    reached = max(1, ways * banks_per_way)
    return _ROUTING_PER_SQRT_BANK_NJ * math.sqrt(reached)


def cache_access_energy_nj(geometry: CacheGeometry, ways: int) -> float:
    """Dynamic energy of one probe activating *ways* ways of *geometry*.

    ``ways`` is the partition width being probed (A width for an A access,
    B width for the fallback probe); a probe of zero ways costs nothing.
    """
    if ways < 0 or ways > geometry.associativity:
        raise ValueError(
            f"ways must be in [0, {geometry.associativity}], got {ways}"
        )
    if ways == 0:
        return 0.0
    return (
        _decode_energy_nj(geometry)
        + _array_energy_nj(geometry, ways)
        + _way_select_energy_nj(ways)
        + _routing_energy_nj(geometry, ways)
        + _SENSE_OUTPUT_NJ
    )


def cache_leakage_mw(size_kb: float) -> float:
    """Leakage power (mW) of *size_kb* kilobytes of resident SRAM."""
    if size_kb < 0:
        raise ValueError(f"size_kb must be non-negative, got {size_kb}")
    return LEAKAGE_MW_PER_KB * size_kb
