"""Activity-based energy accounting (the paper's actual objective).

The subsystem has three layers:

* :mod:`repro.energy.cacti` — per-access energy of a cache geometry, the
  energy twin of :mod:`repro.timing.cacti`, with partial activation so each
  adaptive configuration gets distinct A-part and A+B access energies;
* :mod:`repro.energy.params` — per-event energies for the pipeline
  structures, the frequency-voltage table and leakage constants;
* :mod:`repro.energy.model` — :func:`energy_report`, which turns one
  finished :class:`~repro.analysis.metrics.RunResult`'s activity counters
  into an :class:`EnergyReport` (per-structure / per-domain dynamic +
  leakage breakdowns, energy, ED and ED^2 metrics).

Accounting is observation-only by construction: the simulator only ever
*counts* activity; joules are computed afterwards from the counts.
"""

from repro.energy.cacti import (
    LEAKAGE_MW_PER_KB,
    cache_access_energy_nj,
    cache_leakage_mw,
    ways_activated,
)
from repro.energy.model import (
    EnergyReport,
    StructureEnergy,
    ed2p_improvement,
    edp_improvement,
    energy_reduction,
    energy_report,
    energy_reports,
)
from repro.energy.params import (
    DEFAULT_ENERGY_PARAMS,
    FREQUENCY_VOLTAGE_TABLE_GHZ_V,
    NOMINAL_VOLTAGE_V,
    EnergyParams,
    voltage_for_frequency,
    voltage_scale,
)

__all__ = [
    "DEFAULT_ENERGY_PARAMS",
    "EnergyParams",
    "EnergyReport",
    "FREQUENCY_VOLTAGE_TABLE_GHZ_V",
    "LEAKAGE_MW_PER_KB",
    "NOMINAL_VOLTAGE_V",
    "StructureEnergy",
    "cache_access_energy_nj",
    "cache_leakage_mw",
    "ed2p_improvement",
    "edp_improvement",
    "energy_reduction",
    "energy_report",
    "energy_reports",
    "voltage_for_frequency",
    "voltage_scale",
    "ways_activated",
]
