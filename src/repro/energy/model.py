"""Activity-based energy accounting over a finished :class:`RunResult`.

The simulator records *activity* (accesses, dispatches, issues, clock
edges); this module turns that activity into joules after the fact, which
is what makes the accounting observation-only: a run's timing behaviour is
byte-identical whether or not anyone ever computes its energy.

Dynamic energy is Wattch-style: every counted event costs its per-event
energy (cache probes priced by the geometry model in
:mod:`repro.energy.cacti`, everything else by :class:`EnergyParams`),
scaled by ``(V/Vn)**2`` at the voltage the frequency-voltage table assigns
to the average frequency the structure's clock domain actually ran at —
per-domain clock-tree energy is thus the ``V**2 f`` product integrated over
``domain_cycles``.  Leakage integrates per-structure leakage power over the
run's execution time.  The adaptive-control circuitry (Table 4 gate
inventory plus the ILP-tracker timestamp storage) is charged as an
``adaptive_control`` overhead bucket on phase-adaptive runs only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.analysis.hardware_cost import (
    ilp_tracker_storage_bits,
    total_equivalent_gates,
)
from repro.analysis.metrics import RunResult
from repro.analysis.reporting import format_table
from repro.energy.cacti import cache_access_energy_nj, cache_leakage_mw
from repro.energy.params import DEFAULT_ENERGY_PARAMS, EnergyParams, voltage_scale
from repro.timing.cacti import CacheGeometry

#: Clock domain each cache lives in.
_CACHE_DOMAINS = {"l1i": "front_end", "l1d": "load_store", "l2": "load_store"}

#: Fallback physical issue-queue size for the ILP-tracker storage overhead,
#: used only when a result predates the recorded ``structure_entries``.
_DEFAULT_TRACKER_QUEUE_SIZE = 64


@dataclass(slots=True)
class StructureEnergy:
    """Energy attributed to one storage or logic structure."""

    structure: str
    domain: str
    dynamic_nj: float = 0.0
    leakage_nj: float = 0.0

    @property
    def total_nj(self) -> float:
        """Dynamic plus leakage energy (nJ)."""
        return self.dynamic_nj + self.leakage_nj

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form for JSON payloads and digests."""
        return {
            "structure": self.structure,
            "domain": self.domain,
            "dynamic_nj": self.dynamic_nj,
            "leakage_nj": self.leakage_nj,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StructureEnergy":
        """Rebuild from :meth:`to_dict` output."""
        return cls(**data)


@dataclass(slots=True)
class EnergyReport:
    """Per-structure / per-domain energy breakdown of one run."""

    workload: str
    machine: str
    style: str
    phase_adaptive: bool
    committed_instructions: int
    execution_time_ps: int
    structures: list[StructureEnergy] = field(default_factory=list)

    # ------------------------------------------------------------ totals

    @property
    def dynamic_nj(self) -> float:
        """Total dynamic energy (nJ)."""
        return sum(entry.dynamic_nj for entry in self.structures)

    @property
    def leakage_nj(self) -> float:
        """Total leakage energy (nJ)."""
        return sum(entry.leakage_nj for entry in self.structures)

    @property
    def total_nj(self) -> float:
        """Total energy (nJ)."""
        return self.dynamic_nj + self.leakage_nj

    @property
    def energy_joules(self) -> float:
        """Total energy in joules."""
        return self.total_nj * 1e-9

    @property
    def delay_seconds(self) -> float:
        """Execution time in seconds."""
        return self.execution_time_ps * 1e-12

    @property
    def energy_per_instruction_nj(self) -> float:
        """Average energy per committed instruction (nJ)."""
        if not self.committed_instructions:
            return 0.0
        return self.total_nj / self.committed_instructions

    @property
    def edp_js(self) -> float:
        """Energy-delay product (joule-seconds)."""
        return self.energy_joules * self.delay_seconds

    @property
    def ed2p_js2(self) -> float:
        """Energy-delay-squared product (joule-seconds squared)."""
        return self.energy_joules * self.delay_seconds**2

    # ------------------------------------------------------- breakdowns

    def structure(self, name: str) -> StructureEnergy:
        """The named structure's entry (raises ``KeyError`` if absent)."""
        for entry in self.structures:
            if entry.structure == name:
                return entry
        raise KeyError(f"no structure named {name!r} in this report")

    def by_domain(self) -> dict[str, dict[str, float]]:
        """``{domain: {"dynamic_nj": ..., "leakage_nj": ..., "total_nj": ...}}``."""
        domains: dict[str, dict[str, float]] = {}
        for entry in self.structures:
            bucket = domains.setdefault(
                entry.domain, {"dynamic_nj": 0.0, "leakage_nj": 0.0, "total_nj": 0.0}
            )
            bucket["dynamic_nj"] += entry.dynamic_nj
            bucket["leakage_nj"] += entry.leakage_nj
            bucket["total_nj"] += entry.total_nj
        return domains

    # ------------------------------------------------------------- views

    def render(self) -> str:
        """Plain-text per-structure table plus the summary metrics."""
        total = self.total_nj or 1.0
        rows: list[tuple[object, ...]] = [
            (
                entry.structure,
                entry.domain,
                f"{entry.dynamic_nj:.1f}",
                f"{entry.leakage_nj:.1f}",
                f"{entry.total_nj:.1f}",
                f"{entry.total_nj / total * 100:.1f}%",
            )
            for entry in sorted(
                self.structures, key=lambda item: item.total_nj, reverse=True
            )
        ]
        table = format_table(
            ("structure", "domain", "dynamic (nJ)", "leakage (nJ)", "total (nJ)", "share"),
            rows,
        )
        summary = (
            f"total {self.total_nj:.1f} nJ "
            f"({self.dynamic_nj:.1f} dynamic + {self.leakage_nj:.1f} leakage), "
            f"{self.energy_per_instruction_nj:.3f} nJ/instruction, "
            f"ED {self.edp_js:.3e} J*s, ED^2 {self.ed2p_js2:.3e} J*s^2"
        )
        return f"{table}\n{summary}"

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form, losslessly JSON-serialisable."""
        return {
            "workload": self.workload,
            "machine": self.machine,
            "style": self.style,
            "phase_adaptive": self.phase_adaptive,
            "committed_instructions": self.committed_instructions,
            "execution_time_ps": self.execution_time_ps,
            "structures": [entry.to_dict() for entry in self.structures],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EnergyReport":
        """Rebuild a report from :meth:`to_dict` output."""
        payload = dict(data)
        payload["structures"] = [
            StructureEnergy.from_dict(entry) for entry in payload.get("structures", [])
        ]
        return cls(**payload)


# ---------------------------------------------------------------------------
# Computation
# ---------------------------------------------------------------------------


def _domain_frequency_ghz(result: RunResult, domain: str) -> float:
    """Average frequency the domain ran at (GHz), from cycles over time.

    Falls back to the recorded final frequency for degenerate runs (no
    elapsed time or no cycles), and to 1 GHz when even that is missing.
    """
    cycles = result.domain_cycles.get(domain, 0)
    if cycles > 0 and result.execution_time_ps > 0:
        return cycles / result.execution_time_ps * 1e3
    return result.final_frequencies_ghz.get(domain, 1.0)


def _cache_geometry(data: Mapping[str, int]) -> CacheGeometry:
    return CacheGeometry(
        size_kb=int(data["size_kb"]),
        associativity=int(data["associativity"]),
        sub_banks=int(data["sub_banks"]),
        block_bytes=int(data.get("block_bytes", 64)),
    )


def energy_report(
    result: RunResult, *, params: EnergyParams | None = None
) -> EnergyReport:
    """Compute the energy breakdown of *result*.

    Pure arithmetic over the run's recorded activity counters — calling it
    (or not) can never change simulated behaviour.  Results recorded by
    pre-energy versions of the simulator (no activity counters) degrade
    gracefully to clock-tree + whatever counters they do carry.
    """
    p = params if params is not None else DEFAULT_ENERGY_PARAMS
    time_s = result.execution_time_ps * 1e-12
    scales = {
        domain: voltage_scale(_domain_frequency_ghz(result, domain))
        for domain in ("front_end", "integer", "floating_point", "load_store")
    }
    structures: list[StructureEnergy] = []

    def add(structure: str, domain: str, dynamic_nj: float, leakage_mw: float = 0.0) -> None:
        structures.append(
            StructureEnergy(
                structure=structure,
                domain=domain,
                dynamic_nj=dynamic_nj,
                # 1 mW over 1 s is 1e6 nJ.
                leakage_nj=leakage_mw * time_s * 1e6,
            )
        )

    # Caches: each recorded probe width is priced by the geometry model, so
    # every adaptive configuration contributes its own A / A+B access energy.
    for name in ("l1i", "l1d", "l2"):
        domain = _CACHE_DOMAINS[name]
        geometry_data = result.cache_geometries.get(name)
        geometry = _cache_geometry(geometry_data) if geometry_data else None
        dynamic = 0.0
        if geometry is not None:
            profile = result.cache_access_profile.get(name, {})
            dynamic = sum(
                count * cache_access_energy_nj(geometry, int(ways))
                for ways, count in profile.items()
            )
        add(
            {"l1i": "icache", "l1d": "dcache", "l2": "l2"}[name],
            domain,
            dynamic * scales[domain],
            cache_leakage_mw(geometry.size_kb) if geometry is not None else 0.0,
        )

    entries = result.structure_entries
    fe, ls = scales["front_end"], scales["load_store"]

    # Front end.
    add("fetch_decode", "front_end", result.fetched * p.fetch_decode_nj * fe)
    add(
        "branch_predictor",
        "front_end",
        result.branch_predictions * p.predictor_access_nj * fe,
        p.predictor_leakage_mw_per_kb * result.predictor_size_kb,
    )

    # Dispatch / retirement (the ROB is written at dispatch in the front-end
    # domain and read at commit).
    add(
        "rob",
        "front_end",
        (
            result.rob_dispatches * p.rob_write_nj
            + result.committed_instructions * p.rob_commit_nj
        )
        * fe,
        p.rob_leakage_mw_per_entry * entries.get("rob", 0),
    )

    # Issue queues, register files and functional units, per execution domain.
    for prefix, domain in (("int", "integer"), ("fp", "floating_point")):
        scale = scales[domain]
        dispatches = getattr(result, f"{prefix}_queue_dispatches")
        issues = getattr(result, f"{prefix}_queue_issues")
        occupancy_cycles = getattr(result, f"{prefix}_queue_occupancy_cycles")
        add(
            f"{prefix}_queue",
            domain,
            (
                dispatches * p.queue_write_nj
                + occupancy_cycles * p.queue_wakeup_per_entry_cycle_nj
                + issues * p.queue_issue_nj
            )
            * scale,
            p.queue_leakage_mw_per_entry * entries.get(f"{prefix}_queue", 0),
        )
        add(
            f"{prefix}_regfile",
            domain,
            (
                getattr(result, f"{prefix}_regfile_writes") * p.regfile_write_nj
                + getattr(result, f"{prefix}_queue_operand_reads") * p.regfile_read_nj
            )
            * scale,
            p.regfile_leakage_mw_per_entry * entries.get(f"{prefix}_regfile", 0),
        )
        add(
            f"{prefix}_alu",
            domain,
            (
                getattr(result, f"{prefix}_alu_ops") * p.alu_op_nj
                + getattr(result, f"{prefix}_complex_ops") * p.complex_op_nj
            )
            * scale,
        )

    # Load/store queue and off-chip memory.
    searches = result.loads + result.stores + result.loads_forwarded
    add(
        "lsq",
        "load_store",
        (result.lsq_allocations * p.lsq_write_nj + searches * p.lsq_search_nj) * ls,
        p.lsq_leakage_mw_per_entry * entries.get("lsq", 0),
    )
    add("memory", "memory", result.memory_accesses * p.memory_access_nj)

    # Inter-domain synchronisation queues.
    add("sync", "inter_domain", result.sync_transfers * p.sync_transfer_nj)

    # Clock trees: V**2 f integrated over the run, per domain.
    for domain, scale in scales.items():
        cycles = result.domain_cycles.get(domain, 0)
        add(f"clock:{domain}", domain, cycles * p.clock_per_domain_cycle_nj * scale)

    # Adaptive-control overhead: the Table 4 controller gates tick with their
    # structure's domain; the ILP trackers' timestamp storage ticks with the
    # issue domains.  Phase-adaptive runs only — the other machines do not
    # instantiate the control circuitry.
    if result.phase_adaptive:
        controller_gates = total_equivalent_gates()
        dynamic = 0.0
        for domain in ("front_end", "load_store"):
            dynamic += (
                controller_gates
                * result.domain_cycles.get(domain, 0)
                * p.control_gate_cycle_nj
                * scales[domain]
            )
        for prefix, domain in (("int", "integer"), ("fp", "floating_point")):
            # Tracker storage is sized by the recorded physical queue, so
            # this stays in lock-step with what the processor leaks for.
            tracker_bits = ilp_tracker_storage_bits(
                entries.get(f"{prefix}_queue", _DEFAULT_TRACKER_QUEUE_SIZE)
            )
            dynamic += (
                tracker_bits
                * result.domain_cycles.get(domain, 0)
                * p.control_storage_bit_cycle_nj
                * scales[domain]
            )
        add("adaptive_control", "inter_domain", dynamic)

    # Remaining un-itemised core leakage (buses, TLBs, miscellaneous logic).
    add("core_misc", "core", 0.0, p.core_leakage_mw)

    return EnergyReport(
        workload=result.workload,
        machine=result.machine,
        style=result.style,
        phase_adaptive=result.phase_adaptive,
        committed_instructions=result.committed_instructions,
        execution_time_ps=result.execution_time_ps,
        structures=structures,
    )


# ---------------------------------------------------------------------------
# Comparative metrics
# ---------------------------------------------------------------------------


def _as_report(value: RunResult | EnergyReport, params: EnergyParams | None) -> EnergyReport:
    if isinstance(value, EnergyReport):
        return value
    return energy_report(value, params=params)


def energy_reduction(
    baseline: RunResult | EnergyReport,
    candidate: RunResult | EnergyReport,
    *,
    params: EnergyParams | None = None,
) -> float:
    """Fractional energy saved by *candidate* relative to *baseline*.

    Positive means the candidate consumes less energy (the paper's headline
    direction); ``0.25`` is a 25 % reduction.
    """
    base = _as_report(baseline, params)
    cand = _as_report(candidate, params)
    if base.total_nj <= 0:
        raise ValueError("baseline run has non-positive energy")
    return 1.0 - cand.total_nj / base.total_nj


def edp_improvement(
    baseline: RunResult | EnergyReport,
    candidate: RunResult | EnergyReport,
    *,
    params: EnergyParams | None = None,
) -> float:
    """Energy-delay-product improvement (positive = candidate better)."""
    base = _as_report(baseline, params)
    cand = _as_report(candidate, params)
    if cand.edp_js <= 0:
        raise ValueError("candidate run has non-positive energy-delay product")
    return base.edp_js / cand.edp_js - 1.0


def ed2p_improvement(
    baseline: RunResult | EnergyReport,
    candidate: RunResult | EnergyReport,
    *,
    params: EnergyParams | None = None,
) -> float:
    """Energy-delay-squared improvement (positive = candidate better)."""
    base = _as_report(baseline, params)
    cand = _as_report(candidate, params)
    if cand.ed2p_js2 <= 0:
        raise ValueError("candidate run has non-positive ED^2 product")
    return base.ed2p_js2 / cand.ed2p_js2 - 1.0


def energy_reports(
    results: Iterable[RunResult], *, params: EnergyParams | None = None
) -> list[EnergyReport]:
    """Convenience: one report per result, in order."""
    return [energy_report(result, params=params) for result in results]
