"""Energy-model parameters: per-event energies, the frequency-voltage table
and leakage constants.

The per-event energies are Wattch-style activity costs at the nominal supply
voltage: every counted event (a queue write, a register-file read, an ALU
operation, one clock edge of one domain's clock tree) contributes its event
energy scaled by ``(V / V_nominal)**2``, where ``V`` is the supply voltage
the frequency-voltage table assigns to the clock frequency the structure's
domain actually ran at.  Clock-tree energy is therefore the paper's
``V**2 * f`` scaling integrated over the run: ``cycles * E_clock *
(V/Vn)**2`` with ``cycles = f * T``.

All energies are in nanojoules; leakage powers in milliwatts.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Mapping

#: Frequency-voltage operating points (GHz -> volts), in ascending frequency
#: order.  Linear interpolation between points, clamped at the ends; the
#: shape follows the usual DVS curve where voltage headroom grows with
#: target frequency.
FREQUENCY_VOLTAGE_TABLE_GHZ_V: tuple[tuple[float, float], ...] = (
    (0.50, 0.85),
    (1.00, 0.95),
    (1.25, 1.02),
    (1.50, 1.10),
    (1.75, 1.17),
    (2.00, 1.20),
)

#: Nominal supply voltage the per-event energies are specified at.
NOMINAL_VOLTAGE_V = 1.20


def voltage_for_frequency(frequency_ghz: float) -> float:
    """Supply voltage (V) required to run at *frequency_ghz*.

    Piecewise-linear interpolation over :data:`FREQUENCY_VOLTAGE_TABLE_GHZ_V`,
    clamped to the table's first/last voltage outside its frequency range.
    """
    table = FREQUENCY_VOLTAGE_TABLE_GHZ_V
    if frequency_ghz <= table[0][0]:
        return table[0][1]
    if frequency_ghz >= table[-1][0]:
        return table[-1][1]
    for (f_low, v_low), (f_high, v_high) in zip(table, table[1:]):
        if frequency_ghz <= f_high:
            span = (frequency_ghz - f_low) / (f_high - f_low)
            return v_low + span * (v_high - v_low)
    return table[-1][1]  # pragma: no cover - unreachable by construction


def voltage_scale(frequency_ghz: float) -> float:
    """``(V/Vn)**2`` dynamic-energy scale factor at *frequency_ghz*."""
    ratio = voltage_for_frequency(frequency_ghz) / NOMINAL_VOLTAGE_V
    return ratio * ratio


@dataclass(frozen=True, slots=True)
class EnergyParams:
    """Per-event energies (nJ at nominal voltage) and leakage constants (mW).

    The cache access energies are *not* here: they come from the geometry
    model in :mod:`repro.energy.cacti`, which is what gives each adaptive
    configuration its distinct A-part and A+B access energies.
    """

    # Front end.
    fetch_decode_nj: float = 0.050
    predictor_access_nj: float = 0.055

    # Dispatch / retirement.
    rob_write_nj: float = 0.042
    rob_commit_nj: float = 0.030
    regfile_write_nj: float = 0.048
    regfile_read_nj: float = 0.038

    # Issue queues (CAM-style wakeup, tree select, payload read).
    queue_write_nj: float = 0.034
    queue_wakeup_per_entry_cycle_nj: float = 0.0022
    queue_issue_nj: float = 0.046

    # Load/store queue (allocation write + associative search per access).
    lsq_write_nj: float = 0.030
    lsq_search_nj: float = 0.040

    # Execution.
    alu_op_nj: float = 0.110
    complex_op_nj: float = 0.420

    # Off-chip and inter-domain.
    memory_access_nj: float = 9.0
    sync_transfer_nj: float = 0.006

    # Clock trees: one edge of one domain's clock distribution at nominal V.
    clock_per_domain_cycle_nj: float = 0.080

    # Adaptive-control circuitry: per equivalent gate per clock cycle, and
    # per ILP-tracker storage bit per cycle (Table 4 inventory).
    control_gate_cycle_nj: float = 1.5e-6
    control_storage_bit_cycle_nj: float = 0.4e-6

    # Leakage powers (mW) for the non-cache structures; caches leak per KB
    # via :func:`repro.energy.cacti.cache_leakage_mw`.
    rob_leakage_mw_per_entry: float = 0.0035
    lsq_leakage_mw_per_entry: float = 0.0030
    queue_leakage_mw_per_entry: float = 0.0040
    regfile_leakage_mw_per_entry: float = 0.0028
    predictor_leakage_mw_per_kb: float = 0.0045
    core_leakage_mw: float = 1.8

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form (JSON-safe, round-trips via :meth:`from_dict`)."""
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EnergyParams":
        """Rebuild parameters from :meth:`to_dict` output."""
        return cls(**data)


#: Shared default parameter set.
DEFAULT_ENERGY_PARAMS = EnergyParams()
