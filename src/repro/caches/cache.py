"""MRU-ordered set-associative cache."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.caches.mru import MRUSet
from repro.timing.cacti import CacheGeometry


class AccessOutcome(enum.Enum):
    """Where an access was satisfied."""

    HIT_A = "hit_a"
    HIT_B = "hit_b"
    MISS = "miss"


@dataclass(slots=True)
class CacheStats:
    """Aggregate counters over the lifetime of a cache."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    b_hits: int = 0

    @property
    def miss_rate(self) -> float:
        """Fraction of accesses that missed (0.0 when there were no accesses)."""
        if not self.accesses:
            return 0.0
        return self.misses / self.accesses


class SetAssociativeCache:
    """A set-associative cache with exact MRU ordering in every set.

    The cache is a timing/occupancy model only: it tracks which block
    addresses are resident, not their data.

    Parameters
    ----------
    geometry:
        Physical organisation (capacity, associativity, line size).
    name:
        Identifier used in statistics and log output.
    """

    def __init__(self, geometry: CacheGeometry, *, name: str = "cache") -> None:
        self.name = name
        self.geometry = geometry
        self._block_bytes = geometry.block_bytes
        self._num_sets = geometry.num_sets
        self._sets = [MRUSet(geometry.associativity) for _ in range(self._num_sets)]
        self.stats = CacheStats()

    # ------------------------------------------------------------------ API

    @property
    def num_sets(self) -> int:
        """Number of sets in the cache."""
        return self._num_sets

    @property
    def ways(self) -> int:
        """Physical associativity of the cache."""
        return self.geometry.associativity

    def block_address(self, address: int) -> int:
        """Return the block-aligned address containing *address*."""
        return address - (address % self._block_bytes)

    def set_index(self, address: int) -> int:
        """Return the set index for *address*."""
        return (address // self._block_bytes) % self._num_sets

    def tag(self, address: int) -> int:
        """Return the tag for *address*."""
        return address // (self._block_bytes * self._num_sets)

    def lookup(self, address: int) -> int:
        """Access *address*; return the block's previous MRU position (-1 on miss)."""
        # One combined block/index/tag computation: this is the innermost
        # operation of every cache access, so the separate set_index()/tag()
        # helpers (two extra calls and divisions) are folded in here.
        block = address // self._block_bytes
        num_sets = self._num_sets
        position = self._sets[block % num_sets].access(block // num_sets)
        stats = self.stats
        stats.accesses += 1
        if position < 0:
            stats.misses += 1
        else:
            stats.hits += 1
        return position

    def probe(self, address: int) -> int:
        """Return the MRU position of *address* without touching recency."""
        index = self.set_index(address)
        return self._sets[index].probe(self.tag(address))

    def contains(self, address: int) -> bool:
        """Return True if the block holding *address* is resident."""
        return self.probe(address) >= 0

    def invalidate(self, address: int) -> bool:
        """Invalidate the block holding *address*; return True if present."""
        index = self.set_index(address)
        return self._sets[index].invalidate(self.tag(address))

    def flush(self) -> None:
        """Invalidate the entire cache."""
        for mru_set in self._sets:
            mru_set.flush()

    def resident_blocks(self) -> int:
        """Total number of valid blocks in the cache."""
        return sum(s.occupancy for s in self._sets)
