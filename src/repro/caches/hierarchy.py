"""Load/store-domain cache hierarchy: L1-D + unified L2 + main memory.

The L1 data cache and the L2 are resized together (by ways) and always run at
the same frequency — the load/store domain clock.  Latencies are expressed in
load/store-domain cycles and depend on the active configuration (Table 5 of
the paper); the hierarchy converts them to absolute picosecond completion
times using the period supplied by the caller, so the same object serves both
the MCD machine (whose period changes over time) and the synchronous
baseline.

Instruction-cache misses from the front end also probe the unified L2 through
:meth:`CacheHierarchy.access_l2_for_instruction`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.caches.accounting import AccountingCache
from repro.caches.cache import AccessOutcome
from repro.caches.memory import MainMemory
from repro.clocks.time import Picoseconds
from repro.timing.tables import ADAPTIVE_DCACHE_CONFIGS, DCacheL2Config


@dataclass(slots=True)
class MemoryAccessResult:
    """Outcome of one data access to the hierarchy."""

    completion_ps: Picoseconds
    l1_outcome: AccessOutcome
    l2_outcome: AccessOutcome | None
    went_to_memory: bool

    @property
    def latency_ps(self) -> Picoseconds:
        """Convenience alias (completion minus request time is tracked by caller)."""
        return self.completion_ps


@dataclass(slots=True)
class HierarchyStats:
    """Aggregate counters over a run."""

    loads: int = 0
    stores: int = 0
    l1_hits_a: int = 0
    l1_hits_b: int = 0
    l1_misses: int = 0
    l2_hits_a: int = 0
    l2_hits_b: int = 0
    l2_misses: int = 0
    instruction_l2_accesses: int = 0


class CacheHierarchy:
    """The load/store domain's resizable L1-D / L2 pair plus main memory.

    Parameters
    ----------
    config:
        Initial :class:`~repro.timing.tables.DCacheL2Config`.
    b_enabled:
        Whether the B partitions are accessible (phase-adaptive MCD mode) or
        skipped (whole-program and synchronous modes).
    memory:
        Main-memory model; a default one is created if not supplied.
    """

    def __init__(
        self,
        config: DCacheL2Config | None = None,
        *,
        b_enabled: bool = True,
        memory: MainMemory | None = None,
    ) -> None:
        base = ADAPTIVE_DCACHE_CONFIGS[-1]
        self.l1d = AccountingCache(base.l1, a_ways=1, b_enabled=b_enabled, name="L1D")
        self.l2 = AccountingCache(base.l2, a_ways=1, b_enabled=b_enabled, name="L2")
        self.memory = memory if memory is not None else MainMemory()
        self.stats = HierarchyStats()
        self._config = config if config is not None else ADAPTIVE_DCACHE_CONFIGS[0]
        self._b_enabled = b_enabled
        self.apply_config(self._config)

    # ------------------------------------------------------------------ API

    @property
    def config(self) -> DCacheL2Config:
        """Currently applied configuration."""
        return self._config

    @property
    def b_enabled(self) -> bool:
        """True when the B partitions are accessible."""
        return self._b_enabled

    def apply_config(self, config: DCacheL2Config) -> None:
        """Repartition the L1-D and L2 according to *config*."""
        self._config = config
        self.l1d.set_a_ways(config.ways)
        self.l2.set_a_ways(config.ways)
        has_b = self._b_enabled and config.l1_latency[1] is not None
        self.l1d.set_b_enabled(has_b)
        has_b_l2 = self._b_enabled and config.l2_latency[1] is not None
        self.l2.set_b_enabled(has_b_l2)

    def set_b_enabled(self, enabled: bool) -> None:
        """Globally enable or disable B-partition accesses."""
        self._b_enabled = enabled
        self.apply_config(self._config)

    def reset_statistics(self) -> None:
        """Zero every counter while keeping cache contents (post-warm-up)."""
        self.stats = HierarchyStats()
        for cache in (self.l1d, self.l2):
            cache.reset_interval()
            cache.stats.accesses = 0
            cache.stats.hits = 0
            cache.stats.misses = 0
            cache.stats.b_hits = 0
            cache.lifetime_a_hits = 0
            cache.lifetime_b_hits = 0
            cache.lifetime_misses = 0
            cache.reset_access_profile()

    # -------------------------------------------------------------- accesses

    def access_data(
        self,
        address: int,
        *,
        is_store: bool,
        now_ps: Picoseconds,
        period_ps: Picoseconds,
    ) -> MemoryAccessResult:
        """Access the data hierarchy and return when the data is available."""
        if is_store:
            self.stats.stores += 1
        else:
            self.stats.loads += 1

        l1_a, l1_b = self._config.l1_latency
        l2_a, l2_b = self._config.l2_latency

        l1_outcome = self.l1d.access(address)
        completion = now_ps + l1_a * period_ps
        if l1_outcome is AccessOutcome.HIT_A:
            self.stats.l1_hits_a += 1
            return MemoryAccessResult(completion, l1_outcome, None, False)
        if l1_outcome is AccessOutcome.HIT_B:
            self.stats.l1_hits_b += 1
            completion += (l1_b or 0) * period_ps
            return MemoryAccessResult(completion, l1_outcome, None, False)

        # L1 miss: the full A (+B) probe time was spent before going below.
        self.stats.l1_misses += 1
        if self.l1d.b_enabled and l1_b is not None:
            completion += l1_b * period_ps

        l2_outcome = self.l2.access(address)
        completion += l2_a * period_ps
        if l2_outcome is AccessOutcome.HIT_A:
            self.stats.l2_hits_a += 1
            return MemoryAccessResult(completion, l1_outcome, l2_outcome, False)
        if l2_outcome is AccessOutcome.HIT_B:
            self.stats.l2_hits_b += 1
            completion += (l2_b or 0) * period_ps
            return MemoryAccessResult(completion, l1_outcome, l2_outcome, False)

        self.stats.l2_misses += 1
        if self.l2.b_enabled and l2_b is not None:
            completion += l2_b * period_ps
        completion = self.memory.access(
            address, self.l2.geometry.block_bytes, completion
        )
        return MemoryAccessResult(completion, l1_outcome, l2_outcome, True)

    def access_l2_for_instruction(
        self, address: int, *, now_ps: Picoseconds, period_ps: Picoseconds
    ) -> Picoseconds:
        """Service an instruction-cache miss from the unified L2 / memory.

        Returns the absolute time at which the instruction line is available
        to the front end (before cross-domain synchronisation back).
        """
        self.stats.instruction_l2_accesses += 1
        l2_a, l2_b = self._config.l2_latency
        outcome = self.l2.access(address)
        completion = now_ps + l2_a * period_ps
        if outcome is AccessOutcome.HIT_A:
            self.stats.l2_hits_a += 1
            return completion
        if outcome is AccessOutcome.HIT_B:
            self.stats.l2_hits_b += 1
            return completion + (l2_b or 0) * period_ps
        self.stats.l2_misses += 1
        if self.l2.b_enabled and l2_b is not None:
            completion += l2_b * period_ps
        return self.memory.access(address, self.l2.geometry.block_bytes, completion)
