"""A single cache set maintaining full most-recently-used (MRU) ordering.

The Accounting Cache (Section 3.1 of the paper) relies on every set keeping
its blocks in exact MRU order.  With true-LRU replacement this ordering has
the *stack property*: an access hits in a cache of ``a`` ways if and only if
the block's MRU position is smaller than ``a``.  Counting hits per MRU
position therefore lets the controller reconstruct hits and misses for every
possible A/B partitioning from a single pass, with no exploration.
"""

from __future__ import annotations


class MRUSet:
    """One set of an MRU-ordered set-associative cache.

    Parameters
    ----------
    ways:
        Total number of ways (the physical capacity of the set).
    """

    __slots__ = ("_ways", "_blocks")

    def __init__(self, ways: int) -> None:
        if ways < 1:
            raise ValueError("a cache set needs at least one way")
        self._ways = ways
        self._blocks: list[int] = []

    @property
    def ways(self) -> int:
        """Physical number of ways in the set."""
        return self._ways

    @property
    def occupancy(self) -> int:
        """Number of valid blocks currently in the set."""
        return len(self._blocks)

    def tags_in_mru_order(self) -> tuple[int, ...]:
        """Return the resident tags from most to least recently used."""
        return tuple(self._blocks)

    def access(self, tag: int) -> int:
        """Access *tag*, updating recency, and return its previous MRU position.

        Returns the zero-based MRU position the block occupied before the
        access, or ``-1`` on a miss.  On a miss the block is installed as MRU
        and, if the set is full, the LRU block is evicted.
        """
        blocks = self._blocks
        try:
            position = blocks.index(tag)
        except ValueError:
            if len(blocks) >= self._ways:
                blocks.pop()
            blocks.insert(0, tag)
            return -1
        if position:
            del blocks[position]
            blocks.insert(0, tag)
        return position

    def probe(self, tag: int) -> int:
        """Return the MRU position of *tag* without updating recency (-1 if absent)."""
        try:
            return self._blocks.index(tag)
        except ValueError:
            return -1

    def invalidate(self, tag: int) -> bool:
        """Remove *tag* from the set; return True if it was present."""
        try:
            self._blocks.remove(tag)
        except ValueError:
            return False
        return True

    def flush(self) -> None:
        """Invalidate every block in the set."""
        self._blocks.clear()
