"""The Accounting Cache (Dropsho et al.), used for all three caches.

An Accounting Cache is physically a full-size set-associative cache whose
ways are partitioned into an *A* partition (the first ``a_ways`` MRU
positions) and a *B* partition (the rest).  The A partition is accessed
first; on an A miss a second access probes the B partition and the blocks are
swapped (which the MRU ordering captures implicitly).  Because every set
keeps exact MRU ordering, simple per-MRU-position hit counters are enough to
reconstruct the number of A hits, B hits and misses that *any* partitioning
would have experienced over an interval — the property the phase-adaptive
controller exploits to avoid exploring configurations online.

Two operating modes are supported:

* ``b_enabled=True`` — the adaptive MCD machine: an A miss falls back to the
  B partition before going to the next level.
* ``b_enabled=False`` — the fully synchronous machine and the whole-program
  adaptive machine: the cache holds only ``a_ways`` ways; an A miss goes
  straight to the next level.  (The stack property of LRU makes the full-size
  array an exact model of the truncated cache.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.caches.cache import AccessOutcome, SetAssociativeCache
from repro.timing.cacti import CacheGeometry


@dataclass(slots=True)
class CacheIntervalStats:
    """Counters accumulated over one adaptation interval."""

    ways: int
    accesses: int = 0
    misses: int = 0
    hits_by_mru_position: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.hits_by_mru_position:
            self.hits_by_mru_position = [0] * self.ways

    def record(self, mru_position: int) -> None:
        """Record one access that hit at *mru_position* (or missed if negative)."""
        self.accesses += 1
        if mru_position < 0:
            self.misses += 1
        else:
            self.hits_by_mru_position[mru_position] += 1

    def hits_within(self, ways: int) -> int:
        """Hits that a cache restricted to the first *ways* MRU positions sees."""
        return sum(self.hits_by_mru_position[:ways])

    def hits_beyond(self, ways: int) -> int:
        """Hits at MRU positions *ways* and beyond (B-partition hits)."""
        return sum(self.hits_by_mru_position[ways:])

    def what_if(self, a_ways: int, *, b_enabled: bool) -> tuple[int, int, int]:
        """Return ``(a_hits, b_hits, misses)`` for a hypothetical configuration."""
        a_hits = self.hits_within(a_ways)
        if b_enabled:
            b_hits = self.hits_beyond(a_ways)
            misses = self.misses
        else:
            b_hits = 0
            misses = self.misses + self.hits_beyond(a_ways)
        return a_hits, b_hits, misses

    def reset(self) -> None:
        """Zero every counter (hardware reset at the end of each interval)."""
        self.accesses = 0
        self.misses = 0
        for index in range(len(self.hits_by_mru_position)):
            self.hits_by_mru_position[index] = 0


class AccountingCache(SetAssociativeCache):
    """Set-associative cache with A/B partitioning and what-if accounting.

    Parameters
    ----------
    geometry:
        Physical (maximum) organisation of the cache.
    a_ways:
        Initial width of the A partition.
    b_enabled:
        Whether the B partition is accessible (adaptive MCD mode) or skipped
        (synchronous / whole-program mode).
    name:
        Identifier used in statistics output.
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        *,
        a_ways: int = 1,
        b_enabled: bool = True,
        name: str = "accounting-cache",
    ) -> None:
        super().__init__(geometry, name=name)
        if not 1 <= a_ways <= geometry.associativity:
            raise ValueError(
                f"a_ways must be in [1, {geometry.associativity}], got {a_ways}"
            )
        self._a_ways = a_ways
        self._b_enabled = b_enabled
        self.interval_stats = CacheIntervalStats(ways=geometry.associativity)
        self.lifetime_a_hits = 0
        self.lifetime_b_hits = 0
        self.lifetime_misses = 0
        #: Probe-width histogram for energy accounting (observation-only):
        #: ways activated by a probe -> number of such probes.  An A access
        #: activates the current ``a_ways``; the fallback B probe activates
        #: the remaining ways of the physical array.
        self.access_profile: dict[int, int] = {}

    # ------------------------------------------------------------------ API

    @property
    def a_ways(self) -> int:
        """Current width of the A partition."""
        return self._a_ways

    @property
    def b_enabled(self) -> bool:
        """True when the B partition is accessible."""
        return self._b_enabled

    @property
    def b_ways(self) -> int:
        """Width of the B partition under the current configuration."""
        if not self._b_enabled:
            return 0
        return self.geometry.associativity - self._a_ways

    def set_a_ways(self, a_ways: int) -> None:
        """Repartition the cache so the A partition spans *a_ways* ways."""
        if not 1 <= a_ways <= self.geometry.associativity:
            raise ValueError(
                f"a_ways must be in [1, {self.geometry.associativity}], got {a_ways}"
            )
        self._a_ways = a_ways

    def set_b_enabled(self, enabled: bool) -> None:
        """Enable or disable the B partition."""
        self._b_enabled = enabled

    def access(self, address: int) -> AccessOutcome:
        """Access *address* and classify the outcome under the current config."""
        position = self.lookup(address)
        self.interval_stats.record(position)
        a_ways = self._a_ways
        profile = self.access_profile
        profile[a_ways] = profile.get(a_ways, 0) + 1
        if 0 <= position < a_ways:
            self.lifetime_a_hits += 1
            return AccessOutcome.HIT_A
        if self._b_enabled:
            # The A miss fell through to a B-partition probe (hit or not),
            # activating the remaining ways of the physical array.
            b_ways = self.geometry.associativity - a_ways
            if b_ways:
                profile[b_ways] = profile.get(b_ways, 0) + 1
            if position >= a_ways:
                self.lifetime_b_hits += 1
                self.stats.b_hits += 1
                return AccessOutcome.HIT_B
        self.lifetime_misses += 1
        return AccessOutcome.MISS

    def snapshot_interval(self) -> CacheIntervalStats:
        """Return a copy of the current interval counters."""
        copy = CacheIntervalStats(ways=self.interval_stats.ways)
        copy.accesses = self.interval_stats.accesses
        copy.misses = self.interval_stats.misses
        copy.hits_by_mru_position = list(self.interval_stats.hits_by_mru_position)
        return copy

    def reset_interval(self) -> None:
        """Reset the per-interval counters (called by the controller)."""
        self.interval_stats.reset()

    def reset_access_profile(self) -> None:
        """Zero the energy-accounting probe histogram (post-warm-up)."""
        self.access_profile.clear()
