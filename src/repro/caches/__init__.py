"""Cache substrate: MRU-ordered set-associative caches, the Accounting Cache
of Dropsho et al. (A/B partitions with exact what-if accounting), the main
memory model, and the load/store-domain cache hierarchy."""

from repro.caches.mru import MRUSet
from repro.caches.cache import AccessOutcome, SetAssociativeCache
from repro.caches.accounting import AccountingCache, CacheIntervalStats
from repro.caches.memory import MainMemory
from repro.caches.hierarchy import CacheHierarchy, MemoryAccessResult

__all__ = [
    "MRUSet",
    "AccessOutcome",
    "SetAssociativeCache",
    "AccountingCache",
    "CacheIntervalStats",
    "MainMemory",
    "CacheHierarchy",
    "MemoryAccessResult",
]
