"""Main-memory latency model.

Main memory is the fixed-frequency fifth "domain" of the MCD machine.  Per
Table 5 of the paper, the first chunk of an access takes 80 ns and each
subsequent chunk takes 2 ns, so filling a 64-byte line over an 8-byte channel
costs 80 + 7 x 2 = 94 ns.  The model also tracks simple per-bank open-row
state so that back-to-back accesses to the same DRAM row are cheaper, and a
single shared channel so that heavily overlapped misses queue behind each
other.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clocks.time import Picoseconds, ns_to_ps


@dataclass(slots=True)
class MemoryStats:
    """Aggregate main-memory access counters."""

    accesses: int = 0
    row_hits: int = 0
    busy_ps: int = 0


class MainMemory:
    """Fixed-latency main memory with open-row reuse and channel occupancy.

    Parameters
    ----------
    first_chunk_ns:
        Latency of the first chunk of an access (row activate + column read).
    subsequent_chunk_ns:
        Latency of each additional chunk of the line.
    chunk_bytes:
        Width of the memory channel.
    row_bytes:
        Size of a DRAM row; accesses within the same row as the previous
        access to the same bank skip the activate portion.
    banks:
        Number of independent banks.
    """

    def __init__(
        self,
        *,
        first_chunk_ns: float = 80.0,
        subsequent_chunk_ns: float = 2.0,
        chunk_bytes: int = 8,
        row_bytes: int = 4096,
        banks: int = 4,
        open_row_fraction: float = 0.4,
    ) -> None:
        if banks < 1:
            raise ValueError("memory needs at least one bank")
        self._first_chunk_ps = ns_to_ps(first_chunk_ns)
        self._subsequent_chunk_ps = ns_to_ps(subsequent_chunk_ns)
        self._chunk_bytes = chunk_bytes
        self._row_bytes = row_bytes
        self._banks = banks
        self._open_row_fraction = open_row_fraction
        self._open_rows: list[int | None] = [None] * banks
        self._channel_free_at: Picoseconds = 0
        self.stats = MemoryStats()

    def line_fill_latency_ps(self, line_bytes: int, *, row_hit: bool = False) -> Picoseconds:
        """Raw latency to fill a line of *line_bytes*, ignoring contention."""
        chunks = max(1, line_bytes // self._chunk_bytes)
        first = self._first_chunk_ps
        if row_hit:
            first = int(first * self._open_row_fraction)
        return first + (chunks - 1) * self._subsequent_chunk_ps

    def access(self, address: int, line_bytes: int, now_ps: Picoseconds) -> Picoseconds:
        """Perform an access at *now_ps* and return its completion time."""
        row = address // self._row_bytes
        bank = row % self._banks
        row_hit = self._open_rows[bank] == row
        self._open_rows[bank] = row
        latency = self.line_fill_latency_ps(line_bytes, row_hit=row_hit)
        start = max(now_ps, self._channel_free_at)
        completion = start + latency
        # The channel is busy only for the data-transfer portion of the access.
        transfer = (max(1, line_bytes // self._chunk_bytes)) * self._subsequent_chunk_ps
        self._channel_free_at = start + transfer
        self.stats.accesses += 1
        if row_hit:
            self.stats.row_hits += 1
        self.stats.busy_ps += latency
        return completion

    def reset(self) -> None:
        """Forget open-row and occupancy state (used between runs)."""
        self._open_rows = [None] * self._banks
        self._channel_free_at = 0
        self.stats = MemoryStats()
