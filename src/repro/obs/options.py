"""Job-attachable trace options, strictly off the fingerprint path.

:class:`TraceOptions` is the value of the optional ``trace`` field on
:class:`~repro.engine.job.SimulationJob`.  It is deliberately *excluded*
from the job's fingerprint payload: tracing observes a run, it never changes
one, so a traced and an untraced job must share a fingerprint (and therefore
a cache entry).  ``tests/test_obs.py`` pins that exclusion.

This module must stay import-light (no engine, no simulator imports):
``repro.engine.job`` imports it, and a heavier module here would create an
import cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.obs.events import EVENT_TYPES

__all__ = ["TraceOptions"]


@dataclass(frozen=True, slots=True)
class TraceOptions:
    """How to record a job's trace (observation-only; not fingerprinted).

    ``path`` names the JSONL output file; because each traced job writes the
    whole file, tracing is a per-job diagnostic — give concurrent traced
    jobs distinct paths.  ``events`` restricts recording to the named event
    types (``None`` = all), and ``sampling`` keeps every *n*-th event of a
    type (deterministic decimation for high-volume types such as
    ``sync-penalty``).
    """

    path: str
    events: tuple[str, ...] | None = None
    sampling: Mapping[str, int] | None = None

    def __post_init__(self) -> None:
        if not self.path:
            raise ValueError("TraceOptions.path must name the JSONL output file")
        if self.events is not None:
            events = tuple(self.events)
            unknown = set(events) - EVENT_TYPES
            if unknown:
                raise ValueError(f"unknown trace event types: {sorted(unknown)}")
            object.__setattr__(self, "events", events)
        if self.sampling is not None:
            sampling = {str(key): int(value) for key, value in self.sampling.items()}
            unknown = set(sampling) - EVENT_TYPES
            if unknown:
                raise ValueError(f"unknown trace event types in sampling: {sorted(unknown)}")
            if any(value < 1 for value in sampling.values()):
                raise ValueError("sampling strides must be >= 1")
            object.__setattr__(self, "sampling", sampling)
