"""Engine/fabric metrics: histograms, utilization and progress accounting.

:class:`EngineMetrics` is the accumulator the
:class:`~repro.engine.engine.ExperimentEngine` feeds as results stream out
of its executor; a snapshot of it is what the campaign and sweep CLIs print
in their end-of-run summaries.  All timing uses ``time.perf_counter`` (a
monotonic interval clock — host wall-clock functions are banned from the
simulation path by the ``det-wallclock`` rule, and nothing here flows into
simulated results anyway).

The histograms are fixed-bound log-spaced buckets, so memory stays constant
however many jobs a campaign runs; percentiles are bucket-resolution
approximations, which is all a progress summary needs.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Mapping, Sequence

__all__ = ["EngineMetrics", "Histogram"]

#: Log-spaced bucket upper bounds (seconds) covering sub-millisecond cache
#: hits through multi-minute simulations; values beyond the last bound land
#: in an unbounded overflow bucket.
_DEFAULT_BOUNDS: tuple[float, ...] = (
    0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0, 300.0,
)


class Histogram:
    """Fixed-bucket histogram of non-negative samples (seconds)."""

    def __init__(self, bounds: Sequence[float] = _DEFAULT_BOUNDS) -> None:
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram bounds must be strictly increasing")
        self.bounds = tuple(float(bound) for bound in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = 0.0
        self.max = 0.0

    def record(self, value: float) -> None:
        """Add one sample."""
        value = max(0.0, float(value))
        self.counts[bisect_left(self.bounds, value)] += 1
        if not self.count or value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        """Arithmetic mean of the recorded samples (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, fraction: float) -> float:
        """Bucket-resolution upper bound of the *fraction* percentile.

        Returns the upper bound of the bucket containing the requested rank
        (the exact maximum for the overflow bucket), which is accurate to
        one log-spaced bucket — sufficient for progress summaries.
        """
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        if not self.count:
            return 0.0
        rank = fraction * self.count
        seen = 0
        for index, count in enumerate(self.counts):
            seen += count
            if seen >= rank:
                return self.bounds[index] if index < len(self.bounds) else self.max
        return self.max  # pragma: no cover - rank <= count always hits above

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form for ``--json`` output."""
        return {
            "count": self.count,
            "total_seconds": self.total,
            "mean_seconds": self.mean,
            "min_seconds": self.min,
            "max_seconds": self.max,
            "bounds_seconds": list(self.bounds),
            "counts": list(self.counts),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Histogram":
        """Rebuild a histogram from :meth:`to_dict` output (validating it).

        This is what lets a snapshot outlive its process: ledger records
        store ``to_dict`` payloads, and cross-shard aggregation reloads them
        here before :meth:`merge`-ing bucket-wise.
        """
        histogram = cls(bounds=tuple(float(b) for b in data["bounds_seconds"]))
        counts = [int(c) for c in data["counts"]]
        if len(counts) != len(histogram.counts):
            raise ValueError(
                f"histogram snapshot has {len(counts)} bucket count(s) for "
                f"{len(histogram.bounds)} bound(s); expected "
                f"{len(histogram.counts)}"
            )
        if any(c < 0 for c in counts):
            raise ValueError("histogram snapshot has negative bucket counts")
        count = int(data["count"])
        if count != sum(counts):
            raise ValueError(
                f"histogram snapshot count {count} does not equal the bucket "
                f"sum {sum(counts)}"
            )
        histogram.counts = counts
        histogram.count = count
        histogram.total = float(data["total_seconds"])
        histogram.min = float(data["min_seconds"])
        histogram.max = float(data["max_seconds"])
        return histogram

    def merge(self, other: "Histogram") -> None:
        """Fold *other* into this histogram, bucket-wise.

        Both histograms must share the identical bucket bounds — merging
        across differing layouts would silently misbin — and the merged
        min/max/total/count are exactly what recording both sample streams
        into one histogram would have produced.
        """
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds: "
                f"{other.bounds} vs {self.bounds}"
            )
        if not other.count:
            return
        if not self.count:
            self.min = other.min
        else:
            self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        self.count += other.count
        self.total += other.total
        for index, count in enumerate(other.counts):
            self.counts[index] += count


class EngineMetrics:
    """Per-engine accounting of job wall-clock, queue latency and utilization.

    ``job_seconds`` holds per-result completion intervals (for a serial
    executor, exactly each simulation's wall-clock; for a parallel one, the
    inter-arrival time observed by the collecting thread).  ``queue_latency``
    holds each result's arrival time relative to its batch's start — how
    long a caller waited for that job.  Utilization is busy-time over
    ``elapsed x workers``, aggregated across batches.
    """

    def __init__(self) -> None:
        self.job_seconds = Histogram()
        self.queue_latency = Histogram()
        self.jobs_completed = 0
        self.batches = 0
        self.busy_seconds = 0.0
        self.capacity_seconds = 0.0

    def record_job(self, duration_seconds: float, latency_seconds: float) -> None:
        """Account one result arriving from the executor."""
        self.jobs_completed += 1
        self.job_seconds.record(duration_seconds)
        self.queue_latency.record(latency_seconds)
        self.busy_seconds += max(0.0, duration_seconds)

    def record_batch(self, elapsed_seconds: float, workers: int) -> None:
        """Account one completed batch of *workers*-wide capacity."""
        self.batches += 1
        self.capacity_seconds += max(0.0, elapsed_seconds) * max(1, workers)

    @property
    def worker_utilization(self) -> float:
        """Busy fraction of the executor capacity across recorded batches."""
        if self.capacity_seconds <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / self.capacity_seconds)

    def to_dict(self) -> dict[str, Any]:
        """Plain-data snapshot for ``--json`` output."""
        return {
            "jobs_completed": self.jobs_completed,
            "batches": self.batches,
            "busy_seconds": self.busy_seconds,
            "capacity_seconds": self.capacity_seconds,
            "worker_utilization": self.worker_utilization,
            "job_seconds": self.job_seconds.to_dict(),
            "queue_latency": self.queue_latency.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EngineMetrics":
        """Rebuild a snapshot from :meth:`to_dict` output.

        ``worker_utilization`` is a derived property and is recomputed from
        the reloaded busy/capacity seconds rather than trusted from the
        payload.
        """
        metrics = cls()
        metrics.jobs_completed = int(data["jobs_completed"])
        metrics.batches = int(data["batches"])
        metrics.busy_seconds = float(data["busy_seconds"])
        metrics.capacity_seconds = float(data["capacity_seconds"])
        metrics.job_seconds = Histogram.from_dict(data["job_seconds"])
        metrics.queue_latency = Histogram.from_dict(data["queue_latency"])
        return metrics

    def merge(self, other: "EngineMetrics") -> None:
        """Fold *other*'s accounting into this accumulator.

        Scalars add; histograms add bucket-wise (:meth:`Histogram.merge`).
        This is the cross-shard fusion primitive: merging every worker's
        final snapshot yields the campaign-wide job-count, busy-time and
        latency distribution, with utilization re-derived from the summed
        busy and capacity seconds.
        """
        self.jobs_completed += other.jobs_completed
        self.batches += other.batches
        self.busy_seconds += other.busy_seconds
        self.capacity_seconds += other.capacity_seconds
        self.job_seconds.merge(other.job_seconds)
        self.queue_latency.merge(other.queue_latency)

    def summary_lines(self) -> list[str]:
        """Human-readable summary for campaign/sweep end-of-run output."""
        if not self.jobs_completed:
            return ["engine metrics: no executor work (all jobs cached or deduplicated)"]
        jobs = self.job_seconds
        latency = self.queue_latency
        return [
            (
                f"engine metrics: {self.jobs_completed} job(s) in "
                f"{self.batches} batch(es), worker utilization "
                f"{self.worker_utilization:.0%}"
            ),
            (
                f"  job wall-clock: mean {jobs.mean:.3f}s, "
                f"p50<={jobs.percentile(0.5):.3f}s, "
                f"p90<={jobs.percentile(0.9):.3f}s, max {jobs.max:.3f}s"
            ),
            (
                f"  queue latency : mean {latency.mean:.3f}s, "
                f"p90<={latency.percentile(0.9):.3f}s, max {latency.max:.3f}s"
            ),
        ]
