"""Metrics exporters: Prometheus-textfile and JSON snapshot writers.

Long-running engine hosts — ``submit()`` servers, fabric shard workers —
need a scrape surface that outlives no process state: this module renders
an :class:`~repro.obs.metrics.EngineMetrics` snapshot either in the
Prometheus `textfile-collector exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ (for a
node-exporter textfile directory) or as the plain ``to_dict()`` JSON (for
ad-hoc scripts).  :func:`write_metrics_snapshot` dispatches on the output
path's extension, which is what the ``--metrics-out`` CLI flag calls.

Exporters are observability-only, like the ledger: the snapshot is written
*after* engine work, nothing reads it back, and the one wall-clock value
(the ``exported`` stamp in JSON output) is operator-facing provenance that
never enters a fingerprint.  Files are written atomically (temp file + rename)
so a concurrent scraper never sees a torn snapshot.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Mapping

from repro.obs.metrics import EngineMetrics, Histogram

__all__ = [
    "prometheus_text",
    "write_json_snapshot",
    "write_metrics_snapshot",
    "write_prometheus_snapshot",
]

#: Metric-name prefix for every exported series.
_PREFIX = "repro_engine"


def _format_value(value: float) -> str:
    """Prometheus sample value: integers bare, floats in shortest form."""
    if float(value).is_integer():
        return str(int(value))
    return format(float(value), ".9g")


def _labels_text(labels: Mapping[str, str] | None, extra: Mapping[str, str] | None = None) -> str:
    merged: dict[str, str] = dict(labels) if labels else {}
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{name}="{str(value)}"' for name, value in sorted(merged.items())
    )
    return "{" + body + "}"


def _histogram_lines(
    name: str, histogram: Histogram, labels: Mapping[str, str] | None
) -> list[str]:
    """One Prometheus histogram: cumulative ``le`` buckets + ``_sum``/``_count``."""
    lines = [
        f"# HELP {name} {name.replace('_', ' ')} (log-spaced fixed buckets)",
        f"# TYPE {name} histogram",
    ]
    cumulative = 0
    for bound, count in zip(histogram.bounds, histogram.counts):
        cumulative += count
        le = _labels_text(labels, {"le": format(bound, "g")})
        lines.append(f"{name}_bucket{le} {cumulative}")
    cumulative += histogram.counts[-1]
    le = _labels_text(labels, {"le": "+Inf"})
    lines.append(f"{name}_bucket{le} {cumulative}")
    lines.append(f"{name}_sum{_labels_text(labels)} {_format_value(histogram.total)}")
    lines.append(f"{name}_count{_labels_text(labels)} {histogram.count}")
    return lines


def prometheus_text(
    metrics: EngineMetrics, *, labels: Mapping[str, str] | None = None
) -> str:
    """Render *metrics* in the Prometheus textfile exposition format.

    *labels* (e.g. ``{"shard": "0/2", "label": "matrix"}``) are attached to
    every sample so one textfile directory can hold every worker's snapshot
    side by side.
    """
    suffix = _labels_text(labels)
    lines: list[str] = []
    for name, kind, value in (
        (f"{_PREFIX}_jobs_completed_total", "counter", metrics.jobs_completed),
        (f"{_PREFIX}_batches_total", "counter", metrics.batches),
        (f"{_PREFIX}_busy_seconds_total", "counter", metrics.busy_seconds),
        (f"{_PREFIX}_capacity_seconds_total", "counter", metrics.capacity_seconds),
        (f"{_PREFIX}_worker_utilization", "gauge", metrics.worker_utilization),
    ):
        lines.append(f"# HELP {name} {name.replace('_', ' ')}")
        lines.append(f"# TYPE {name} {kind}")
        lines.append(f"{name}{suffix} {_format_value(float(value))}")
    lines.extend(_histogram_lines(f"{_PREFIX}_job_seconds", metrics.job_seconds, labels))
    lines.extend(
        _histogram_lines(f"{_PREFIX}_queue_latency_seconds", metrics.queue_latency, labels)
    )
    return "\n".join(lines) + "\n"


def _write_atomic(path: Path, text: str) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    temp = path.with_name(f".tmp-{path.name}")
    temp.write_text(text, encoding="utf-8")
    os.replace(temp, path)


def write_prometheus_snapshot(
    path: str | Path, metrics: EngineMetrics, *, labels: Mapping[str, str] | None = None
) -> Path:
    """Atomically write a Prometheus textfile snapshot to *path*."""
    path = Path(path)
    _write_atomic(path, prometheus_text(metrics, labels=labels))
    return path


def write_json_snapshot(
    path: str | Path, metrics: EngineMetrics, *, labels: Mapping[str, str] | None = None
) -> Path:
    """Atomically write a JSON metrics snapshot to *path*."""
    path = Path(path)
    payload: dict[str, Any] = {
        "labels": dict(labels) if labels else {},
        "metrics": metrics.to_dict(),
        "exported": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }
    _write_atomic(path, json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def write_metrics_snapshot(
    path: str | Path, metrics: EngineMetrics, *, labels: Mapping[str, str] | None = None
) -> Path:
    """Write a snapshot in the format implied by *path*'s extension.

    ``.json`` writes :func:`write_json_snapshot`; anything else (``.prom``,
    ``.txt``, …) writes the Prometheus exposition text.
    """
    path = Path(path)
    if path.suffix == ".json":
        return write_json_snapshot(path, metrics, labels=labels)
    return write_prometheus_snapshot(path, metrics, labels=labels)
