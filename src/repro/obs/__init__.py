"""Telemetry and observability for the simulator and the experiment engine.

Three layers, all observation-only (nothing here may influence a simulated
result — the golden digests are pinned bit-identical with tracing on and
off):

- :mod:`repro.obs.events` / :mod:`repro.obs.recorder` — typed,
  schema-versioned trace events from the processor's instrumentation hooks
  (controller decisions, reconfigurations, frequency changes, sync
  penalties, fast-forward/horizon activity), recorded through a
  :class:`TraceRecorder` into bounded ring buffers and JSONL files.
- :mod:`repro.obs.metrics` — :class:`EngineMetrics`: per-job wall-clock and
  queue-latency histograms plus worker utilization, accumulated by the
  experiment engine and surfaced in campaign/sweep summaries; snapshots
  round-trip through ``to_dict``/``from_dict`` and fuse with ``merge``.
- :mod:`repro.obs.ledger` — the persistent, append-only run ledger
  (JSONL): durable per-batch campaign accounting that shard workers write
  and ``ledger merge``/``summarize`` fuse into one campaign view.
- :mod:`repro.obs.export` — Prometheus-textfile/JSON metrics snapshot
  writers for long-running ``submit()`` servers and fabric workers.
- :mod:`repro.obs.report` — the rendered campaign report (throughput,
  histograms, per-shard balance, store health, reconfiguration totals).
- :mod:`repro.obs.logging` — the shared stdlib-logging setup
  (``-v``/``-q``) every ``python -m repro.*`` CLI adopts.

``python -m repro.obs`` (:mod:`repro.obs.cli`) records traces and renders
them (``summarize``, ``timeline``, ``diff``) and operates on run ledgers
(``ledger merge``, ``ledger summarize``, ``report``).

This package ``__init__`` deliberately imports only the engine-independent
modules: :mod:`repro.engine.job` imports :class:`TraceOptions` from here,
so pulling :mod:`repro.obs.driver` (which imports the engine) in at package
level would create an import cycle.
"""

from __future__ import annotations

from repro.obs.events import (
    CONTROLLER_INTERVAL,
    EVENT_TYPES,
    FAST_FORWARD,
    FREQUENCY_CHANGE,
    HORIZON_SKIP,
    PHASE_BOUNDARY,
    RECONFIGURATION,
    SCHEMA_VERSION,
    SYNC_PENALTY,
    TraceEvent,
    TraceSchemaError,
)
from repro.obs.export import prometheus_text, write_metrics_snapshot
from repro.obs.ledger import (
    LEDGER_SCHEMA_VERSION,
    LedgerSchemaError,
    LedgerSummary,
    LedgerWriter,
    merge_ledgers,
    open_ledger,
    read_ledger,
    summarize_ledgers,
)
from repro.obs.logging import add_logging_arguments, configure_logging, get_logger
from repro.obs.metrics import EngineMetrics, Histogram
from repro.obs.options import TraceOptions
from repro.obs.recorder import JsonlSink, RingBufferSink, TraceRecorder, read_trace

__all__ = [
    "CONTROLLER_INTERVAL",
    "EVENT_TYPES",
    "EngineMetrics",
    "FAST_FORWARD",
    "FREQUENCY_CHANGE",
    "HORIZON_SKIP",
    "Histogram",
    "JsonlSink",
    "LEDGER_SCHEMA_VERSION",
    "LedgerSchemaError",
    "LedgerSummary",
    "LedgerWriter",
    "PHASE_BOUNDARY",
    "RECONFIGURATION",
    "RingBufferSink",
    "SCHEMA_VERSION",
    "SYNC_PENALTY",
    "TraceEvent",
    "TraceOptions",
    "TraceRecorder",
    "TraceSchemaError",
    "add_logging_arguments",
    "configure_logging",
    "get_logger",
    "merge_ledgers",
    "open_ledger",
    "prometheus_text",
    "read_ledger",
    "read_trace",
    "summarize_ledgers",
    "write_metrics_snapshot",
]
