"""``python -m repro.obs`` — record and render telemetry traces and ledgers.

Six subcommands:

``trace``
    Run one phase-adaptive simulation of a scenario or benchmark workload
    with the trace recorder attached and write the JSONL event stream.
    Runs the job directly (never through the engine cache — trace options
    are excluded from fingerprints, so a cache hit would skip the
    simulation and produce no trace).

``summarize``
    Event counts, the reconfiguration ledger and per-structure controller
    statistics of one trace file.

``timeline``
    ASCII per-structure decision timeline: one character per controller
    interval (the configuration chosen), with a marker row showing changes
    (``*``), hysteresis-suppressed winners (``h``), streak-suppressed
    winners (``s``) and plain holds (``.``), plus scenario phase boundaries
    (``P``) aligned to the interval they fell in.

``diff``
    Compare two traces: per-type event counts, per-structure decision
    sequences (first divergence) and reconfiguration ledgers.

``ledger``
    Operate on persistent run ledgers (:mod:`repro.obs.ledger`):
    ``ledger merge OUT SOURCE...`` fuses shard ledger files into one
    campaign ledger; ``ledger summarize SOURCE...`` prints the fused
    campaign accounting (``--json`` for the machine-readable form,
    including the partition-independent ``equivalence_key``).

``report``
    Render the full campaign report from one or more ledgers: work
    accounting, throughput/utilization, wall-clock and queue-latency
    histograms, per-shard balance, plus result-store health (``--store``)
    and reconfiguration totals joined from traces (``--traces``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Sequence

from repro.obs.events import (
    CONTROLLER_INTERVAL,
    EVENT_TYPES,
    PHASE_BOUNDARY,
    RECONFIGURATION,
    TraceEvent,
)
from repro.obs.logging import add_logging_arguments, configure_logging
from repro.obs.recorder import read_trace

__all__ = ["build_parser", "main"]

#: Quick-mode run shape, matching the scenario CLI's ``--quick``.
QUICK_WINDOW = 1_200
QUICK_WARMUP = 2_000

_DEFAULT_TIMELINE_WIDTH = 64


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.obs`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Record and render simulator telemetry traces.",
    )
    add_logging_arguments(parser)
    sub = parser.add_subparsers(dest="command", required=True)

    trace = sub.add_parser(
        "trace",
        help="run one traced phase-adaptive simulation and write a JSONL trace",
    )
    trace.add_argument(
        "target", help="scenario name (python -m repro.scenarios list) or workload name"
    )
    trace.add_argument(
        "--out",
        default=None,
        help="output JSONL path (default: <target>.trace.jsonl)",
    )
    trace.add_argument(
        "--window", type=int, default=None, help="measured instruction window"
    )
    trace.add_argument(
        "--warmup", type=int, default=None, help="warm-up instruction count"
    )
    trace.add_argument(
        "--quick",
        action="store_true",
        help=f"small smoke-test run (window {QUICK_WINDOW}, warmup {QUICK_WARMUP})",
    )
    trace.add_argument(
        "--events",
        default=None,
        help="comma-separated event types to record (default: all); "
        f"known: {', '.join(sorted(EVENT_TYPES))}",
    )
    trace.add_argument(
        "--sample",
        action="append",
        default=[],
        metavar="TYPE=N",
        help="keep every N-th event of TYPE (deterministic; repeatable)",
    )
    trace.add_argument("--seed", type=int, default=0, help="simulation seed")
    trace.add_argument(
        "--trace-seed", type=int, default=None, help="workload trace seed"
    )

    summarize = sub.add_parser("summarize", help="summarise one trace file")
    summarize.add_argument("trace", help="JSONL trace file")
    summarize.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    timeline = sub.add_parser(
        "timeline", help="ASCII per-structure decision timeline"
    )
    timeline.add_argument("trace", help="JSONL trace file")
    timeline.add_argument(
        "--width",
        type=int,
        default=_DEFAULT_TIMELINE_WIDTH,
        help="intervals per output row",
    )
    timeline.add_argument(
        "--structure",
        default=None,
        help="restrict to one structure (dcache, icache, int-queue, fp-queue)",
    )

    diff = sub.add_parser("diff", help="compare two trace files")
    diff.add_argument("left", help="first JSONL trace file")
    diff.add_argument("right", help="second JSONL trace file")

    ledger = sub.add_parser("ledger", help="merge and summarise persistent run ledgers")
    ledger_sub = ledger.add_subparsers(dest="ledger_command", required=True)
    ledger_merge = ledger_sub.add_parser(
        "merge", help="fuse shard ledger files into one campaign ledger"
    )
    ledger_merge.add_argument("destination", help="output ledger file")
    ledger_merge.add_argument(
        "sources",
        nargs="+",
        help="source ledger files or directories of *.ledger.jsonl",
    )
    ledger_summarize = ledger_sub.add_parser(
        "summarize", help="fused campaign accounting of one or more ledgers"
    )
    ledger_summarize.add_argument(
        "sources",
        nargs="+",
        help="ledger files or directories of *.ledger.jsonl",
    )
    ledger_summarize.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    report = sub.add_parser(
        "report", help="render the campaign report from run ledgers"
    )
    report.add_argument(
        "sources",
        nargs="+",
        help="ledger files or directories of *.ledger.jsonl",
    )
    report.add_argument(
        "--store",
        default=None,
        help="result-cache store directory to include health for",
    )
    report.add_argument(
        "--traces",
        nargs="+",
        default=[],
        metavar="TRACE",
        help="telemetry trace files to join reconfiguration totals from",
    )
    report.add_argument(
        "--markdown", action="store_true", help="Markdown tables instead of ASCII"
    )
    report.add_argument(
        "--out", default=None, help="write the report to a file instead of stdout"
    )
    return parser


# ------------------------------------------------------------------ helpers


def _interval_events(events: Sequence[TraceEvent]) -> dict[str, list[TraceEvent]]:
    """Controller-interval events grouped by structure, in emission order."""
    grouped: dict[str, list[TraceEvent]] = {}
    for event in events:
        if event.type == CONTROLLER_INTERVAL:
            grouped.setdefault(event.data.get("structure", "?"), []).append(event)
    return grouped


def _decision_symbol(event: TraceEvent) -> str:
    """One timeline character naming the configuration an interval chose."""
    data = event.data
    if "best_index" in data:
        return str(data["best_index"])
    # Queue events carry sizes; map through the score table's sorted sizes
    # so 16/32/48/64 render as 0..3.
    sizes = sorted(int(size) for size in data.get("scores", {}))
    try:
        return str(sizes.index(int(data["best_size"])))
    except (KeyError, ValueError):
        return "?"


def _marker_symbol(event: TraceEvent) -> str:
    if event.data.get("changed"):
        return "*"
    suppressed = event.data.get("suppressed_by", "")
    if suppressed == "hysteresis":
        return "h"
    if suppressed == "streak":
        return "s"
    return "."


def _phase_row(
    intervals: Sequence[TraceEvent], boundaries: Sequence[int]
) -> str | None:
    """``P`` markers for the interval each phase boundary committed inside."""
    if not boundaries:
        return None
    row = ["."] * len(intervals)
    previous = 0
    remaining = sorted(boundaries)
    for slot, event in enumerate(intervals):
        while remaining and previous < remaining[0] <= event.committed:
            row[slot] = "P"
            remaining.pop(0)
        previous = event.committed
    return "".join(row)


# --------------------------------------------------------------- subcommands


def _cmd_trace(args: argparse.Namespace) -> int:
    # Imported lazily: the driver pulls in the engine and scenario layers,
    # which summarize/timeline/diff (pure file readers) never need.
    from repro.engine.job import DEFAULT_TRACE_SEED
    from repro.obs.driver import run_traced

    window = args.window
    warmup = args.warmup
    if args.quick:
        window = window if window is not None else QUICK_WINDOW
        warmup = warmup if warmup is not None else QUICK_WARMUP
    events: tuple[str, ...] | None = None
    if args.events:
        events = tuple(name.strip() for name in args.events.split(",") if name.strip())
    sampling: dict[str, int] = {}
    for entry in args.sample:
        name, _, stride = entry.partition("=")
        if not stride:
            raise SystemExit(f"--sample expects TYPE=N, got {entry!r}")
        sampling[name.strip()] = int(stride)
    out = args.out if args.out is not None else f"{args.target}.trace.jsonl"
    run = run_traced(
        args.target,
        path=out,
        window=window,
        warmup=warmup,
        events=events,
        sampling=sampling or None,
        trace_seed=(
            args.trace_seed if args.trace_seed is not None else DEFAULT_TRACE_SEED
        ),
        seed=args.seed,
    )
    result = run.result
    print(f"traced {run.job_label} -> {run.path}")
    print(
        f"  committed {result.committed_instructions} instruction(s) in "
        f"{result.execution_time_ps} ps"
    )
    total = sum(run.emitted.values())
    print(f"  {total} event(s) recorded:")
    for name in sorted(run.emitted):
        seen = run.seen.get(name, run.emitted[name])
        sampled = f" (of {seen} seen)" if seen != run.emitted[name] else ""
        print(f"    {name:<20} {run.emitted[name]}{sampled}")
    return 0


def _summary_payload(meta: dict[str, Any], events: Sequence[TraceEvent]) -> dict[str, Any]:
    counts: dict[str, int] = {}
    for event in events:
        counts[event.type] = counts.get(event.type, 0) + 1
    ledger = [
        {
            "committed": event.committed,
            "time_ps": event.time_ps,
            "structure": event.data.get("structure"),
            "configuration": event.data.get("configuration"),
            "upsizing": event.data.get("upsizing"),
            "lock_time_ps": event.data.get("lock_time_ps"),
        }
        for event in events
        if event.type == RECONFIGURATION
    ]
    structures = {}
    for structure, intervals in sorted(_interval_events(events).items()):
        structures[structure] = {
            "intervals": len(intervals),
            "changes": sum(1 for e in intervals if e.data.get("changed")),
            "hysteresis_suppressed": sum(
                1 for e in intervals if e.data.get("suppressed_by") == "hysteresis"
            ),
            "streak_suppressed": sum(
                1 for e in intervals if e.data.get("suppressed_by") == "streak"
            ),
        }
    return {
        "meta": meta,
        "event_counts": counts,
        "reconfigurations": ledger,
        "structures": structures,
    }


def _cmd_summarize(args: argparse.Namespace) -> int:
    meta, events = read_trace(args.trace)
    payload = _summary_payload(meta, events)
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    target = meta.get("target", meta.get("job", "?"))
    print(f"trace {args.trace}: {target}")
    for key in ("job", "window", "warmup"):
        if key in meta:
            print(f"  {key}: {meta[key]}")
    print(f"  {len(events)} event(s):")
    for name in sorted(payload["event_counts"]):
        print(f"    {name:<20} {payload['event_counts'][name]}")
    structures = payload["structures"]
    if structures:
        print("  controller decisions:")
        for structure, stats in structures.items():
            print(
                f"    {structure:<10} {stats['intervals']} interval(s), "
                f"{stats['changes']} change(s), "
                f"{stats['hysteresis_suppressed']} hysteresis-suppressed, "
                f"{stats['streak_suppressed']} streak-suppressed"
            )
    ledger = payload["reconfigurations"]
    if ledger:
        print("  reconfiguration ledger:")
        for entry in ledger:
            direction = "upsize" if entry["upsizing"] else "downsize"
            print(
                f"    @{entry['committed']:>8} {entry['structure']:<10} "
                f"-> {entry['configuration']} ({direction}, "
                f"lock {entry['lock_time_ps']} ps)"
            )
    else:
        print("  no reconfigurations applied")
    return 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    meta, events = read_trace(args.trace)
    grouped = _interval_events(events)
    if args.structure is not None:
        if args.structure not in grouped:
            known = ", ".join(sorted(grouped)) or "none"
            raise SystemExit(
                f"structure {args.structure!r} not in trace (present: {known})"
            )
        grouped = {args.structure: grouped[args.structure]}
    if not grouped:
        print("no controller-interval events in trace")
        return 0
    boundaries = [e.committed for e in events if e.type == PHASE_BOUNDARY]
    print(f"timeline {args.trace}: {meta.get('target', meta.get('job', '?'))}")
    print(
        "  one column per controller interval; cfg = chosen configuration "
        "index, evt: *=change h=hysteresis-suppressed s=streak-suppressed "
        ".=hold, phs: P=phase boundary"
    )
    for structure, intervals in sorted(grouped.items()):
        sizes = sorted(
            {int(s) for e in intervals for s in e.data.get("scores", {})}
        )
        if sizes:
            legend = " ".join(f"{i}={size}" for i, size in enumerate(sizes))
            print(f"  {structure} (sizes: {legend})")
        else:
            print(f"  {structure}")
        rows = {
            "cfg": "".join(_decision_symbol(e) for e in intervals),
            "evt": "".join(_marker_symbol(e) for e in intervals),
        }
        phase_row = _phase_row(intervals, boundaries)
        if phase_row is not None:
            rows["phs"] = phase_row
        width = max(1, args.width)
        length = len(rows["cfg"])
        for start in range(0, length, width):
            for name, row in rows.items():
                print(f"    {name} {row[start:start + width]}")
            if start + width < length:
                print()
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    left_meta, left_events = read_trace(args.left)
    right_meta, right_events = read_trace(args.right)
    identical = True
    print(f"diff {args.left} vs {args.right}")
    left_target = left_meta.get("target", left_meta.get("job", "?"))
    right_target = right_meta.get("target", right_meta.get("job", "?"))
    if left_target != right_target:
        print(f"  target: {left_target} vs {right_target}")
        identical = False

    left_counts = _summary_payload(left_meta, left_events)["event_counts"]
    right_counts = _summary_payload(right_meta, right_events)["event_counts"]
    for name in sorted(set(left_counts) | set(right_counts)):
        a, b = left_counts.get(name, 0), right_counts.get(name, 0)
        if a != b:
            print(f"  {name}: {a} vs {b} event(s)")
            identical = False

    left_grouped = _interval_events(left_events)
    right_grouped = _interval_events(right_events)
    for structure in sorted(set(left_grouped) | set(right_grouped)):
        a = "".join(_decision_symbol(e) for e in left_grouped.get(structure, []))
        b = "".join(_decision_symbol(e) for e in right_grouped.get(structure, []))
        if a == b:
            continue
        identical = False
        divergence = next(
            (i for i, (x, y) in enumerate(zip(a, b)) if x != y), min(len(a), len(b))
        )
        print(
            f"  {structure}: decisions diverge at interval {divergence} "
            f"({a[divergence:divergence + 8] or '<end>'} vs "
            f"{b[divergence:divergence + 8] or '<end>'})"
        )

    left_ledger = [
        (e.committed, e.data.get("structure"), e.data.get("configuration"))
        for e in left_events
        if e.type == RECONFIGURATION
    ]
    right_ledger = [
        (e.committed, e.data.get("structure"), e.data.get("configuration"))
        for e in right_events
        if e.type == RECONFIGURATION
    ]
    if left_ledger != right_ledger:
        identical = False
        print(
            f"  reconfiguration ledgers differ "
            f"({len(left_ledger)} vs {len(right_ledger)} entr(ies))"
        )
    if identical:
        print("  traces are equivalent")
        return 0
    return 1


def _cmd_ledger(args: argparse.Namespace) -> int:
    from repro.obs.ledger import LedgerSchemaError, merge_ledgers, summarize_ledgers

    try:
        if args.ledger_command == "merge":
            written = merge_ledgers(args.destination, args.sources)
            print(f"merged {written} record(s) into {args.destination}")
            return 0
        summary = summarize_ledgers(args.sources)
        if args.json:
            print(json.dumps(summary.to_dict(), indent=2, sort_keys=True))
            return 0
        print(
            f"{summary.ledgers} ledger(s), {summary.records} record(s) "
            f"({summary.batches} batch, {summary.submits} submit)"
        )
        print(
            f"  jobs: {summary.jobs_submitted} submitted, "
            f"{len(summary.unique_fingerprints)} unique, "
            f"{summary.simulations} simulation(s), "
            f"{summary.cache_hits} cache hit(s), "
            f"{summary.batch_duplicates} duplicate(s)"
        )
        print(f"  campaign digest: {summary.fingerprint_digest()}")
        for shard in sorted(summary.shards):
            stats = summary.shards[shard]
            print(
                f"  shard {shard}: {stats['jobs']} job(s), "
                f"{stats['simulations']} simulation(s), "
                f"{stats['cache_hits']} cache hit(s), "
                f"busy {stats['busy_seconds']:.3f}s"
            )
        for line in summary.metrics.summary_lines():
            print(f"  {line}")
        return 0
    except (LedgerSchemaError, FileNotFoundError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def _cmd_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.obs.ledger import LedgerSchemaError, summarize_ledgers
    from repro.obs.report import render_report

    store = None
    if args.store is not None:
        # Imported lazily: the engine layer is only needed when --store asks
        # for result-cache health.
        from repro.engine.cli import inspect_store

        directory = Path(args.store)
        if not directory.is_dir():
            print(f"error: store {directory} is not a directory", file=sys.stderr)
            return 2
        store = inspect_store(directory)
    try:
        summary = summarize_ledgers(args.sources)
        text = render_report(
            summary, store=store, traces=args.traces, markdown=args.markdown
        )
    except (LedgerSchemaError, FileNotFoundError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.out is not None:
        Path(args.out).write_text(text, encoding="utf-8")
        print(f"wrote report to {args.out}")
    else:
        print(text, end="")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``python -m repro.obs``."""
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "summarize":
        return _cmd_summarize(args)
    if args.command == "timeline":
        return _cmd_timeline(args)
    if args.command == "ledger":
        return _cmd_ledger(args)
    if args.command == "report":
        return _cmd_report(args)
    return _cmd_diff(args)
