"""Typed, schema-versioned trace events emitted by the simulator hooks.

One :class:`TraceEvent` is one observation: a controller interval was
evaluated, a reconfiguration was applied, a domain clock changed frequency,
a synchronisation penalty was paid, the fast-forward or event-horizon
scheduler skipped edges, or a scenario phase boundary passed.  Events are
observation-only by construction — nothing in the simulator reads them back
— so a traced run and an untraced run of the same job produce bit-identical
:class:`~repro.analysis.metrics.RunResult` digests.

Every event carries the simulated time (integer picoseconds), the committed
instruction count of the measured window at emission, and a plain-data
payload specific to its type.  ``SCHEMA_VERSION`` governs the JSONL file
format (:mod:`repro.obs.recorder`): readers reject files written under a
different schema instead of misparsing them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = [
    "CONTROLLER_INTERVAL",
    "EVENT_TYPES",
    "FAST_FORWARD",
    "FREQUENCY_CHANGE",
    "HORIZON_SKIP",
    "PHASE_BOUNDARY",
    "RECONFIGURATION",
    "SCHEMA_VERSION",
    "SYNC_PENALTY",
    "TraceEvent",
    "TraceSchemaError",
]

#: Version of the event payloads and the JSONL container format.  Bump when
#: an event type changes shape; readers refuse other versions.
SCHEMA_VERSION = 1

#: A phase-adaptive controller finished an adaptation interval.  Payload:
#: ``structure``, ``kind`` ("cache"/"queue"), the per-configuration
#: cost/score table, the raw (pre-hysteresis) winner, the applied margin,
#: the pending-candidate streak and what — if anything — suppressed the
#: raw winner ("hysteresis", "streak" or "").
CONTROLLER_INTERVAL = "controller-interval"

#: A controller-commanded reconfiguration was scheduled (PLL re-lock pending).
RECONFIGURATION = "reconfiguration"

#: A domain clock's frequency actually changed (the re-lock completed).
FREQUENCY_CHANGE = "frequency-change"

#: A cross-domain transfer landed in the unsafe capture window and paid the
#: extra synchroniser cycle.
SYNC_PENALTY = "sync-penalty"

#: The quiescent-phase fast-forward batch-consumed idle edges.
FAST_FORWARD = "fast-forward"

#: Event-horizon scheduling bulk-skipped idle execution-domain edges.
HORIZON_SKIP = "horizon-skip"

#: A scenario phase-program boundary fell inside the measured window
#: (synthesised from the :class:`~repro.scenarios.spec.ScenarioSpec` by the
#: trace driver, not emitted by the processor).
PHASE_BOUNDARY = "phase-boundary"

EVENT_TYPES = frozenset(
    {
        CONTROLLER_INTERVAL,
        RECONFIGURATION,
        FREQUENCY_CHANGE,
        SYNC_PENALTY,
        FAST_FORWARD,
        HORIZON_SKIP,
        PHASE_BOUNDARY,
    }
)


class TraceSchemaError(ValueError):
    """A trace file or event was written under an incompatible schema."""


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One timestamped observation from a simulation run.

    ``time_ps`` is simulated time (integer picoseconds; 0 for synthesised
    events such as phase boundaries), ``committed`` the measured-window
    instruction count when the event was emitted, and ``data`` the
    type-specific plain-data payload (JSON-stable: strings, numbers, bools,
    lists and string-keyed dicts only).
    """

    type: str
    time_ps: int
    committed: int
    data: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.type not in EVENT_TYPES:
            raise ValueError(
                f"unknown trace event type {self.type!r}; "
                f"expected one of {sorted(EVENT_TYPES)}"
            )

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form, losslessly JSON-serialisable."""
        return {
            "type": self.type,
            "time_ps": self.time_ps,
            "committed": self.committed,
            "data": dict(self.data),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TraceEvent":
        """Rebuild an event from :meth:`to_dict` output."""
        return cls(
            type=payload["type"],
            time_ps=int(payload["time_ps"]),
            committed=int(payload["committed"]),
            data=dict(payload.get("data", {})),
        )
