"""Shared stdlib-logging setup for every ``python -m repro.*`` CLI.

One place defines the verbosity flags (``-v``/``--verbose``, ``-q``/
``--quiet``) and the handler/format they control, so the bench, engine,
scenarios and sensitivity CLIs behave identically: diagnostics go to a
``repro``-rooted logger on *stderr* (primary results stay on stdout, where
scripts and the CI greps read them).

Default level is WARNING; each ``-v`` lowers it one step (INFO, then
DEBUG), each ``-q`` raises it (ERROR, then CRITICAL).  The engine's
``--heartbeat`` progress line logs at INFO on ``repro.engine`` and is
force-enabled by the CLIs that expose the flag.
"""

from __future__ import annotations

import argparse
import logging
import sys
from typing import IO

__all__ = [
    "add_logging_arguments",
    "configure_logging",
    "get_logger",
    "verbosity_from_args",
]

_ROOT_LOGGER = "repro"
_LEVELS = (logging.DEBUG, logging.INFO, logging.WARNING, logging.ERROR, logging.CRITICAL)
_DEFAULT_INDEX = _LEVELS.index(logging.WARNING)
_HANDLER_FLAG = "_repro_obs_handler"


def get_logger(name: str) -> logging.Logger:
    """The ``repro``-rooted logger for *name* (convenience passthrough)."""
    return logging.getLogger(name)


def add_logging_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``-v``/``-q`` verbosity flags to *parser*."""
    group = parser.add_argument_group("logging")
    group.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="more diagnostics on stderr (-v = info, -vv = debug)",
    )
    group.add_argument(
        "-q",
        "--quiet",
        action="count",
        default=0,
        help="fewer diagnostics on stderr (-q = errors only)",
    )


def verbosity_from_args(args: argparse.Namespace) -> int:
    """Net verbosity (``--verbose`` minus ``--quiet``) from parsed *args*."""
    return int(getattr(args, "verbose", 0)) - int(getattr(args, "quiet", 0))


def configure_logging(
    args: argparse.Namespace | None = None,
    *,
    verbosity: int | None = None,
    stream: IO[str] | None = None,
) -> logging.Logger:
    """Install (or retune) the shared stderr handler on the ``repro`` logger.

    Idempotent: repeated calls replace the handler this module installed
    rather than stacking duplicates, so tests and nested CLIs can call it
    freely.  Returns the configured root ``repro`` logger.
    """
    if verbosity is None:
        verbosity = verbosity_from_args(args) if args is not None else 0
    index = min(len(_LEVELS) - 1, max(0, _DEFAULT_INDEX - verbosity))
    logger = logging.getLogger(_ROOT_LOGGER)
    logger.setLevel(_LEVELS[index])
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_FLAG, False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter("[%(name)s] %(message)s"))
    setattr(handler, _HANDLER_FLAG, True)
    logger.addHandler(handler)
    # Diagnostics must not propagate into an application's root handlers too.
    logger.propagate = False
    return logger
