"""The :class:`TraceRecorder`: event stream, sinks and sampling.

The recorder is the single object the instrumentation hooks talk to.  A
``None`` recorder *is* the null object — every hook in
:class:`~repro.core.processor.MCDProcessor` guards its emission with one
``is not None`` test (hoisted to a precomputed boolean on the hot paths), so
the disabled path does no event work at all and the golden digests are
bit-identical with tracing on and off.

Sinks receive every surviving event:

:class:`RingBufferSink`
    A bounded in-memory ring (``collections.deque(maxlen=...)``) for
    programmatic inspection; old events fall off the front.
:class:`JsonlSink`
    One JSON object per line, first line a schema-versioned header.
    :func:`read_trace` round-trips the file and rejects other schemas.

Sampling is deterministic and per event type: ``sampling={"sync-penalty":
100}`` keeps the 1st, 101st, 201st... sync-penalty event, counted in
emission order, so two runs of the same job produce the identical sampled
stream — no clocks, no RNG.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Any, Iterable, Mapping, Protocol, Sequence

from repro.obs.events import EVENT_TYPES, SCHEMA_VERSION, TraceEvent, TraceSchemaError

__all__ = [
    "JsonlSink",
    "RingBufferSink",
    "TraceRecorder",
    "read_trace",
    "trace_header",
]

#: Marker stored in the JSONL header line so arbitrary JSON files are not
#: misread as traces.
_TRACE_KIND = "repro-obs-trace"


class TraceSink(Protocol):
    """Anything that can receive trace events (duck-typed)."""

    def write(self, event: TraceEvent) -> None:  # pragma: no cover - protocol
        ...

    def close(self) -> None:  # pragma: no cover - protocol
        ...


class RingBufferSink:
    """Keep the most recent *capacity* events in memory."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("ring capacity must be positive")
        self.capacity = capacity
        self._ring: deque[TraceEvent] = deque(maxlen=capacity)

    def write(self, event: TraceEvent) -> None:
        self._ring.append(event)

    def close(self) -> None:
        """Nothing to release; the ring stays readable after close."""

    @property
    def events(self) -> list[TraceEvent]:
        """The buffered events, oldest first."""
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)


class JsonlSink:
    """Append events to a JSONL file, one object per line.

    The first line is a header recording the schema version and caller
    metadata (job label, fingerprint...); :func:`read_trace` validates it
    before parsing any event.  Trace files are diagnostic artefacts, not
    result-cache content — they carry no fingerprint version and must never
    be merged into a result store (see ``docs/OPERATIONS.md``).
    """

    def __init__(self, path: str | Path, *, meta: Mapping[str, Any] | None = None) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("w", encoding="utf-8")
        self._handle.write(json.dumps(trace_header(meta), sort_keys=True) + "\n")

    def write(self, event: TraceEvent) -> None:
        self._handle.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()


def trace_header(meta: Mapping[str, Any] | None = None) -> dict[str, Any]:
    """The JSONL header object for a new trace file."""
    return {
        "kind": _TRACE_KIND,
        "schema": SCHEMA_VERSION,
        "meta": dict(meta) if meta else {},
    }


class TraceRecorder:
    """Fan trace events out to sinks, with type filtering and sampling.

    Parameters
    ----------
    sinks:
        The sinks receiving surviving events.
    event_types:
        Event types to record (``None`` = all).  Filtering happens before
        sampling and before any :class:`TraceEvent` is constructed, so an
        unwanted type costs one set lookup.
    sampling:
        Per-type decimation: ``{type: n}`` keeps every *n*-th event of that
        type (the 1st, ``n+1``-th, ...), counted deterministically in
        emission order.  Types absent from the mapping are kept in full.
    """

    def __init__(
        self,
        sinks: Sequence[TraceSink] = (),
        *,
        event_types: Iterable[str] | None = None,
        sampling: Mapping[str, int] | None = None,
    ) -> None:
        self._sinks = list(sinks)
        if event_types is None:
            self._wanted = EVENT_TYPES
        else:
            wanted = frozenset(event_types)
            unknown = wanted - EVENT_TYPES
            if unknown:
                raise ValueError(f"unknown trace event types: {sorted(unknown)}")
            self._wanted = wanted
        self._sampling: dict[str, int] = {}
        for event_type, stride in (sampling or {}).items():
            if event_type not in EVENT_TYPES:
                raise ValueError(f"unknown trace event type in sampling: {event_type!r}")
            if int(stride) < 1:
                raise ValueError("sampling strides must be >= 1")
            self._sampling[event_type] = int(stride)
        #: Events offered per type (post type-filter, pre-sampling).
        self.seen: dict[str, int] = {}
        #: Events actually delivered to the sinks, per type.
        self.emitted: dict[str, int] = {}

    def wants(self, event_type: str) -> bool:
        """True when *event_type* passes the type filter.

        The processor hoists ``recorder is not None and recorder.wants(t)``
        into per-type booleans at construction, so hot-loop emission guards
        are a single local truth test.
        """
        return event_type in self._wanted

    def emit(self, event_type: str, time_ps: int, committed: int, **data: Any) -> None:
        """Record one event (subject to the type filter and sampling)."""
        if event_type not in self._wanted:
            return
        seen = self.seen.get(event_type, 0)
        self.seen[event_type] = seen + 1
        stride = self._sampling.get(event_type, 1)
        if stride > 1 and seen % stride:
            return
        event = TraceEvent(type=event_type, time_ps=time_ps, committed=committed, data=data)
        self.emitted[event_type] = self.emitted.get(event_type, 0) + 1
        for sink in self._sinks:
            sink.write(event)

    def close(self) -> None:
        """Close every sink (flushes JSONL files)."""
        for sink in self._sinks:
            sink.close()

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_trace(path: str | Path) -> tuple[dict[str, Any], list[TraceEvent]]:
    """Parse a JSONL trace file into ``(header_meta, events)``.

    Raises :class:`TraceSchemaError` when the file is not a trace or was
    written under a different :data:`~repro.obs.events.SCHEMA_VERSION` —
    a versioned format must reject, not misparse.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        first = handle.readline()
        if not first.strip():
            raise TraceSchemaError(f"{path} is empty; not a trace file")
        try:
            header = json.loads(first)
        except ValueError as error:
            raise TraceSchemaError(f"{path} has no JSON header line: {error}") from error
        if not isinstance(header, dict) or header.get("kind") != _TRACE_KIND:
            raise TraceSchemaError(f"{path} is not a {_TRACE_KIND} file")
        schema = header.get("schema")
        if schema != SCHEMA_VERSION:
            raise TraceSchemaError(
                f"{path} was written under trace schema {schema!r}, but this "
                f"build reads schema {SCHEMA_VERSION}; regenerate the trace"
            )
        events = []
        for line_number, line in enumerate(handle, start=2):
            if not line.strip():
                continue
            try:
                events.append(TraceEvent.from_dict(json.loads(line)))
            except (ValueError, KeyError, TypeError) as error:
                raise TraceSchemaError(
                    f"{path}:{line_number}: malformed trace event ({error})"
                ) from error
    return dict(header.get("meta", {})), events
