"""The campaign report: one ASCII/Markdown view of a campaign's ledgers.

``python -m repro.obs report`` fuses shard ledgers through
:func:`~repro.obs.ledger.summarize_ledgers` and renders the operator-facing
summary in one place: work accounting (jobs, simulations, cache
efficiency), engine throughput and utilization, the job wall-clock and
queue-latency histograms as ASCII bars, per-shard balance, and — when the
operator points it at them — result-store health (``--store``, via
:func:`repro.engine.cli.inspect_store`) and reconfiguration totals joined
from telemetry traces (``--traces``, via
:func:`repro.obs.recorder.read_trace`).

Pure rendering: everything here reads ledgers/traces/stores and formats
text; nothing is written back, and nothing simulation-visible depends on
it.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.obs.events import RECONFIGURATION
from repro.obs.ledger import LedgerSummary
from repro.obs.metrics import Histogram
from repro.obs.recorder import read_trace

__all__ = ["render_histogram", "render_report"]

#: Width (characters) of the widest histogram/balance bar.
_BAR_WIDTH = 30


def _bar(value: float, maximum: float, width: int = _BAR_WIDTH) -> str:
    if maximum <= 0 or value <= 0:
        return ""
    length = max(1, round(width * value / maximum))
    return "#" * length


def _heading(title: str, markdown: bool) -> list[str]:
    if markdown:
        return [f"## {title}", ""]
    return [title, "-" * len(title)]


def _table(headers: Sequence[str], rows: Sequence[Sequence[str]], markdown: bool) -> list[str]:
    if markdown:
        lines = ["| " + " | ".join(headers) + " |"]
        lines.append("|" + "|".join(" --- " for _ in headers) + "|")
        for row in rows:
            lines.append("| " + " | ".join(row) + " |")
        return lines
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = ["  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)).rstrip()]
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip())
    return lines


def render_histogram(histogram: Histogram, *, markdown: bool = False) -> list[str]:
    """ASCII bucket bars for one histogram (empty buckets elided)."""
    if not histogram.count:
        return ["(no samples)"]
    rows: list[list[str]] = []
    peak = max(histogram.counts)
    for index, count in enumerate(histogram.counts):
        if not count:
            continue
        label = (
            f"<= {format(histogram.bounds[index], 'g')}s"
            if index < len(histogram.bounds)
            else f"> {format(histogram.bounds[-1], 'g')}s"
        )
        bar = _bar(count, peak)
        rows.append([label, str(count), f"`{bar}`" if markdown else bar])
    lines = _table(["bucket", "count", "share"], rows, markdown)
    lines.append(
        f"{histogram.count} sample(s): mean {histogram.mean:.3f}s, "
        f"min {histogram.min:.3f}s, max {histogram.max:.3f}s"
    )
    return lines


def _reconfiguration_totals(traces: Sequence[str | Path]) -> dict[str, Any]:
    """Join reconfiguration counts per structure across trace files."""
    totals: dict[str, int] = {}
    events_seen = 0
    for path in traces:
        _, events = read_trace(path)
        for event in events:
            if event.type != RECONFIGURATION:
                continue
            events_seen += 1
            structure = str(event.data.get("structure", "?"))
            totals[structure] = totals.get(structure, 0) + 1
    return {"traces": len(list(traces)), "reconfigurations": events_seen, "structures": totals}


def render_report(
    summary: LedgerSummary,
    *,
    store: Mapping[str, Any] | None = None,
    traces: Sequence[str | Path] | None = None,
    markdown: bool = False,
) -> str:
    """Render the campaign report for *summary* (plus optional joins)."""
    lines: list[str] = []
    if markdown:
        lines += ["# Campaign report", ""]
    else:
        lines += ["campaign report", "=" * len("campaign report")]

    lines += _heading("Campaign", markdown)
    executor = ", ".join(sorted(summary.executor_modes)) or "none"
    lines += _table(
        ["field", "value"],
        [
            ["ledgers", str(summary.ledgers)],
            ["records", f"{summary.records} ({summary.batches} batch, {summary.submits} submit)"],
            ["executor modes", executor],
            ["campaign digest", summary.fingerprint_digest()[:16]],
        ],
        markdown,
    )
    lines.append("")

    lines += _heading("Work", markdown)
    jobs = summary.jobs_submitted
    hits = summary.cache_hits
    efficiency = f"{hits / jobs:.0%}" if jobs else "n/a"
    lines += _table(
        ["field", "value"],
        [
            ["jobs submitted", str(jobs)],
            ["unique jobs", str(len(summary.unique_fingerprints))],
            ["simulations", str(summary.simulations)],
            ["cache hits", f"{hits} ({efficiency} of submitted)"],
            ["batch duplicates", str(summary.batch_duplicates)],
        ],
        markdown,
    )
    lines.append("")

    lines += _heading("Engine", markdown)
    metrics = summary.metrics
    throughput = (
        f"{metrics.jobs_completed / metrics.busy_seconds:.2f} jobs/s busy"
        if metrics.busy_seconds > 0
        else "n/a"
    )
    lines += _table(
        ["field", "value"],
        [
            ["jobs completed", str(metrics.jobs_completed)],
            ["batches", str(metrics.batches)],
            ["busy seconds", f"{metrics.busy_seconds:.3f}"],
            ["capacity seconds", f"{metrics.capacity_seconds:.3f}"],
            ["worker utilization", f"{metrics.worker_utilization:.0%}"],
            ["throughput", throughput],
        ],
        markdown,
    )
    lines.append("")

    lines += _heading("Job wall-clock", markdown)
    lines += render_histogram(metrics.job_seconds, markdown=markdown)
    lines.append("")
    lines += _heading("Queue latency", markdown)
    lines += render_histogram(metrics.queue_latency, markdown=markdown)
    lines.append("")

    if summary.shards:
        lines += _heading("Per-shard balance", markdown)
        peak_busy = max(summary.busy_seconds_by_shard.values(), default=0.0)
        rows = []
        for shard in sorted(summary.shards):
            stats = summary.shards[shard]
            busy = summary.busy_seconds_by_shard.get(shard, 0.0)
            bar = _bar(busy, peak_busy)
            rows.append(
                [
                    shard,
                    str(stats["jobs"]),
                    str(stats["simulations"]),
                    str(stats["cache_hits"]),
                    f"{busy:.3f}",
                    f"`{bar}`" if markdown else bar,
                ]
            )
        lines += _table(
            ["shard", "jobs", "simulations", "cache hits", "busy s", "balance"], rows, markdown
        )
        lines.append("")

    if store is not None:
        lines += _heading("Result store", markdown)
        lines += _table(
            ["field", "value"],
            [
                ["directory", str(store.get("directory", "?"))],
                ["entries", str(store.get("entries", "?"))],
                ["servable", str(store.get("servable_entries", "?"))],
                ["unreadable", str(store.get("unreadable_entries", "?"))],
                ["version mismatches", str(store.get("version_mismatches", "?"))],
            ],
            markdown,
        )
        lines.append("")

    if traces:
        totals = _reconfiguration_totals(traces)
        lines += _heading("Reconfigurations (from traces)", markdown)
        rows = [
            [structure, str(count)]
            for structure, count in sorted(totals["structures"].items())
        ]
        rows.append(["total", str(totals["reconfigurations"])])
        lines += _table(["structure", "reconfigurations"], rows, markdown)
        lines.append(f"joined from {totals['traces']} trace file(s)")
        lines.append("")

    return "\n".join(lines).rstrip() + "\n"
