"""The persistent run ledger: append-only JSONL accounting of engine work.

Every :class:`~repro.engine.engine.ExperimentEngine` batch (and every
asynchronous ``submit()`` simulation) can be appended to a **ledger file** —
one JSON object per line, first line a schema-versioned header, mirroring
the trace-file format of :mod:`repro.obs.recorder`.  Where a trace records
what one *simulation* did, the ledger records what a *campaign* did: which
job fingerprints ran where, how long each took, what the cache served, and
the engine's cumulative :class:`~repro.obs.metrics.EngineMetrics` snapshot
after each batch.  Ledgers are durable — an operator can query a campaign
long after every worker process has exited — and shard workers each write
their own file into a shared ``--ledger DIR``, fused afterwards by
``python -m repro.obs ledger merge``.

Ledgers are *observability-only*: nothing in them flows back into a
simulation, a fingerprint or a digest.  They are also the one sanctioned
home of host wall-clock timestamps (behind reasoned ``det-wallclock``
allows): an operator reading a ledger wants to know *when* a batch ran,
and nothing simulation-visible can read it back.

File layout (``*.ledger.jsonl``)::

    {"kind": "repro-obs-ledger", "schema": 1, "meta": {...}}   <- header
    {"record": "batch",  ...}                                  <- one per batch
    {"record": "submit", ...}                                  <- one per async sim

:func:`read_ledger` validates the header (and every record line) the same
way :func:`repro.obs.recorder.read_trace` validates traces: foreign, stale
or truncated files raise :class:`LedgerSchemaError` instead of misparsing.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Any, Iterable, Mapping, Sequence

from repro.obs.metrics import EngineMetrics

__all__ = [
    "LEDGER_SCHEMA_VERSION",
    "LEDGER_SUFFIX",
    "LedgerSchemaError",
    "LedgerSummary",
    "LedgerWriter",
    "ledger_files",
    "ledger_header",
    "merge_ledgers",
    "open_ledger",
    "read_ledger",
    "summarize_ledgers",
]

#: Version of the ledger header and record layout.  Bump when a record type
#: changes shape; readers refuse other versions.
LEDGER_SCHEMA_VERSION = 1

#: Marker stored in the header line so arbitrary JSONL files (including
#: trace files, which share the container format) are never misread.
_LEDGER_KIND = "repro-obs-ledger"

#: Canonical file suffix; :func:`ledger_files` discovers by it.
LEDGER_SUFFIX = ".ledger.jsonl"

#: The record types this build writes and reads.
_RECORD_TYPES = frozenset({"batch", "submit"})


class LedgerSchemaError(ValueError):
    """A ledger file is foreign, truncated, or from another schema version."""


def ledger_header(meta: Mapping[str, Any] | None = None) -> dict[str, Any]:
    """The JSONL header object for a new ledger file."""
    return {
        "kind": _LEDGER_KIND,
        "schema": LEDGER_SCHEMA_VERSION,
        "meta": dict(meta) if meta else {},
    }


def _validate_header(header: Any, path: Path) -> dict[str, Any]:
    if not isinstance(header, dict) or header.get("kind") != _LEDGER_KIND:
        raise LedgerSchemaError(f"{path} is not a {_LEDGER_KIND} file")
    schema = header.get("schema")
    if schema != LEDGER_SCHEMA_VERSION:
        raise LedgerSchemaError(
            f"{path} was written under ledger schema {schema!r}, but this "
            f"build reads schema {LEDGER_SCHEMA_VERSION}; regenerate the ledger"
        )
    meta = header.get("meta", {})
    return dict(meta) if isinstance(meta, dict) else {}


class LedgerWriter:
    """Append engine accounting records to one ledger file.

    The file is opened in append mode and is genuinely append-only: a
    re-started worker pointed at its existing ledger validates the header
    and continues after the previous records (the campaign's full history
    stays in one place).  Every record is written as one line and flushed
    immediately, so a killed worker loses at most the line it was writing
    — and :func:`read_ledger` rejects that torn tail loudly.
    """

    def __init__(self, path: str | Path, *, meta: Mapping[str, Any] | None = None) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.meta = dict(meta) if meta else {}
        existing = self.path.exists() and self.path.stat().st_size > 0
        if existing:
            # Appending to a foreign or stale file must fail before the
            # first record corrupts it.
            header_meta, _ = read_ledger(self.path)
            self.meta = header_meta
        self._handle: IO[str] = self.path.open("a", encoding="utf-8")
        if not existing:
            self._handle.write(json.dumps(ledger_header(self.meta), sort_keys=True) + "\n")
            self._handle.flush()

    def append(self, record: Mapping[str, Any]) -> None:
        """Write one record line (caller supplies ``record`` type key)."""
        kind = record.get("record")
        if kind not in _RECORD_TYPES:
            raise ValueError(
                f"unknown ledger record type {kind!r}; expected one of "
                f"{sorted(_RECORD_TYPES)}"
            )
        self._handle.write(json.dumps(dict(record), sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "LedgerWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def wallclock_timestamp() -> float:
    """Host wall-clock for ledger record timestamps (observability-only).

    The one sanctioned wall-clock source of the ledger layer: timestamps
    let an operator line a ledger up against worker logs and dashboards.
    Nothing simulation-visible reads them — summaries and equivalence
    checks explicitly ignore timestamp fields.
    """
    # repro: allow(det-wallclock) — ledger record timestamps: operator-facing provenance only; excluded from fingerprints, digests and ledger-equivalence comparisons
    return time.time()


def open_ledger(
    directory: str | Path,
    *,
    label: str,
    shard: str | None = None,
    meta: Mapping[str, Any] | None = None,
) -> LedgerWriter:
    """Open (or continue) the ledger file for one worker in *directory*.

    The file name is derived from *label* and the shard identity, so the
    shard workers of one campaign sharing a ``--ledger DIR`` never collide:
    ``DIR/<label>-shard-0-of-2.ledger.jsonl`` for shard ``0/2``, plain
    ``DIR/<label>.ledger.jsonl`` otherwise.  *meta* (plus the shard and the
    writer's ``FINGERPRINT_VERSION``) lands in the header.
    """
    directory = Path(directory)
    safe_label = "".join(ch if (ch.isalnum() or ch in "-_.") else "-" for ch in label)
    if shard is not None:
        index, _, count = shard.partition("/")
        name = f"{safe_label}-shard-{index}-of-{count}{LEDGER_SUFFIX}"
    else:
        name = f"{safe_label}{LEDGER_SUFFIX}"
    # Imported here: repro.engine.job imports repro.obs at package level, so
    # a module-level import would create a cycle.
    from repro.engine.job import FINGERPRINT_VERSION

    header_meta: dict[str, Any] = dict(meta) if meta else {}
    header_meta.setdefault("label", label)
    header_meta.setdefault("shard", shard)
    header_meta.setdefault("fingerprint_version", FINGERPRINT_VERSION)
    header_meta.setdefault("created", time.strftime("%Y-%m-%dT%H:%M:%S%z"))
    return LedgerWriter(directory / name, meta=header_meta)


def read_ledger(path: str | Path) -> tuple[dict[str, Any], list[dict[str, Any]]]:
    """Parse a ledger file into ``(header_meta, records)``.

    Raises :class:`LedgerSchemaError` when the file is not a ledger, was
    written under a different :data:`LEDGER_SCHEMA_VERSION`, or contains a
    truncated/malformed record line — a versioned format must reject, not
    misparse, and a torn tail line (killed writer) must surface rather than
    silently shortening the campaign's history.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        first = handle.readline()
        if not first.strip():
            raise LedgerSchemaError(f"{path} is empty; not a ledger file")
        try:
            header = json.loads(first)
        except ValueError as error:
            raise LedgerSchemaError(f"{path} has no JSON header line: {error}") from error
        meta = _validate_header(header, path)
        records: list[dict[str, Any]] = []
        for line_number, line in enumerate(handle, start=2):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError as error:
                raise LedgerSchemaError(
                    f"{path}:{line_number}: truncated or malformed ledger "
                    f"record ({error}); the writer may have been killed "
                    f"mid-append — repair by deleting the torn final line"
                ) from error
            if not isinstance(record, dict) or record.get("record") not in _RECORD_TYPES:
                raise LedgerSchemaError(
                    f"{path}:{line_number}: unknown ledger record "
                    f"{record.get('record') if isinstance(record, dict) else record!r}"
                )
            records.append(record)
    return meta, records


def ledger_files(source: str | Path) -> list[Path]:
    """The ledger files denoted by *source* (a file or a directory).

    A directory expands to its ``*.ledger.jsonl`` children, sorted by name
    so every caller sees the same deterministic order.
    """
    source = Path(source)
    if source.is_dir():
        found = sorted(source.glob(f"*{LEDGER_SUFFIX}"))
        if not found:
            raise FileNotFoundError(f"no *{LEDGER_SUFFIX} files in {source}")
        return found
    if not source.exists():
        raise FileNotFoundError(f"ledger source {source} does not exist")
    return [source]


def _expand_sources(sources: Iterable[str | Path]) -> list[Path]:
    paths: list[Path] = []
    for source in sources:
        for path in ledger_files(source):
            if path not in paths:
                paths.append(path)
    return paths


def merge_ledgers(destination: str | Path, sources: Sequence[str | Path]) -> int:
    """Fuse shard ledger files into one campaign ledger at *destination*.

    Mirrors :meth:`repro.engine.cache.ResultCache.merge`: every source file
    is fully validated (header kind, schema version, every record line)
    *before* anything is written, so a foreign or torn source refuses the
    merge instead of half-applying it.  Records keep their per-file order,
    with files processed in sorted-name order; each record is annotated
    with its source ledger's shard identity (``shard`` key, when absent) so
    the fused view keeps per-worker attribution.  Returns the number of
    records written.
    """
    paths = _expand_sources(sources)
    destination = Path(destination)
    loaded: list[tuple[dict[str, Any], list[dict[str, Any]]]] = []
    for path in paths:
        if path.resolve() == destination.resolve():
            raise ValueError(f"merge source {path} is the destination itself")
        loaded.append(read_ledger(path))

    merged_meta: dict[str, Any] = {
        "label": "merged",
        "merged_from": [str(path) for path in paths],
        "shards": sorted(
            {str(meta.get("shard")) for meta, _ in loaded if meta.get("shard") is not None}
        ),
    }
    versions = sorted(
        {
            str(meta["fingerprint_version"])
            for meta, _ in loaded
            if "fingerprint_version" in meta
        }
    )
    if len(versions) > 1:
        raise LedgerSchemaError(
            f"refusing to merge ledgers written under different "
            f"FINGERPRINT_VERSIONs ({', '.join(versions)}); the campaigns "
            f"they describe are not comparable"
        )
    if versions:
        merged_meta["fingerprint_version"] = int(versions[0])

    destination.parent.mkdir(parents=True, exist_ok=True)
    written = 0
    with destination.open("w", encoding="utf-8") as handle:
        handle.write(json.dumps(ledger_header(merged_meta), sort_keys=True) + "\n")
        for (meta, records), path in zip(loaded, paths):
            shard = meta.get("shard")
            for record in records:
                annotated = dict(record)
                annotated.setdefault("shard", shard)
                annotated.setdefault("source_ledger", path.name)
                handle.write(json.dumps(annotated, sort_keys=True) + "\n")
                written += 1
    return written


# ------------------------------------------------------------- aggregation


@dataclass(slots=True)
class LedgerSummary:
    """The campaign view fused from one or more ledgers.

    The deterministic fields — job/fingerprint accounting — are equal
    between an N-shard merged ledger and a single-process run of the same
    campaign; the timing fields (metrics, seconds, timestamps) are
    host-and-partition dependent by nature and are excluded from
    equivalence comparisons (:meth:`equivalence_key`).
    """

    ledgers: int = 0
    records: int = 0
    batches: int = 0
    submits: int = 0
    jobs_submitted: int = 0
    cache_hits: int = 0
    batch_duplicates: int = 0
    simulated_fingerprints: set[str] = field(default_factory=set)
    served_fingerprints: set[str] = field(default_factory=set)
    executor_modes: set[str] = field(default_factory=set)
    shards: dict[str, dict[str, Any]] = field(default_factory=dict)
    metrics: EngineMetrics = field(default_factory=EngineMetrics)
    busy_seconds_by_shard: dict[str, float] = field(default_factory=dict)

    @property
    def simulations(self) -> int:
        """Distinct fingerprints simulated across every ledger."""
        return len(self.simulated_fingerprints)

    @property
    def unique_fingerprints(self) -> set[str]:
        """Every fingerprint the campaign touched (simulated or served)."""
        return self.simulated_fingerprints | self.served_fingerprints

    def fingerprint_digest(self) -> str:
        """sha256 over the sorted unique fingerprints — the campaign identity.

        Two ledgers summarize to the same digest exactly when they cover the
        same simulated work, however it was partitioned; the CI equivalence
        check compares merged-shard and single-process digests.
        """
        payload = "\n".join(sorted(self.unique_fingerprints)).encode("ascii")
        return hashlib.sha256(payload).hexdigest()

    def equivalence_key(self) -> dict[str, Any]:
        """The partition-independent fields, for fleet-equivalence checks.

        Deliberately excludes timestamps, wall-clock seconds, cache-hit and
        duplicate counts (a shard worker's pre-deduplicated slice sees
        neither the duplicates nor the warm entries a single process
        would), shard identities and executor modes.
        """
        return {
            "simulations": self.simulations,
            "unique_jobs": len(self.unique_fingerprints),
            "fingerprint_digest": self.fingerprint_digest(),
        }

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form for ``--json`` output."""
        return {
            "ledgers": self.ledgers,
            "records": self.records,
            "batches": self.batches,
            "submits": self.submits,
            "jobs_submitted": self.jobs_submitted,
            "cache_hits": self.cache_hits,
            "batch_duplicates": self.batch_duplicates,
            "simulations": self.simulations,
            "unique_jobs": len(self.unique_fingerprints),
            "fingerprint_digest": self.fingerprint_digest(),
            "executor_modes": sorted(self.executor_modes),
            "shards": {name: dict(stats) for name, stats in sorted(self.shards.items())},
            "metrics": self.metrics.to_dict(),
            "equivalence_key": self.equivalence_key(),
        }


def _shard_key(record: Mapping[str, Any], meta: Mapping[str, Any]) -> str:
    shard = record.get("shard", meta.get("shard"))
    return str(shard) if shard is not None else "unsharded"


def summarize_ledgers(sources: Sequence[str | Path]) -> LedgerSummary:
    """Fuse *sources* (ledger files, directories, or a merged ledger).

    Validates every file via :func:`read_ledger`; metrics snapshots are
    reloaded through :meth:`EngineMetrics.from_dict` and fused bucket-wise
    with :meth:`EngineMetrics.merge`.  Because each record carries the
    writer's *cumulative* metrics snapshot, only the final snapshot per
    ledger file is merged (per-batch deltas would double-count).
    """
    summary = LedgerSummary()
    for path in _expand_sources(sources):
        meta, records = read_ledger(path)
        summary.ledgers += 1
        final_metrics: dict[str, Mapping[str, Any]] = {}
        for record in records:
            summary.records += 1
            shard = _shard_key(record, meta)
            stats = summary.shards.setdefault(
                shard,
                {
                    "batches": 0,
                    "submits": 0,
                    "jobs": 0,
                    "simulations": 0,
                    "cache_hits": 0,
                    "busy_seconds": 0.0,
                },
            )
            simulated = [str(fp) for fp in record.get("simulated", [])]
            served = [str(fp) for fp in record.get("cached", [])]
            summary.simulated_fingerprints.update(simulated)
            summary.served_fingerprints.update(served)
            summary.jobs_submitted += int(record.get("jobs", 0))
            summary.cache_hits += len(served)
            summary.batch_duplicates += int(record.get("duplicates", 0))
            stats["jobs"] += int(record.get("jobs", 0))
            stats["simulations"] += len(simulated)
            stats["cache_hits"] += len(served)
            job_seconds = record.get("job_seconds", {})
            if isinstance(job_seconds, Mapping):
                stats["busy_seconds"] += sum(float(s) for s in job_seconds.values())
            if record.get("record") == "batch":
                summary.batches += 1
                stats["batches"] += 1
            else:
                summary.submits += 1
                stats["submits"] += 1
            executor = record.get("executor")
            if executor:
                summary.executor_modes.add(str(executor))
            metrics_snapshot = record.get("metrics")
            if isinstance(metrics_snapshot, Mapping):
                # Snapshots are cumulative per engine session, so the last
                # one per (writer, session) wins.  In a merged ledger the
                # writer is the record's source_ledger annotation; the
                # session token distinguishes a worker re-run appending to
                # its own ledger (each process starts fresh metrics).
                writer = str(record.get("source_ledger", path))
                session = str(record.get("engine_session", ""))
                final_metrics[f"{writer}#{session}"] = metrics_snapshot
        for snapshot in final_metrics.values():
            summary.metrics.merge(EngineMetrics.from_dict(snapshot))
    for shard, stats in summary.shards.items():
        summary.busy_seconds_by_shard[shard] = float(stats["busy_seconds"])
    return summary
