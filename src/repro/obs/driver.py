"""Traced-run driver: record a telemetry trace for a scenario or workload.

The driver builds the same phase-adaptive job the campaign and sweep layers
run (``BASE_ADAPTIVE`` spec, B partitions, phase-adaptive controllers) and
executes it through :func:`repro.engine.runner.run_job` **directly**, never
through the engine cache: trace options are excluded from the job
fingerprint, so a warm cache would serve the result without simulating —
and therefore without producing a trace.

Scenario phase boundaries are synthesised here, not emitted by the
processor: the simulator has no notion of the scenario phase program (the
generator cycles phases by trace position), so the driver computes which
program boundaries fall inside the measured window and appends
``phase-boundary`` events keyed by committed-instruction position
(``time_ps=0`` — synthesised events carry no simulated time).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import RunResult
from repro.engine.job import DEFAULT_TRACE_SEED, SimulationJob, SpecKind
from repro.engine.runner import run_job
from repro.obs.events import PHASE_BOUNDARY
from repro.obs.recorder import JsonlSink, TraceRecorder
from repro.scenarios.library import SCENARIOS
from repro.scenarios.spec import ScenarioSpec
from repro.workloads.characteristics import WorkloadProfile
from repro.workloads.suites import get_workload

__all__ = ["TracedRun", "resolve_target", "run_traced", "traced_job"]


@dataclass(slots=True)
class TracedRun:
    """Outcome of one traced simulation."""

    result: RunResult
    path: str
    job_label: str
    scenario: ScenarioSpec | None
    #: Events offered per type (post type-filter, pre-sampling).
    seen: dict[str, int]
    #: Events delivered to the trace file, per type.
    emitted: dict[str, int]


def resolve_target(name: str) -> tuple[WorkloadProfile, ScenarioSpec | None]:
    """Resolve *name* as a scenario (preferred) or a benchmark workload."""
    spec = SCENARIOS.get(name)
    if spec is not None:
        return spec.build_profile(), spec
    try:
        return get_workload(name), None
    except KeyError:
        raise KeyError(
            f"unknown scenario or workload {name!r}; see "
            f"'python -m repro.scenarios list' for scenarios and "
            f"'python -m repro.bench --list' for workloads"
        ) from None


def traced_job(
    profile: WorkloadProfile,
    *,
    window: int | None = None,
    warmup: int | None = None,
    trace_seed: int = DEFAULT_TRACE_SEED,
    seed: int = 0,
) -> SimulationJob:
    """The phase-adaptive job the campaign/sweep layers would run.

    Mirrors the sweep layer's phase-adaptive job construction: base adaptive
    machine, B partitions enabled, controllers on, window-scaled control
    defaults (``control=None`` resolves them).
    """
    return SimulationJob(
        profile=profile,
        spec_kind=SpecKind.BASE_ADAPTIVE,
        use_b_partitions=True,
        window=window,
        warmup=warmup,
        trace_seed=trace_seed,
        phase_adaptive=True,
        seed=seed,
    )


def _emit_phase_boundaries(
    recorder: TraceRecorder, spec: ScenarioSpec, *, window: int, warmup: int
) -> None:
    """Append the scenario's in-window phase boundaries to *recorder*.

    The generator cycles the phase program by trace position, so phase *i*
    begins at every ``k * cycle + sum(lengths[:i])``; boundaries landing in
    ``[warmup, warmup + window]`` map to committed position
    ``position - warmup``.  Position 0 (program start) is not a boundary.
    """
    phases = spec.phases
    if not phases:
        return
    offsets = []
    acc = 0
    for index, phase in enumerate(phases):
        offsets.append((acc, index, phase))
        acc += phase.length
    cycle = acc
    end = warmup + window
    base = (warmup // cycle) * cycle
    while base <= end:
        for offset, index, phase in offsets:
            position = base + offset
            if position == 0 or position < warmup or position > end:
                continue
            recorder.emit(
                PHASE_BOUNDARY,
                0,
                position - warmup,
                phase_index=index,
                trace_position=position,
                overrides={
                    key: phase.overrides[key] for key in sorted(phase.overrides)
                },
            )
        base += cycle


def run_traced(
    name: str,
    *,
    path: str,
    window: int | None = None,
    warmup: int | None = None,
    events: tuple[str, ...] | None = None,
    sampling: dict[str, int] | None = None,
    trace_seed: int = DEFAULT_TRACE_SEED,
    seed: int = 0,
) -> TracedRun:
    """Trace one phase-adaptive run of scenario/workload *name* to *path*."""
    profile, spec = resolve_target(name)
    job = traced_job(
        profile, window=window, warmup=warmup, trace_seed=trace_seed, seed=seed
    )
    sink = JsonlSink(
        path,
        meta={
            "target": name,
            "kind": "scenario" if spec is not None else "workload",
            "job": job.describe(),
            "fingerprint": job.fingerprint(),
            "window": job.resolved_window(),
            "warmup": job.resolved_warmup(),
        },
    )
    recorder = TraceRecorder([sink], event_types=events, sampling=sampling)
    try:
        result = run_job(job, recorder=recorder)
        if spec is not None:
            _emit_phase_boundaries(
                recorder,
                spec,
                window=job.resolved_window(),
                warmup=job.resolved_warmup(),
            )
    finally:
        recorder.close()
    return TracedRun(
        result=result,
        path=path,
        job_label=job.describe(),
        scenario=spec,
        seen=dict(recorder.seen),
        emitted=dict(recorder.emitted),
    )
