"""Whole-program (Program-Adaptive) configuration search for one workload.

The paper's Program-Adaptive mode picks, per application, the adaptive MCD
configuration with the best whole-program run time.  This example performs
the search through the parallel experiment engine, prints every
configuration it evaluated, and reports the winner and its gain over the
fully synchronous baseline.

Usage::

    python examples/design_space_exploration.py [workload-name]
        [--mode factored|exhaustive] [--window N]
        [--workers N|auto] [--cache-dir PATH] [--no-cache]

``--mode exhaustive`` walks all 256 adaptive configurations (slow; use
``--workers auto`` to spread the batch over every core).  ``--cache-dir``
persists results on disk so a repeated search costs nothing.
"""

from __future__ import annotations

import argparse

from repro.analysis import program_adaptive_search, run_synchronous
from repro.analysis.reporting import format_table
from repro.engine import make_engine
from repro.workloads import get_workload


def worker_count(value: str) -> int | str:
    if value == "auto":
        return value
    try:
        workers = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {value!r}"
        ) from None
    if workers < 1:
        raise argparse.ArgumentTypeError("worker count must be at least 1")
    return workers


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description="Program-Adaptive design-space search through the experiment engine"
    )
    parser.add_argument("workload", nargs="?", default="em3d", help="workload name")
    parser.add_argument(
        "--mode",
        choices=("factored", "exhaustive"),
        default="factored",
        help="search mode (factored ~15 simulations, exhaustive 256)",
    )
    parser.add_argument("--window", type=int, default=8_000, help="simulated instructions")
    parser.add_argument(
        "--workers",
        type=worker_count,
        default=1,
        help="worker processes for the sweep ('auto' = one per core)",
    )
    parser.add_argument("--cache-dir", default=None, help="persistent result-cache directory")
    parser.add_argument(
        "--no-cache", action="store_true", help="disable result caching entirely"
    )
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    profile = get_workload(args.workload)
    engine = make_engine(
        workers=args.workers, cache_dir=args.cache_dir, use_cache=not args.no_cache
    )

    print(
        f"searching adaptive configurations for {profile.name} "
        f"(mode={args.mode}, workers={engine.executor.workers})..."
    )
    sweep = program_adaptive_search(
        profile, mode=args.mode, window=args.window, engine=engine
    )
    baseline = run_synchronous(profile, window=args.window, engine=engine)

    rows = []
    for key, result in sorted(
        sweep.evaluated.items(), key=lambda item: item[1].execution_time_ps
    ):
        rows.append(
            (
                key,
                f"{result.execution_time_us:.2f}",
                f"{result.improvement_over(baseline) * 100:+.1f}%",
            )
        )
    print(format_table(("configuration", "time (us)", "vs synchronous"), rows))

    print(
        f"\nbest configuration: {sweep.best_indices.describe()} "
        f"(I$ {sweep.best_result.machine.split('I$')[1].split(',')[0]})"
    )
    print(
        f"program-adaptive improvement over the synchronous baseline: "
        f"{sweep.best_result.improvement_over(baseline) * 100:+.1f}%"
    )
    stats = engine.stats
    print(
        f"engine: {stats.jobs_submitted} jobs, {stats.simulations} simulated, "
        f"{stats.jobs_avoided} served without simulation"
    )


if __name__ == "__main__":
    main()
