"""Whole-program (Program-Adaptive) configuration search for one workload.

The paper's Program-Adaptive mode picks, per application, the adaptive MCD
configuration with the best whole-program run time.  This example performs
the factored search used by the benchmark harness, prints every configuration
it evaluated, and reports the winner and its gain over the fully synchronous
baseline.

Usage::

    python examples/design_space_exploration.py [workload-name] [mode]

``mode`` is ``factored`` (default, ~15 simulations) or ``exhaustive``
(all 256 adaptive configurations — slow).
"""

from __future__ import annotations

import sys

from repro.analysis import program_adaptive_search, run_synchronous
from repro.analysis.reporting import format_table
from repro.workloads import get_workload


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "em3d"
    mode = sys.argv[2] if len(sys.argv) > 2 else "factored"
    window = 8_000
    profile = get_workload(name)

    print(f"searching adaptive configurations for {name} (mode={mode})...")
    sweep = program_adaptive_search(profile, mode=mode, window=window)
    baseline = run_synchronous(profile, window=window)

    rows = []
    for key, result in sorted(
        sweep.evaluated.items(), key=lambda item: item[1].execution_time_ps
    ):
        rows.append(
            (
                key,
                f"{result.execution_time_us:.2f}",
                f"{result.improvement_over(baseline) * 100:+.1f}%",
            )
        )
    print(format_table(("configuration", "time (us)", "vs synchronous"), rows))

    print(
        f"\nbest configuration: {sweep.best_indices.describe()} "
        f"(I$ {sweep.best_result.machine.split('I$')[1].split(',')[0]})"
    )
    print(
        f"program-adaptive improvement over the synchronous baseline: "
        f"{sweep.best_result.improvement_over(baseline) * 100:+.1f}%"
    )


if __name__ == "__main__":
    main()
