"""Energy breakdown of the paper's three machines on one workload.

Runs the fully synchronous baseline, the Program-Adaptive MCD machine (base
configuration, A partitions only) and the Phase-Adaptive MCD machine, then
prints each machine's per-structure energy breakdown and the comparative
energy / ED / ED^2 table — the energy view of one Figure 6 row.

Usage::

    python examples/energy_breakdown.py [workload] [--window N] [--full]

``--full`` prints the complete per-structure tables; without it only the
summary comparison is shown.
"""

from __future__ import annotations

import argparse

from repro.analysis import compare_workload, energy_table, improvement_table
from repro.energy import energy_report
from repro.workloads import get_workload, workload_names


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("workload", nargs="?", default="gcc", help="workload name")
    parser.add_argument("--window", type=int, default=6_000, help="measured window")
    parser.add_argument("--warmup", type=int, default=None, help="warm-up instructions")
    parser.add_argument(
        "--full", action="store_true", help="print full per-structure breakdowns"
    )
    args = parser.parse_args()
    if args.workload not in workload_names():
        raise SystemExit(
            f"unknown workload {args.workload!r}; try one of {workload_names()[:8]} ..."
        )
    profile = get_workload(args.workload)

    print(f"workload: {profile.name} ({profile.suite}) — {profile.description}")
    print(f"simulating {args.window} instructions per machine...\n")
    row = compare_workload(profile, window=args.window, warmup=args.warmup)

    machines = (
        ("fully synchronous (baseline)", row.synchronous),
        (f"program-adaptive ({row.program_best_indices.describe()})", row.program_adaptive),
        ("phase-adaptive", row.phase_adaptive),
    )
    for label, result in machines:
        report = energy_report(result)
        print(f"== {label} ==")
        if args.full:
            print(report.render())
        else:
            domains = report.by_domain()
            shares = ", ".join(
                f"{domain} {bucket['total_nj'] / (report.total_nj or 1.0) * 100:.0f}%"
                for domain, bucket in sorted(domains.items())
            )
            print(
                f"total {report.total_nj:.0f} nJ "
                f"({report.energy_per_instruction_nj:.2f} nJ/instruction); {shares}"
            )
        print()

    print("run-time improvements (Figure 6 row):")
    print(improvement_table([row]))
    print()
    print("energy / energy-delay columns:")
    print(energy_table([row]))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
