"""Reproduce the flavour of Figure 7: reconfiguration traces over time.

``apsi`` shows periodic phases in its data-cache capacity needs, so the D/L2
pair oscillates between the smallest and a larger configuration; ``art``
cycles its integer issue queue with the ILP of its phases.  This example runs
both workloads on the phase-adaptive machine and prints a text timeline of
the configurations chosen by the hardware controllers.

Usage::

    python examples/phase_reconfiguration_traces.py [window]
"""

from __future__ import annotations

import sys

from repro.analysis import run_phase_adaptive
from repro.workloads import get_workload


def print_trace(workload_name: str, structure: str, window: int) -> None:
    profile = get_workload(workload_name)
    result = run_phase_adaptive(profile, window=window)
    print(f"\n{workload_name}: {structure} configuration over time")
    print("-" * 60)
    previous = None
    for change in result.configuration_changes:
        if change.structure != structure:
            continue
        marker = "  " if change.configuration == previous else "->"
        print(
            f"  {marker} {change.committed_instructions:>8} instructions   "
            f"{change.configuration}"
        )
        previous = change.configuration
    improvements = result.improvement_over
    print(f"  ({len(result.configuration_changes)} controller decisions recorded)")


def main() -> None:
    window = int(sys.argv[1]) if len(sys.argv) > 1 else 24_000
    # Figure 7(a): apsi's D/L2 capacity phases.
    print_trace("apsi", "dcache", window)
    # Figure 7(b): art's issue-queue ILP phases.
    print_trace("art", "int-queue", window)


if __name__ == "__main__":
    main()
