"""Scenario campaigns: declarative workloads through the engine-batched matrix.

The scenario subsystem (`repro.scenarios`) turns the simulator into a general
evaluation platform: scenarios are declarative specs — a base profile, a
profile delta and a phase program — and a campaign expands a scenario set
across the three machine styles (synchronous baseline, Program-Adaptive,
Phase-Adaptive) as one engine batch.

This example defines a *custom* scenario from scratch (an abrupt capacity
square wave timed against the adaptation interval), runs it alongside two
library scenarios, and prints the campaign matrix: speedups, energy/EDP/ED^2
columns, true reconfiguration counts and synchronisation penalties.

Usage::

    python examples/scenario_campaign.py [--window N] [--warmup N]
        [--workers N|auto] [--cache-dir PATH]

The library itself is browsable from the command line::

    python -m repro.scenarios list
    python -m repro.scenarios describe adv-anti-phase-cache-queue
    python -m repro.scenarios matrix --quick
"""

from __future__ import annotations

import argparse

from repro.engine import make_engine
from repro.scenarios import (
    CONTROLLER_INTERVAL,
    ScenarioSpec,
    get_scenario,
    run_campaign,
)
from repro.workloads import square_wave


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description="Run a small scenario campaign through the experiment engine"
    )
    parser.add_argument("--window", type=int, default=3_000, help="measured instructions")
    parser.add_argument("--warmup", type=int, default=4_000, help="warm-up instructions")
    parser.add_argument(
        "--workers", default="1", help="worker processes ('auto' = one per core)"
    )
    parser.add_argument(
        "--cache-dir", default=None, help="persistent on-disk result cache"
    )
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    engine = make_engine(workers=args.workers, cache_dir=args.cache_dir)

    # A custom scenario: capacity demand flipping every adaptation interval,
    # with the ILP low while the working set is large — built from the same
    # vocabulary the library uses.
    custom = ScenarioSpec(
        name="custom-capacity-flip",
        family="adversarial",
        description="Capacity square wave timed at the adaptation interval.",
        overrides={"data_footprint_kb": 1024.0, "hot_data_kb": 24.0},
        phases=square_wave(
            {"hot_data_kb": 24.0, "mean_dependence_distance": 25.0},
            {"hot_data_kb": 512.0, "mean_dependence_distance": 5.0},
            period=2 * CONTROLLER_INTERVAL,
        ),
    )
    print(f"custom scenario spec (JSON): {custom.to_json()}")
    print()

    scenarios = [
        custom,
        get_scenario("adv-period-1x-interval"),
        get_scenario("paper-apsi-capacity"),
    ]
    result = run_campaign(
        scenarios, window=args.window, warmup=args.warmup, engine=engine
    )

    print(
        f"Campaign over {len(result.rows)} scenarios x 3 machine styles "
        f"({result.simulations} simulations, {result.cache_hits} cache hits)"
    )
    print()
    print(result.render())


if __name__ == "__main__":
    main()
