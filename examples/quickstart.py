"""Quickstart: compare the three machines of the paper on one benchmark.

Runs the ``gcc`` workload model on

* the best-overall fully synchronous processor,
* the adaptive MCD machine fixed at its base configuration, and
* the phase-adaptive MCD machine (hardware controllers active),

then prints run time, IPC and the relative improvements (one row of the
paper's Figure 6).

Usage::

    python examples/quickstart.py [workload-name] [window]
"""

from __future__ import annotations

import sys

from repro.analysis import run_phase_adaptive, run_program_adaptive, run_synchronous
from repro.analysis.reporting import format_table
from repro.core import AdaptiveConfigIndices
from repro.workloads import get_workload, workload_names


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    window = int(sys.argv[2]) if len(sys.argv) > 2 else 12_000
    if name not in workload_names():
        raise SystemExit(f"unknown workload {name!r}; try one of {workload_names()[:8]} ...")
    profile = get_workload(name)

    print(f"workload: {profile.name} ({profile.suite}) — {profile.description}")
    print(f"simulating {window} instructions per machine...\n")

    synchronous = run_synchronous(profile, window=window)
    base_mcd = run_program_adaptive(profile, AdaptiveConfigIndices(), window=window)
    phase = run_phase_adaptive(profile, window=window)

    rows = []
    for label, result in (
        ("fully synchronous (baseline)", synchronous),
        ("adaptive MCD, base config", base_mcd),
        ("adaptive MCD, phase-adaptive", phase),
    ):
        rows.append(
            (
                label,
                f"{result.execution_time_us:.2f}",
                f"{result.front_end_ipc:.2f}",
                f"{result.improvement_over(synchronous) * 100:+.1f}%",
            )
        )
    print(format_table(("machine", "time (us)", "IPC", "vs baseline"), rows))

    print("\nphase-adaptive reconfigurations:")
    last = {}
    for change in phase.configuration_changes:
        if last.get(change.structure) == change.configuration:
            continue
        last[change.structure] = change.configuration
        print(
            f"  @{change.committed_instructions:>7} instructions: "
            f"{change.structure} -> {change.configuration}"
        )


if __name__ == "__main__":
    main()
