"""Timing-uncertainty sensitivity analysis over a small workload set.

The paper's MCD results depend on its timing-uncertainty model: clock jitter
at every domain PLL and the 30 % arbitration window at clock-domain
crossings, plus the control parameters of the phase-adaptive hardware.  This
example sweeps those knobs through the engine-batched sensitivity driver and
prints how the Figure 6 improvements move relative to the jitter-free rows
(`d-program` / `d-phase`, in percentage points).

Usage::

    python examples/sensitivity_analysis.py [workload ...]
        [--window N] [--warmup N] [--quick]
        [--workers N|auto] [--cache-dir PATH]

``--quick`` shrinks the windows and the grid to CI size.  Every grid job is
submitted to the experiment engine as one batch, so ``--workers auto``
spreads the whole sensitivity surface over the machine's cores, and a
``--cache-dir`` makes repeated sweeps (and the embedded jitter-free Figure 6
baseline) free.
"""

from __future__ import annotations

import argparse

from repro.analysis.reporting import improvement_table
from repro.analysis.sensitivity import (
    QUICK_GRIDS,
    QUICK_WARMUP,
    QUICK_WINDOW,
    sensitivity_sweep,
)
from repro.engine import make_engine
from repro.workloads import get_workload


def worker_count(value: str) -> int | str:
    if value == "auto":
        return value
    try:
        workers = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {value!r}"
        ) from None
    if workers < 1:
        raise argparse.ArgumentTypeError("worker count must be at least 1")
    return workers


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description="Timing-uncertainty sensitivity sweep through the experiment engine"
    )
    parser.add_argument(
        "workloads",
        nargs="*",
        default=["gcc", "em3d"],
        help="workload names (default: gcc em3d)",
    )
    parser.add_argument("--window", type=int, default=None, help="measured instructions")
    parser.add_argument("--warmup", type=int, default=None, help="warm-up instructions")
    parser.add_argument(
        "--quick", action="store_true", help="CI-sized windows and grid"
    )
    parser.add_argument(
        "--workers",
        type=worker_count,
        default=1,
        help="worker processes for the sweep ('auto' = one per core)",
    )
    parser.add_argument(
        "--cache-dir", default=None, help="persistent on-disk result cache"
    )
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    profiles = [get_workload(name) for name in args.workloads]
    engine = make_engine(workers=args.workers, cache_dir=args.cache_dir)

    window, warmup = args.window, args.warmup
    grids = {}
    if args.quick:
        window = window if window is not None else QUICK_WINDOW
        warmup = warmup if warmup is not None else QUICK_WARMUP
        grids = dict(QUICK_GRIDS)

    report = sensitivity_sweep(
        profiles, window=window, warmup=warmup, engine=engine, **grids
    )

    print("Jitter-free Figure 6 baseline:")
    print(improvement_table(report.baseline))
    print()
    print(
        f"Sensitivity surface ({len(report.points)} grid points; "
        f"{engine.stats.simulations} simulations, "
        f"{engine.stats.cache_hits} cache hits):"
    )
    print(report.render())


if __name__ == "__main__":
    main()
