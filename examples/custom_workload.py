"""Define a custom phased workload and watch the controllers follow it.

This example builds a workload that alternates between a cache-friendly,
high-ILP phase and a memory-hungry, serial phase, runs it on the
phase-adaptive MCD machine, and prints how the Accounting-Cache controller
and the ILP-tracking queue controller reconfigure the machine phase by phase.

Usage::

    python examples/custom_workload.py
"""

from __future__ import annotations

from repro.analysis import run_phase_adaptive, run_synchronous
from repro.workloads import PhaseSpec, WorkloadProfile


def build_profile() -> WorkloadProfile:
    compute_phase = PhaseSpec(
        length=8_000,
        overrides={
            "hot_data_kb": 8.0,
            "hot_data_fraction": 0.97,
            "mean_dependence_distance": 30.0,
            "far_dependence_fraction": 0.35,
        },
    )
    memory_phase = PhaseSpec(
        length=8_000,
        overrides={
            "hot_data_kb": 512.0,
            "hot_data_fraction": 0.85,
            "sequential_fraction": 0.4,
            "mean_dependence_distance": 6.0,
        },
    )
    return WorkloadProfile(
        name="custom-alternating",
        suite="examples",
        description="alternating compute-bound and memory-bound phases",
        code_footprint_kb=8.0,
        inner_window_kb=4.0,
        data_footprint_kb=768.0,
        hot_data_kb=8.0,
        fp_fraction=0.2,
        phases=(compute_phase, memory_phase),
        simulation_window=32_000,
    )


def main() -> None:
    profile = build_profile()
    print(f"running {profile.name}: {profile.description}")

    baseline = run_synchronous(profile)
    adaptive = run_phase_adaptive(profile)

    print(f"\nfully synchronous: {baseline.execution_time_us:8.2f} us "
          f"(IPC {baseline.front_end_ipc:.2f})")
    print(f"phase-adaptive:    {adaptive.execution_time_us:8.2f} us "
          f"(IPC {adaptive.front_end_ipc:.2f})")
    print(f"improvement:       {adaptive.improvement_over(baseline) * 100:+.1f}%")

    print("\ncontroller decisions (changes only):")
    last: dict[str, str] = {}
    for change in adaptive.configuration_changes:
        if last.get(change.structure) == change.configuration:
            continue
        last[change.structure] = change.configuration
        print(
            f"  @{change.committed_instructions:>7}: "
            f"{change.structure:10s} -> {change.configuration}"
        )


if __name__ == "__main__":
    main()
