"""Figure 3: I-cache frequency versus configuration (adaptive vs optimal DM)."""

from repro.analysis.reporting import format_table
from repro.timing import (
    ADAPTIVE_ICACHE_CONFIGS,
    OPTIMIZED_ICACHE_CONFIGS,
    optimized_icache_config,
)


def build_figure3():
    optimal_by_size = {}
    for config in OPTIMIZED_ICACHE_CONFIGS:
        if config.ways == 1:
            optimal_by_size[config.size_kb] = config.frequency_ghz
    series = []
    for config in ADAPTIVE_ICACHE_CONFIGS:
        optimal = optimal_by_size.get(config.size_kb)
        series.append(
            (
                f"{config.size_kb} KB",
                f"{config.ways}-way",
                round(config.frequency_ghz, 3),
                round(optimal, 3) if optimal else "-",
            )
        )
    return series


def test_figure3_icache_frequency(benchmark):
    series = benchmark(build_figure3)
    print("\nFigure 3: I-cache frequency vs size (GHz)")
    print(format_table(("size", "adaptive organisation", "adaptive", "optimal DM"), series))
    adaptive = [row[2] for row in series]
    assert adaptive == sorted(adaptive, reverse=True)
    # Paper headline relationships.
    dm_to_2way_drop = 1 - adaptive[1] / adaptive[0]
    assert 0.25 <= dm_to_2way_drop <= 0.37
    ratio = optimized_icache_config("64k1W").frequency_ghz / adaptive[-1]
    assert 1.2 <= ratio <= 1.35
