"""Table 1: L1-D / L2 cache configurations (adaptive and optimal)."""

from repro.analysis.reporting import format_table
from repro.timing import (
    ADAPTIVE_DCACHE_CONFIGS,
    OPTIMAL_DCACHE_CONFIGS,
    cache_access_time_ns,
)


def build_table1():
    rows = []
    for adaptive, optimal in zip(ADAPTIVE_DCACHE_CONFIGS, OPTIMAL_DCACHE_CONFIGS):
        rows.append(
            (
                f"{adaptive.l1.size_kb} KB",
                adaptive.l1.associativity,
                adaptive.l1.sub_banks,
                optimal.l1.sub_banks,
                f"{adaptive.l2.size_kb} KB",
                adaptive.l2.associativity,
                adaptive.l2.sub_banks,
                optimal.l2.sub_banks,
                f"{cache_access_time_ns(adaptive.l1):.3f}",
            )
        )
    return rows


def test_table1_dcache_configurations(benchmark):
    rows = benchmark(build_table1)
    assert len(rows) == 4
    print("\nTable 1: L1 data / L2 cache configurations")
    print(
        format_table(
            (
                "L1 size", "assoc", "L1 banks (adapt)", "L1 banks (opt)",
                "L2 size", "assoc", "L2 banks (adapt)", "L2 banks (opt)",
                "model access (ns)",
            ),
            rows,
        )
    )
