"""Table 3: optimised (fully synchronous) I-cache / branch-predictor configurations."""

from repro.analysis.reporting import format_table
from repro.timing import OPTIMIZED_ICACHE_CONFIGS


def build_table3():
    rows = []
    for config in OPTIMIZED_ICACHE_CONFIGS:
        predictor = config.predictor
        rows.append(
            (
                f"{config.size_kb} KB",
                config.ways,
                config.icache.sub_banks,
                f"{predictor.global_history_bits} bits",
                predictor.gshare_entries,
                predictor.meta_entries,
                f"{predictor.local_history_bits} bits",
                predictor.local_bht_entries,
                predictor.local_pht_entries,
            )
        )
    return rows


def test_table3_optimized_icache_configurations(benchmark):
    rows = benchmark(build_table3)
    print("\nTable 3: optimised I-cache / branch predictor configurations")
    print(
        format_table(
            ("size", "assoc", "banks", "hg", "gshare PHT", "meta", "hl",
             "local BHT", "local PHT"),
            rows,
        )
    )
    assert len(rows) == 16
    sizes = {row[0] for row in rows}
    assert "4 KB" in sizes and "64 KB" in sizes
