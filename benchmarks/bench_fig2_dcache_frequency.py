"""Figure 2: D-cache / L2 frequency versus configuration (adaptive vs optimal)."""

from repro.analysis.reporting import format_table
from repro.timing import ADAPTIVE_DCACHE_CONFIGS, OPTIMAL_DCACHE_CONFIGS


def build_figure2():
    series = []
    for adaptive, optimal in zip(ADAPTIVE_DCACHE_CONFIGS, OPTIMAL_DCACHE_CONFIGS):
        series.append(
            (
                adaptive.name,
                round(adaptive.frequency_ghz, 3),
                round(optimal.frequency_ghz, 3),
                f"{(1 - adaptive.frequency_ghz / optimal.frequency_ghz) * 100:.1f}%",
            )
        )
    return series


def test_figure2_dcache_frequency(benchmark):
    series = benchmark(build_figure2)
    print("\nFigure 2: D-cache/L2 frequency vs configuration (GHz)")
    print(format_table(("configuration", "adaptive", "optimal", "adaptive penalty"), series))
    frequencies = [row[1] for row in series]
    assert frequencies == sorted(frequencies, reverse=True)
    # Paper: the adaptive organisation is ~5% slower than the optimal one.
    assert all(row[1] <= row[2] for row in series)
