"""Table 2: adaptive I-cache / branch-predictor configurations."""

from repro.analysis.reporting import format_table
from repro.timing import ADAPTIVE_ICACHE_CONFIGS


def build_table2():
    rows = []
    for config in ADAPTIVE_ICACHE_CONFIGS:
        predictor = config.predictor
        rows.append(
            (
                f"{config.size_kb} KB",
                config.ways,
                config.icache.sub_banks,
                f"{predictor.global_history_bits} bits",
                predictor.gshare_entries,
                predictor.meta_entries,
                f"{predictor.local_history_bits} bits",
                predictor.local_bht_entries,
                predictor.local_pht_entries,
            )
        )
    return rows


def test_table2_adaptive_icache_configurations(benchmark):
    rows = benchmark(build_table2)
    print("\nTable 2: adaptive I-cache / branch predictor configurations")
    print(
        format_table(
            ("size", "assoc", "banks", "hg", "gshare PHT", "meta", "hl",
             "local BHT", "local PHT"),
            rows,
        )
    )
    assert [row[1] for row in rows] == [1, 2, 3, 4]
    assert rows[0][4] == 16384 and rows[-1][4] == 65536
