"""Shared configuration for the benchmark harness.

Environment variables scale the heavy experiments:

``REPRO_BENCH_WINDOW``
    Instructions simulated per run (default 6000; the paper simulates
    100 M-200 M — see EXPERIMENTS.md for the scaling discussion).
``REPRO_BENCH_WORKLOADS``
    Comma-separated subset of workload names for the Figure 6 / Table 9
    experiments, or ``all`` for the full 40-entry suite.  The default is a
    16-application representative subset so the harness finishes in a few
    minutes; EXPERIMENTS.md records full-suite numbers.
``REPRO_BENCH_SEARCH``
    ``factored`` (default) or ``exhaustive`` Program-Adaptive search.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.sweep import compare_workload
from repro.workloads import full_suite, get_workload

#: Representative subset: small media kernels, instruction-bound codes,
#: memory-bound codes, FP codes and the strongly phased applications.
DEFAULT_BENCH_WORKLOADS = (
    "adpcm_encode", "adpcm_decode", "g721_encode", "jpeg_compress",
    "mpeg2_encode", "gsm_encode", "ghostscript", "power",
    "em3d", "health", "bzip2", "gcc", "vortex", "galgel", "apsi", "art",
)


def bench_window() -> int:
    return int(os.environ.get("REPRO_BENCH_WINDOW", "6000"))


def bench_search_mode() -> str:
    return os.environ.get("REPRO_BENCH_SEARCH", "factored")


def bench_workloads():
    names = os.environ.get("REPRO_BENCH_WORKLOADS")
    if names and names.strip().lower() == "all":
        return full_suite()
    if names:
        return tuple(get_workload(name.strip()) for name in names.split(",") if name.strip())
    return tuple(get_workload(name) for name in DEFAULT_BENCH_WORKLOADS)


@pytest.fixture(scope="session")
def figure6_comparisons():
    """Run the full three-machine comparison once and share it across benches."""
    window = bench_window()
    comparisons = []
    for profile in bench_workloads():
        comparisons.append(
            compare_workload(
                profile,
                search_mode=bench_search_mode(),
                window=window,
            )
        )
    return comparisons
