"""Shared configuration for the benchmark harness.

The Figure 6 / Table 9 sweep runs through the experiment engine
(:mod:`repro.engine`); the harness times it once per configured executor
mode and records the wall-clocks through the :mod:`repro.bench` subsystem
(schema, environment fingerprint, calibration) into ``BENCH_sweep.json`` at
the repo root under the ``figure6_sweep`` experiment, so the sweep layer's
performance trajectory is tracked across PRs in the same format as the
``python -m repro.bench`` CLI.

Environment variables scale the heavy experiments:

``REPRO_BENCH_WINDOW``
    Instructions simulated per run (default 6000; the paper simulates
    100 M-200 M — see EXPERIMENTS.md for the scaling discussion).
``REPRO_BENCH_WORKLOADS``
    Comma-separated subset of workload names for the Figure 6 / Table 9
    experiments, or ``all`` for the full 40-entry suite.  The default is a
    16-application representative subset so the harness finishes in a few
    minutes; EXPERIMENTS.md records full-suite numbers.
``REPRO_BENCH_SEARCH``
    ``factored`` (default) or ``exhaustive`` Program-Adaptive search.
``REPRO_BENCH_WORKERS``
    Worker processes for the parallel executor mode (default 2; ``auto``
    uses one worker per available core).
``REPRO_BENCH_MODES``
    Comma-separated executor modes to time, from ``serial`` and
    ``parallel`` (default ``serial,parallel``).  The last mode's results
    feed the benchmarks; every mode's wall-clock is recorded.

Each timed mode gets a fresh in-memory result cache — never a shared or
on-disk one — so the recorded wall-clocks measure simulation and stay
comparable across modes and sessions.  (The untimed drivers still benefit
from the default engine's cache, configurable via the ``REPRO_ENGINE_*``
variables.)
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

from repro.analysis.sweep import compare_workloads
from repro.bench import BenchEntry, BenchRun, EnvironmentFingerprint, append_entry, calibrate
from repro.bench.suites import FULL_SWEEP_WORKLOADS
from repro.engine import ExperimentEngine, default_worker_count, make_engine
from repro.workloads import full_suite, get_workload

#: Representative subset: small media kernels, instruction-bound codes,
#: memory-bound codes, FP codes and the strongly phased applications.
DEFAULT_BENCH_WORKLOADS = FULL_SWEEP_WORKLOADS

#: Where the sweep wall-clock trajectory is persisted (repo root).
BENCH_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"


def bench_window() -> int:
    return int(os.environ.get("REPRO_BENCH_WINDOW", "6000"))


def bench_search_mode() -> str:
    return os.environ.get("REPRO_BENCH_SEARCH", "factored")


def bench_workers() -> int:
    value = os.environ.get("REPRO_BENCH_WORKERS", "2")
    if value.strip().lower() == "auto":
        return max(2, default_worker_count())
    return max(2, int(value))


def bench_modes() -> tuple[str, ...]:
    value = os.environ.get("REPRO_BENCH_MODES", "serial,parallel")
    modes = tuple(mode.strip() for mode in value.split(",") if mode.strip())
    unknown = set(modes) - {"serial", "parallel"}
    if unknown:
        raise ValueError(f"unknown REPRO_BENCH_MODES entries: {sorted(unknown)}")
    return modes or ("serial",)


def bench_workloads():
    names = os.environ.get("REPRO_BENCH_WORKLOADS")
    if names and names.strip().lower() == "all":
        return full_suite()
    if names:
        return tuple(get_workload(name.strip()) for name in names.split(",") if name.strip())
    return tuple(get_workload(name) for name in DEFAULT_BENCH_WORKLOADS)


def _bench_engine(mode: str) -> ExperimentEngine:
    # A fresh in-memory cache per timing run: wall-clocks must measure
    # simulation, not whatever an earlier mode (or session) left behind.
    return make_engine(workers=bench_workers() if mode == "parallel" else 1)


def _comparisons_equal(left, right) -> bool:
    if len(left) != len(right):
        return False
    return all(
        a.workload == b.workload
        and a.program_best_indices == b.program_best_indices
        and a.synchronous == b.synchronous
        and a.program_adaptive == b.program_adaptive
        and a.phase_adaptive == b.phase_adaptive
        for a, b in zip(left, right)
    )


@pytest.fixture(scope="session")
def figure6_comparisons():
    """Run the three-machine comparison once per executor mode, record the
    wall-clocks through :mod:`repro.bench`, and share the results across
    benches."""
    profiles = bench_workloads()
    window = bench_window()
    search_mode = bench_search_mode()
    calibration = calibrate()

    runs: list[BenchRun] = []
    comparisons = None
    reference = None
    for mode in bench_modes():
        engine = _bench_engine(mode)
        started = time.perf_counter()
        comparisons = compare_workloads(
            profiles, search_mode=search_mode, window=window, engine=engine
        )
        elapsed = time.perf_counter() - started
        runs.append(
            BenchRun(
                name=f"figure6_sweep_{mode}",
                seconds=elapsed,
                normalized=elapsed / calibration if calibration > 0 else 0.0,
                simulations=engine.stats.simulations,
                cache_hits=engine.stats.cache_hits,
                extra={"workers": engine.executor.workers},
            )
        )
        if reference is None:
            reference = comparisons
        elif not _comparisons_equal(reference, comparisons):
            raise AssertionError(
                f"executor mode {mode!r} produced different sweep results"
            )

    by_mode = {run.name: run.seconds for run in runs}
    serial = by_mode.get("figure6_sweep_serial")
    parallel = by_mode.get("figure6_sweep_parallel")
    # parameters is the like-for-like comparison key of the regression
    # checker, so it holds knobs only; measured outputs such as the
    # parallel speedup go into the runs' extra payload.
    parameters = {
        "window": window,
        "warmup": None,
        "workloads": [profile.name for profile in profiles],
        "search_mode": search_mode,
        "harness": "pytest",
    }
    if serial and parallel:
        for run in runs:
            if run.name == "figure6_sweep_parallel":
                run.extra["parallel_speedup"] = round(serial / parallel, 3)
    entry = BenchEntry(
        suite="sweep",
        environment=EnvironmentFingerprint.collect(),
        calibration_seconds=calibration,
        parameters=parameters,
        runs=runs,
    )
    append_entry(BENCH_RESULTS_PATH, entry, experiment="figure6_sweep")

    return comparisons
