"""Ablation: cost of cross-domain synchronisation.

The paper (citing the companion MCD work) states that inter-domain
synchronisation slows the GALS machine down by less than ~3% on average.
This benchmark runs the base adaptive MCD machine with and without the
synchronisation model on a few representative workloads.
"""

import dataclasses
import os

from repro.analysis.reporting import format_table
from repro.analysis.sweep import default_warmup, make_trace
from repro.core import AdaptiveConfigIndices, MCDProcessor, adaptive_mcd_spec
from repro.workloads import get_workload

WORKLOADS = ("g721_encode", "bzip2", "gzip", "power")


def measure_sync_cost(window):
    rows = []
    for name in WORKLOADS:
        profile = get_workload(name)
        spec = adaptive_mcd_spec(AdaptiveConfigIndices(), use_b_partitions=False)
        nosync_spec = dataclasses.replace(spec, inter_domain_sync=False)
        results = {}
        for label, machine_spec in (("sync", spec), ("nosync", nosync_spec)):
            processor = MCDProcessor(machine_spec)
            results[label] = processor.run(
                make_trace(profile).instructions(),
                max_instructions=window,
                warmup_instructions=default_warmup(profile, window),
                workload_name=name,
            )
        overhead = (
            results["sync"].execution_time_ps / results["nosync"].execution_time_ps - 1
        )
        rows.append(
            (
                name,
                f"{results['sync'].execution_time_us:.2f}",
                f"{results['nosync'].execution_time_us:.2f}",
                f"{overhead * 100:+.2f}%",
                results["sync"].sync_penalties,
            )
        )
    return rows


def test_ablation_synchronisation_cost(benchmark):
    window = int(os.environ.get("REPRO_BENCH_WINDOW", "6000"))
    rows = benchmark.pedantic(lambda: measure_sync_cost(window), rounds=1, iterations=1)
    print("\nAblation: cross-domain synchronisation cost (paper: <3% average)")
    print(
        format_table(
            ("workload", "with sync (us)", "without sync (us)", "overhead", "penalty cycles"),
            rows,
        )
    )
    overheads = [float(row[3].rstrip("%")) for row in rows]
    assert sum(overheads) / len(overheads) < 8.0
