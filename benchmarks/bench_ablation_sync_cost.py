"""Ablation: cost of cross-domain synchronisation.

The paper (citing the companion MCD work) states that inter-domain
synchronisation slows the GALS machine down by less than ~3% on average.
This benchmark runs the base adaptive MCD machine with and without the
synchronisation model on a few representative workloads.
"""

import os

from repro.analysis.reporting import format_table
from repro.engine import SimulationJob, SpecKind, default_engine
from repro.workloads import get_workload

WORKLOADS = ("g721_encode", "bzip2", "gzip", "power")


def measure_sync_cost(window):
    jobs = [
        SimulationJob(
            profile=get_workload(name),
            spec_kind=SpecKind.ADAPTIVE,
            spec_overrides=overrides,
            window=window,
        )
        for name in WORKLOADS
        for overrides in (None, {"inter_domain_sync": False})
    ]
    results = default_engine().run_all(jobs)
    rows = []
    for name, sync, nosync in zip(WORKLOADS, results[::2], results[1::2]):
        overhead = sync.execution_time_ps / nosync.execution_time_ps - 1
        rows.append(
            (
                name,
                f"{sync.execution_time_us:.2f}",
                f"{nosync.execution_time_us:.2f}",
                f"{overhead * 100:+.2f}%",
                sync.sync_penalties,
            )
        )
    return rows


def test_ablation_synchronisation_cost(benchmark):
    window = int(os.environ.get("REPRO_BENCH_WINDOW", "6000"))
    rows = benchmark.pedantic(lambda: measure_sync_cost(window), rounds=1, iterations=1)
    print("\nAblation: cross-domain synchronisation cost (paper: <3% average)")
    print(
        format_table(
            ("workload", "with sync (us)", "without sync (us)", "overhead", "penalty cycles"),
            rows,
        )
    )
    overheads = [float(row[3].rstrip("%")) for row in rows]
    assert sum(overheads) / len(overheads) < 8.0
