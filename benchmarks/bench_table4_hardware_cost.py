"""Table 4: hardware cost of the phase-adaptive cache controller."""

from repro.analysis import (
    ilp_tracker_storage_bits,
    phase_adaptive_cache_hardware,
    total_equivalent_gates,
)
from repro.analysis.reporting import format_table


def build_table4():
    components = phase_adaptive_cache_hardware()
    rows = [
        (component.count, component.name, component.formula, component.equivalent_gates)
        for component in components
    ]
    return rows, total_equivalent_gates(components)


def test_table4_controller_hardware_cost(benchmark):
    rows, total = benchmark(build_table4)
    print("\nTable 4: phase-adaptive cache controller hardware estimate")
    print(format_table(("count", "component", "estimate", "equivalent gates"), rows))
    print(f"Total: {total} equivalent gates per adaptable cache / cache pair")
    print(f"ILP tracker storage: ILP16={ilp_tracker_storage_bits(16)} bits, "
          f"ILP64={ilp_tracker_storage_bits(64)} bits")
    assert total == 4647
