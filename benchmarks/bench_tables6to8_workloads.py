"""Tables 6-8: the benchmark applications and their simulation windows."""

from repro.analysis.reporting import format_table
from repro.analysis.sweep import default_warmup
from repro.workloads import BENCHMARK_SUITES


def build_tables_6_to_8():
    tables = {}
    for suite, profiles in BENCHMARK_SUITES.items():
        rows = []
        for profile in profiles:
            rows.append(
                (
                    profile.name,
                    profile.paper_dataset,
                    profile.paper_window,
                    profile.simulation_window,
                    default_warmup(profile),
                )
            )
        tables[suite] = rows
    return tables


def test_tables_6_to_8_workloads(benchmark):
    tables = benchmark(build_tables_6_to_8)
    for suite, rows in tables.items():
        print(f"\nTable (suite {suite}): applications")
        print(
            format_table(
                ("benchmark", "dataset", "paper window", "scaled window", "warm-up"),
                rows,
            )
        )
    assert sum(len(rows) for rows in tables.values()) == 40
