"""Figure 6: per-application improvement of Program- and Phase-Adaptive MCD
over the best fully synchronous machine (the paper's headline experiment).

Paper reference points: +17.6% average for Program-Adaptive, +20.4% for
Phase-Adaptive, with gcc/em3d/mst/art/vortex the largest winners and a few
applications slightly below the baseline in Program-Adaptive mode.
"""

from repro.analysis.reporting import improvement_table
from repro.analysis.sweep import average_improvements


def test_figure6_adaptive_vs_synchronous(benchmark, figure6_comparisons):
    comparisons = benchmark.pedantic(
        lambda: figure6_comparisons, rounds=1, iterations=1
    )
    print("\nFigure 6: performance improvement over the best fully synchronous machine")
    print(improvement_table(comparisons))
    program_avg, phase_avg = average_improvements(comparisons)
    print(
        f"\nAverage improvement: Program-Adaptive {program_avg * 100:+.1f}% "
        f"(paper: +17.6%), Phase-Adaptive {phase_avg * 100:+.1f}% (paper: +20.4%)"
    )
    winners = [c for c in comparisons if c.program_improvement > 0.15]
    print(f"Applications improving by more than 15% (Program-Adaptive): "
          f"{[c.workload for c in winners]}")
    assert comparisons
    # Shape assertions (not absolute-value assertions): adaptivity wins on
    # average, and the biggest winners are the memory/instruction-bound codes.
    assert program_avg > 0.0 or phase_avg > 0.0
