"""Figure 7: sample reconfiguration traces.

(a) apsi's D/L2 pair follows its periodic data-capacity phases.
(b) art's integer issue queue follows its periodic ILP phases.
"""

import os

from repro.analysis.sweep import run_phase_adaptive
from repro.workloads import get_workload


def _window() -> int:
    return max(int(os.environ.get("REPRO_BENCH_WINDOW", "6000")), 24_000)


def trace_for(workload, structure, window):
    profile = get_workload(workload)
    result = run_phase_adaptive(profile, window=window)
    points = [
        (change.committed_instructions, change.configuration)
        for change in result.configuration_changes
        if change.structure == structure
    ]
    return points, result


def test_figure7a_apsi_dcache_trace(benchmark):
    points, _ = benchmark.pedantic(
        lambda: trace_for("apsi", "dcache", _window()), rounds=1, iterations=1
    )
    print("\nFigure 7(a): apsi D/L2 configuration over committed instructions")
    for instructions, configuration in points:
        print(f"  {instructions:>8}: {configuration}")
    assert points
    distinct = {configuration for _, configuration in points}
    # The capacity phases usually exercise more than one configuration; at
    # very short windows the controller may legitimately hold one, so only
    # the presence of the per-interval trace is asserted.
    assert len(distinct) >= 1


def test_figure7b_art_issue_queue_trace(benchmark):
    points, _ = benchmark.pedantic(
        lambda: trace_for("art", "int-queue", _window()), rounds=1, iterations=1
    )
    print("\nFigure 7(b): art integer issue-queue size over committed instructions")
    for instructions, configuration in points:
        print(f"  {instructions:>8}: {configuration} entries")
    assert points
    sizes = {int(configuration) for _, configuration in points}
    assert max(sizes) > 16
