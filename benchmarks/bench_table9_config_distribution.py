"""Table 9: distribution of best Program-Adaptive configuration choices.

Paper reference: the smallest integer queue (16 entries) is chosen for ~85%
of applications, the smallest FP queue for ~73%, the smallest D/L2 pair for
~50% and the smallest I-cache for ~55%, with the remainder spread over the
larger configurations.
"""

from collections import Counter

from repro.analysis.reporting import format_table
from repro.timing.tables import ADAPTIVE_DCACHE_CONFIGS, ADAPTIVE_ICACHE_CONFIGS


def distribution(comparisons):
    int_queue = Counter(c.program_best_indices.int_queue_size for c in comparisons)
    fp_queue = Counter(c.program_best_indices.fp_queue_size for c in comparisons)
    dcache = Counter(c.program_best_indices.dcache_index for c in comparisons)
    icache = Counter(c.program_best_indices.icache_index for c in comparisons)
    return int_queue, fp_queue, dcache, icache


def test_table9_program_adaptive_configuration_distribution(benchmark, figure6_comparisons):
    int_queue, fp_queue, dcache, icache = benchmark.pedantic(
        lambda: distribution(figure6_comparisons), rounds=1, iterations=1
    )
    total = len(figure6_comparisons)

    def percent(counter, key):
        return f"{100 * counter.get(key, 0) / total:.0f}%"

    rows = []
    for position, (size, dc_index, ic_index) in enumerate(
        zip((16, 32, 48, 64), range(4), range(4))
    ):
        rows.append(
            (
                f"{size}",
                percent(int_queue, size),
                percent(fp_queue, size),
                ADAPTIVE_DCACHE_CONFIGS[dc_index].name,
                percent(dcache, dc_index),
                ADAPTIVE_ICACHE_CONFIGS[ic_index].name,
                percent(icache, ic_index),
            )
        )
    print("\nTable 9: distribution of Program-Adaptive configuration choices")
    print(
        format_table(
            ("IQ size", "integer IQ", "FP IQ", "D-cache config", "D-cache",
             "I-cache config", "I-cache"),
            rows,
        )
    )
    # Shape: the smallest configuration is the most common choice for every
    # structure (paper Table 9).
    assert int_queue.most_common(1)[0][0] == 16
    assert fp_queue.most_common(1)[0][0] == 16
    assert dcache.most_common(1)[0][0] == 0
