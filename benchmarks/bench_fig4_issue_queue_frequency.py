"""Figure 4: issue-queue frequency versus queue size."""

from repro.analysis.reporting import format_table
from repro.timing import (
    ISSUE_QUEUE_FREQUENCY_CURVE,
    issue_queue_delay_ns,
    issue_queue_frequency_ghz,
    selection_levels,
)


def build_figure4():
    series = []
    for entries in range(16, 68, 4):
        series.append(
            (
                entries,
                round(ISSUE_QUEUE_FREQUENCY_CURVE[entries], 3),
                round(issue_queue_frequency_ghz(entries), 3),
                selection_levels(entries),
                round(issue_queue_delay_ns(entries), 3),
            )
        )
    return series


def test_figure4_issue_queue_frequency(benchmark):
    series = benchmark(build_figure4)
    print("\nFigure 4: issue queue frequency vs size")
    print(
        format_table(
            ("entries", "table (GHz)", "analytic model (GHz)",
             "select levels", "model delay (ns)"),
            series,
        )
    )
    table = [row[1] for row in series]
    assert table == sorted(table, reverse=True)
    # The 16 -> 20 entry step (2 -> 3 selection levels) is the big one.
    first_step = 1 - table[1] / table[0]
    later_steps = 1 - table[-1] / table[1]
    assert first_step > 0.15
    assert first_step > later_steps / 2
