"""Table 5: architectural parameters of the simulated processor."""

from repro.analysis.reporting import format_table
from repro.core import ArchitecturalParameters, base_adaptive_spec, best_overall_synchronous_spec


def build_table5():
    params = ArchitecturalParameters()
    adaptive = base_adaptive_spec()
    synchronous = best_overall_synchronous_spec()
    rows = [
        ("Fetch queue", f"{params.fetch_queue_entries} entries"),
        ("Branch mispredict penalty (synchronous)",
         f"{params.mispredict_front_end_cycles_synchronous} front-end + "
         f"{params.mispredict_integer_cycles_synchronous} integer cycles"),
        ("Branch mispredict penalty (adaptive MCD)",
         f"{params.mispredict_front_end_cycles_adaptive} front-end + "
         f"{params.mispredict_integer_cycles_adaptive} integer cycles"),
        ("Decode / issue / retire widths",
         f"{params.decode_width}, {params.issue_width}, {params.retire_width}"),
        ("L1 cache latency (A/B)", "2/8, 2/5, 2/2 or 2/- cycles"),
        ("L2 cache latency (A/B)", "12/43, 12/27, 12/12 or 12/- cycles"),
        ("Memory latency",
         f"{params.memory_first_chunk_ns:.0f} ns first chunk, "
         f"{params.memory_subsequent_chunk_ns:.0f} ns subsequent"),
        ("Integer ALUs", f"{params.int_alus} + {params.int_complex_units} mult/div"),
        ("FP ALUs", f"{params.fp_alus} + {params.fp_complex_units} mult/div/sqrt"),
        ("Load/store queue", f"{params.load_store_queue_entries} entries"),
        ("Physical register file",
         f"{params.physical_int_registers} integer, {params.physical_fp_registers} FP"),
        ("Reorder buffer", f"{params.reorder_buffer_entries} entries"),
        ("Adaptive MCD base frequencies",
         ", ".join(f"{d.value}={f:.2f} GHz" for d, f in adaptive.frequencies_ghz.items())),
        ("Best synchronous global frequency",
         f"{synchronous.frequency(next(iter(synchronous.frequencies_ghz))):.2f} GHz"),
    ]
    return rows


def test_table5_architectural_parameters(benchmark):
    rows = benchmark(build_table5)
    print("\nTable 5: architectural parameters")
    print(format_table(("parameter", "value"), rows))
    assert len(rows) >= 12
