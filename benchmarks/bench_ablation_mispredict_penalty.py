"""Ablation: cost of the adaptive machine's deeper misprediction penalty.

The adaptive MCD machine is over-pipelined at low frequencies and pays one
extra front-end cycle and two extra integer cycles per branch misprediction
(Section 2).  This benchmark quantifies that cost by running the base MCD
machine with the adaptive penalty (10+9) and with the synchronous penalty
(9+7).
"""

import os

from repro.analysis.reporting import format_table
from repro.engine import SimulationJob, SpecKind, default_engine
from repro.workloads import get_workload

WORKLOADS = ("adpcm_decode", "crafty", "vpr", "g721_encode")

#: The synchronous machine's shallower misprediction penalty, applied to the
#: adaptive machine as a hypothetical.
SHALLOW_PENALTY = {"mispredict_front_end_cycles": 9, "mispredict_integer_cycles": 7}


def measure_penalty_cost(window):
    jobs = [
        SimulationJob(
            profile=get_workload(name),
            spec_kind=SpecKind.ADAPTIVE,
            spec_overrides=overrides,
            window=window,
        )
        for name in WORKLOADS
        for overrides in (None, SHALLOW_PENALTY)
    ]
    results = default_engine().run_all(jobs)
    rows = []
    for name, adaptive, shallow in zip(WORKLOADS, results[::2], results[1::2]):
        cost = adaptive.execution_time_ps / shallow.execution_time_ps - 1
        rows.append(
            (
                name,
                f"{adaptive.branch_misprediction_rate:.3f}",
                f"{shallow.execution_time_us:.2f}",
                f"{adaptive.execution_time_us:.2f}",
                f"{cost * 100:+.2f}%",
            )
        )
    return rows


def test_ablation_mispredict_penalty(benchmark):
    window = int(os.environ.get("REPRO_BENCH_WINDOW", "6000"))
    rows = benchmark.pedantic(lambda: measure_penalty_cost(window), rounds=1, iterations=1)
    print("\nAblation: over-pipelining penalty (+1 front-end, +2 integer cycles per mispredict)")
    print(
        format_table(
            ("workload", "mispredict rate", "9+7 penalty (us)", "10+9 penalty (us)", "cost"),
            rows,
        )
    )
    costs = [float(row[4].rstrip("%")) for row in rows]
    assert all(cost >= -1.0 for cost in costs)
