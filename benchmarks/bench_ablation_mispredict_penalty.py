"""Ablation: cost of the adaptive machine's deeper misprediction penalty.

The adaptive MCD machine is over-pipelined at low frequencies and pays one
extra front-end cycle and two extra integer cycles per branch misprediction
(Section 2).  This benchmark quantifies that cost by running the base MCD
machine with the adaptive penalty (10+9) and with the synchronous penalty
(9+7).
"""

import dataclasses
import os

from repro.analysis.reporting import format_table
from repro.analysis.sweep import default_warmup, make_trace
from repro.core import AdaptiveConfigIndices, MCDProcessor, adaptive_mcd_spec
from repro.workloads import get_workload

WORKLOADS = ("adpcm_decode", "crafty", "vpr", "g721_encode")


def measure_penalty_cost(window):
    rows = []
    for name in WORKLOADS:
        profile = get_workload(name)
        adaptive_penalty = adaptive_mcd_spec(AdaptiveConfigIndices(), use_b_partitions=False)
        synchronous_penalty = dataclasses.replace(
            adaptive_penalty, mispredict_front_end_cycles=9, mispredict_integer_cycles=7
        )
        results = {}
        for label, spec in (("adaptive", adaptive_penalty), ("shallow", synchronous_penalty)):
            processor = MCDProcessor(spec)
            results[label] = processor.run(
                make_trace(profile).instructions(),
                max_instructions=window,
                warmup_instructions=default_warmup(profile, window),
                workload_name=name,
            )
        cost = results["adaptive"].execution_time_ps / results["shallow"].execution_time_ps - 1
        rows.append(
            (
                name,
                f"{results['adaptive'].branch_misprediction_rate:.3f}",
                f"{results['shallow'].execution_time_us:.2f}",
                f"{results['adaptive'].execution_time_us:.2f}",
                f"{cost * 100:+.2f}%",
            )
        )
    return rows


def test_ablation_mispredict_penalty(benchmark):
    window = int(os.environ.get("REPRO_BENCH_WINDOW", "6000"))
    rows = benchmark.pedantic(lambda: measure_penalty_cost(window), rounds=1, iterations=1)
    print("\nAblation: over-pipelining penalty (+1 front-end, +2 integer cycles per mispredict)")
    print(
        format_table(
            ("workload", "mispredict rate", "9+7 penalty (us)", "10+9 penalty (us)", "cost"),
            rows,
        )
    )
    costs = [float(row[4].rstrip("%")) for row in rows]
    assert all(cost >= -1.0 for cost in costs)
