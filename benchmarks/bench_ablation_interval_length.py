"""Ablation: sensitivity of the phase-adaptive controllers to the interval.

The paper fixes the adaptation interval at 15 K committed instructions
("comparable to the PLL lock-down time").  This benchmark sweeps the interval
on the strongly phased apsi workload to show the tradeoff: very short
intervals react to noise, very long intervals miss phases.
"""

import os

from repro.analysis.reporting import format_table
from repro.analysis.sweep import run_phase_adaptive, run_synchronous
from repro.core.controllers.params import AdaptiveControlParams
from repro.workloads import get_workload

INTERVALS = (1_000, 2_000, 4_000, 8_000)


def measure_interval_sensitivity(window):
    profile = get_workload("apsi")
    baseline = run_synchronous(profile, window=window)
    rows = []
    for interval in INTERVALS:
        control = AdaptiveControlParams(
            interval_instructions=interval, pll_interval_scaled=True
        )
        result = run_phase_adaptive(profile, window=window, control=control)
        changes = sum(
            1
            for first, second in zip(
                result.configuration_changes, result.configuration_changes[1:]
            )
            if first.structure == second.structure
            and first.configuration != second.configuration
        )
        rows.append(
            (
                interval,
                f"{result.execution_time_us:.2f}",
                f"{result.improvement_over(baseline) * 100:+.1f}%",
                len(result.configuration_changes),
                changes,
            )
        )
    return rows


def test_ablation_interval_length(benchmark):
    window = max(int(os.environ.get("REPRO_BENCH_WINDOW", "6000")), 24_000)
    rows = benchmark.pedantic(
        lambda: measure_interval_sensitivity(window), rounds=1, iterations=1
    )
    print("\nAblation: adaptation-interval sensitivity (apsi)")
    print(
        format_table(
            ("interval (instructions)", "time (us)", "vs synchronous",
             "decisions", "reconfigurations"),
            rows,
        )
    )
    assert len(rows) == len(INTERVALS)
