"""Ablation: the frequency penalty of supporting adaptivity.

Adaptive structures must replicate the minimal configuration's layout, which
costs ~5% frequency for the upsized D/L2 pair and up to ~27% for the largest
I-cache relative to capacity-optimised designs (Figures 2-3).  This benchmark
measures how much performance an upsized Program-Adaptive machine loses to
that penalty by re-running it with the optimal (non-resizable) frequencies.
"""

import os

from repro.analysis.reporting import format_table
from repro.core import AdaptiveConfigIndices, adaptive_mcd_spec
from repro.core.domains import Domain
from repro.engine import SimulationJob, SpecKind, default_engine
from repro.timing.tables import OPTIMAL_DCACHE_CONFIGS, OPTIMIZED_ICACHE_CONFIGS
from repro.workloads import get_workload

#: Memory/instruction-bound workloads that use upsized configurations.
CASES = (
    ("em3d", AdaptiveConfigIndices(dcache_index=3)),
    ("gcc", AdaptiveConfigIndices(icache_index=3, dcache_index=2)),
    ("vortex", AdaptiveConfigIndices(icache_index=3, dcache_index=2)),
)


def _optimal_frequencies(indices):
    # Hypothetical machine: same capacities, but clocked as if the
    # structures were capacity-optimised (no adaptivity penalty).
    adaptive = adaptive_mcd_spec(indices, use_b_partitions=False)
    frequencies = dict(adaptive.frequencies_ghz)
    frequencies[Domain.LOAD_STORE] = OPTIMAL_DCACHE_CONFIGS[
        indices.dcache_index
    ].frequency_ghz
    optimal_icache = next(
        config
        for config in OPTIMIZED_ICACHE_CONFIGS
        if config.size_kb == adaptive.icache.size_kb and config.ways == 1
    )
    frequencies[Domain.FRONT_END] = optimal_icache.frequency_ghz
    return frequencies


def measure_frequency_penalty(window):
    jobs = [
        SimulationJob(
            profile=get_workload(name),
            spec_kind=SpecKind.ADAPTIVE,
            indices=indices,
            spec_overrides=overrides,
            window=window,
        )
        for name, indices in CASES
        for overrides in (None, {"frequencies_ghz": _optimal_frequencies(indices)})
    ]
    results = default_engine().run_all(jobs)
    rows = []
    for (name, indices), adaptive, no_penalty in zip(CASES, results[::2], results[1::2]):
        loss = adaptive.execution_time_ps / no_penalty.execution_time_ps - 1
        rows.append(
            (
                name,
                indices.describe(),
                f"{no_penalty.execution_time_us:.2f}",
                f"{adaptive.execution_time_us:.2f}",
                f"{loss * 100:+.2f}%",
            )
        )
    return rows


def test_ablation_adaptive_frequency_penalty(benchmark):
    window = int(os.environ.get("REPRO_BENCH_WINDOW", "6000"))
    rows = benchmark.pedantic(
        lambda: measure_frequency_penalty(window), rounds=1, iterations=1
    )
    print("\nAblation: frequency penalty of resizable structures")
    print(
        format_table(
            ("workload", "configuration", "optimal clocks (us)",
             "adaptive clocks (us)", "slowdown"),
            rows,
        )
    )
    assert all(float(row[4].rstrip("%")) >= -1.0 for row in rows)
