"""Tests for the controller hardware-cost model (Table 4)."""

import pytest

from repro.analysis import (
    ilp_tracker_storage_bits,
    phase_adaptive_cache_hardware,
    total_equivalent_gates,
)


class TestTable4:
    def test_component_inventory_matches_table4(self):
        components = phase_adaptive_cache_hardware()
        names = [component.name for component in components]
        assert len(components) == 6
        assert any("counters" in name.lower() for name in names)
        assert any("multiplier" in name.lower() for name in names)
        assert any("comparator" in name.lower() for name in names)

    def test_individual_rows_match_paper_numbers(self):
        by_name = {c.name: c.equivalent_gates for c in phase_adaptive_cache_hardware()}
        assert by_name["MRU and hit counters (15-bit)"] == 2520
        assert by_name["Adders (15-bit)"] == 1155
        assert by_name["8x28-bit multipliers (36-bit result)"] == 360
        assert by_name["Final adder (36-bit)"] == 252
        assert by_name["Result register (36-bit)"] == 144
        assert by_name["Comparator (36-bit)"] == 216

    def test_total_matches_paper(self):
        assert total_equivalent_gates() == 4647

    def test_two_controllers_are_about_10k_gates(self):
        assert 2 * total_equivalent_gates() < 10_000


class TestILPTrackerStorage:
    def test_storage_matches_section_3_2(self):
        assert ilp_tracker_storage_bits(16) == 256
        assert ilp_tracker_storage_bits(32) == 320
        assert ilp_tracker_storage_bits(48) == 384
        assert ilp_tracker_storage_bits(64) == 384

    def test_unknown_size_rejected(self):
        with pytest.raises(ValueError):
            ilp_tracker_storage_bits(24)
