"""Tests for the design-space exploration helpers (small, fast sweeps)."""

import pytest

from repro.analysis.reporting import format_table, improvement_table
from repro.analysis.sweep import (
    DEFAULT_TRACE_SEED,
    _combine_factored_winners,
    _factored_candidates,
    _indices_from_key,
    average_improvements,
    compare_workload,
    default_control_params,
    default_warmup,
    make_trace,
    program_adaptive_search,
    run_phase_adaptive,
    run_program_adaptive,
    run_synchronous,
)
from repro.core.configuration import AdaptiveConfigIndices
from repro.workloads import WorkloadProfile


@pytest.fixture(scope="module")
def quick_profile():
    return WorkloadProfile(
        name="quick", suite="test",
        code_footprint_kb=4.0, inner_window_kb=2.0,
        data_footprint_kb=48.0, hot_data_kb=12.0,
        simulation_window=1_200,
    )


class TestHelpers:
    def test_default_warmup_scales_with_footprint(self):
        small = WorkloadProfile(name="s", suite="t", data_footprint_kb=16.0, hot_data_kb=8.0)
        large = WorkloadProfile(name="l", suite="t", data_footprint_kb=1024.0, hot_data_kb=512.0)
        assert default_warmup(large) > default_warmup(small)
        assert default_warmup(large) <= 100_000

    def test_default_control_params_scale_interval(self):
        params = default_control_params(24_000)
        assert params.interval_instructions == 4_000
        assert params.pll_interval_scaled

    def test_make_trace_uses_default_seed(self, quick_profile):
        trace = make_trace(quick_profile)
        assert trace.seed == DEFAULT_TRACE_SEED

    def test_indices_key_roundtrip(self):
        indices = AdaptiveConfigIndices(2, 3, 48, 32)
        assert _indices_from_key(indices.describe()) == indices

    def test_factored_candidates_cover_each_dimension(self):
        candidates = _factored_candidates("adaptive")
        assert AdaptiveConfigIndices() in candidates
        assert any(c.icache_index == 3 for c in candidates)
        assert any(c.dcache_index == 3 for c in candidates)
        assert any(c.int_queue_size == 64 for c in candidates)
        assert any(c.fp_queue_size == 64 for c in candidates)
        sync_candidates = _factored_candidates("synchronous")
        assert any(c.icache_index == 15 for c in sync_candidates)


class TestRunners:
    def test_run_synchronous_default_baseline(self, quick_profile):
        result = run_synchronous(quick_profile, window=1000, warmup=2000)
        assert result.style == "synchronous"
        assert result.committed_instructions >= 1000

    def test_run_program_adaptive(self, quick_profile):
        result = run_program_adaptive(
            quick_profile, AdaptiveConfigIndices(), window=1000, warmup=2000
        )
        assert result.style == "adaptive_mcd"
        # Whole-program runs never adapt at run time.
        assert not result.configuration_changes

    def test_run_phase_adaptive(self, quick_profile):
        result = run_phase_adaptive(quick_profile, window=2000, warmup=2000)
        assert result.style == "adaptive_mcd"
        assert result.configuration_changes

    def test_same_trace_for_every_machine(self, quick_profile):
        sync = run_synchronous(quick_profile, window=1000, warmup=1000)
        adaptive = run_program_adaptive(
            quick_profile, AdaptiveConfigIndices(), window=1000, warmup=1000
        )
        # Both machines consume the identical deterministic trace; they may
        # differ by the handful of instructions still in flight when the run
        # stops (commit happens in retire-width groups), but not by more.
        assert sync.committed_instructions == pytest.approx(
            adaptive.committed_instructions, abs=16
        )
        assert sync.branch_predictions == pytest.approx(
            adaptive.branch_predictions, rel=0.05, abs=8
        )


class TestSearchAndComparison:
    def test_factored_search_returns_best_of_evaluated(self, quick_profile):
        sweep = program_adaptive_search(quick_profile, window=800, warmup=1500)
        assert sweep.configurations_evaluated >= 10
        best_time = sweep.best_result.execution_time_ps
        assert all(
            best_time <= result.execution_time_ps
            for result in sweep.evaluated.values()
        )
        assert sweep.best_indices.describe() in sweep.evaluated

    def test_combine_factored_winners_picks_per_dimension_best(self, quick_profile):
        sweep = program_adaptive_search(quick_profile, window=800, warmup=1500)
        combined = _combine_factored_winners(sweep.evaluated)
        assert isinstance(combined, AdaptiveConfigIndices)

    def test_compare_workload_produces_figure6_row(self, quick_profile):
        comparison = compare_workload(quick_profile, window=800, warmup=1500)
        assert comparison.workload == "quick"
        assert isinstance(comparison.program_improvement, float)
        assert isinstance(comparison.phase_improvement, float)
        # Program-adaptive picks the best configuration for this workload, so
        # it can not be worse than an arbitrary fixed adaptive configuration.
        assert comparison.program_adaptive.execution_time_ps <= (
            run_program_adaptive(
                quick_profile, AdaptiveConfigIndices(dcache_index=3),
                window=800, warmup=1500,
            ).execution_time_ps
        )

    def test_average_improvements(self, quick_profile):
        comparison = compare_workload(quick_profile, window=800, warmup=1500)
        program, phase = average_improvements([comparison])
        assert program == pytest.approx(comparison.program_improvement)
        assert phase == pytest.approx(comparison.phase_improvement)
        assert average_improvements([]) == (0.0, 0.0)

    def test_unknown_search_mode_rejected(self, quick_profile):
        with pytest.raises(ValueError):
            program_adaptive_search(quick_profile, mode="guess")


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(("a", "bb"), [(1, 2.5), ("xyz", "w")])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_improvement_table(self, quick_profile):
        comparison = compare_workload(quick_profile, window=800, warmup=1500)
        text = improvement_table([comparison])
        assert "quick" in text
        assert "%" in text
